# Developer entry points.  `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint sanitize test bench

# Full gate: style (when ruff is available), the repo's own AST lint,
# and the tier-1 suite with every DSM run under the coherence sanitizer.
check: lint sanitize

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro tests benchmarks; \
	else \
		echo "ruff not installed; skipping style check"; \
	fi
	$(PYTHON) -m repro.analysis.lint src/repro

sanitize:
	$(PYTHON) -m pytest -x -q --sanitize

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q
