# Developer entry points.  `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint sanitize test bench perf perf-gate bench-parallel

JOBS ?= $(shell nproc 2>/dev/null || echo 4)

# Full gate: style (when ruff is available), the repo's own AST lint,
# and the tier-1 suite with every DSM run under the coherence sanitizer.
check: lint sanitize

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro tests benchmarks; \
	else \
		echo "ruff not installed; skipping style check"; \
	fi
	$(PYTHON) -m repro.analysis.lint src/repro
	$(PYTHON) -m repro.analysis.protoflow src/repro/dsm

sanitize:
	$(PYTHON) -m pytest -x -q --sanitize

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q

# Microbenchmark suite: kernel timings vs the reference oracles plus
# end-to-end app wall times, written to BENCH_perf.json.
perf:
	$(PYTHON) -m repro perf

# Perf regression gate: re-times the hot kernels + the simulator event
# loop and fails on a >10% regression vs the last committed entry of
# benchmark_results/history.jsonl.  Run on a quiet machine comparable
# to the one that recorded the baseline (CI uses a looser tolerance).
perf-gate:
	$(PYTHON) benchmarks/check_perf_gate.py

# The paper's figures and both ablations, fanned out over all cores.
# Output is byte-identical to serial runs (see docs/performance.md).
bench-parallel:
	$(PYTHON) -m repro fig4 --jobs $(JOBS)
	$(PYTHON) -m repro fig5 --jobs $(JOBS)
	$(PYTHON) -m repro ablation --which disk --jobs $(JOBS)
	$(PYTHON) -m repro ablation --which pagesize --jobs $(JOBS)
