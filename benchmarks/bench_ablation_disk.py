"""A2 -- ablation: disk speed vs. logging overhead.

Sweeps the stable-storage write path from fast (modern-ish) to slow
(early-90s) and measures ML's and CCL's failure-free overhead on MG.
The paper attributes ML's 9-24% overhead to "its large log size and
high disk access latency"; this sweep shows ML degrading with the disk
while CCL's overlap keeps it nearly flat.
"""


from repro.config import DiskConfig
from repro.harness import logging_comparison, render_sweep, sweep

DISKS = [
    ("fast", DiskConfig(write_latency_s=0.1e-3, bandwidth_bps=30e6)),
    ("default", DiskConfig()),
    ("slow", DiskConfig(write_latency_s=2e-3, bandwidth_bps=3e6)),
]


def test_disk_speed_ablation(benchmark, ultra5, save_artifact):
    def body():
        out = {}
        for label, disk in DISKS:
            cfg = ultra5.with_changes(disk=disk)
            cmp = logging_comparison("mg", cfg, scale="test")
            out[label] = {
                "ml_overhead_pct": 100 * (cmp.normalized_time("ml") - 1),
                "ccl_overhead_pct": 100 * (cmp.normalized_time("ccl") - 1),
            }
        return out

    data = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [(label, {}) for label, _d in DISKS],
        lambda label, _p: data[label],
    )
    text = render_sweep("A2: disk speed vs logging overhead (MG)", points)
    save_artifact("ablation_disk", text)
    print("\n" + text)

    for label, metrics in data.items():
        benchmark.extra_info[f"{label}_ml_pct"] = round(metrics["ml_overhead_pct"], 2)
        benchmark.extra_info[f"{label}_ccl_pct"] = round(
            metrics["ccl_overhead_pct"], 2
        )
    # ML suffers more from a slower disk than CCL does
    ml_spread = data["slow"]["ml_overhead_pct"] - data["fast"]["ml_overhead_pct"]
    ccl_spread = data["slow"]["ccl_overhead_pct"] - data["fast"]["ccl_overhead_pct"]
    assert ml_spread > ccl_spread
