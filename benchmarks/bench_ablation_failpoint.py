"""A5 -- ablation: crash point vs. recovery time.

Crashes node 3 of 3D-FFT at increasing fractions of its execution and
measures CCL recovery time.  Recovery work grows with the amount of
logged execution to replay -- the "bounded rollback" the logging
protocol guarantees: the later the crash, the longer the replay, but
never longer than re-execution.
"""


from repro.apps import make_app
from repro.core import run_recovery_experiment
from repro.dsm import DsmSystem
from repro.harness import app_kwargs, render_sweep, sweep


def test_failure_point_ablation(benchmark, ultra5, save_artifact):
    kwargs = app_kwargs("fft3d", "test")

    def body():
        baseline = DsmSystem(make_app("fft3d", **kwargs), ultra5).run()
        total_seals = baseline.nodes[3].seal_count
        out = {"reexec_s": baseline.total_time, "points": {}}
        for frac in (0.25, 0.5, 0.75, 1.0):
            seal = max(1, int(round(frac * total_seals)))
            res = run_recovery_experiment(
                make_app("fft3d", **kwargs), ultra5, "ccl",
                failed_node=3, at_seal=seal,
            )
            assert res.ok, (frac, res.mismatches[:3])
            out["points"][frac] = res.recovery_time
        return out

    data = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [(f"{int(100 * f)}%", {"frac": f}) for f in sorted(data["points"])],
        lambda label, p: {
            "recovery_s": data["points"][p["frac"]],
            "vs_reexec": data["points"][p["frac"]] / data["reexec_s"],
        },
    )
    text = render_sweep(
        "A5: crash point vs CCL recovery time (3D-FFT)", points
    )
    save_artifact("ablation_failpoint", text)
    print("\n" + text)

    times = [data["points"][f] for f in sorted(data["points"])]
    benchmark.extra_info["recovery_times_s"] = [round(t, 4) for t in times]
    # recovery time grows with the crash point and never exceeds re-execution
    assert times == sorted(times)
    assert times[-1] < data["reexec_s"]
