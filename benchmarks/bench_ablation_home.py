"""A4 -- ablation: home-assignment policy.

Compares the TreadMarks-style round-robin home assignment (the paper's
modified-TreadMarks baseline, and our default) against writer-aligned
homes (each page homed at the rank that owns its partition) on red-black SOR.
Aligned homes turn partition writes into free home writes, collapsing
diff traffic -- the effect later HLRC systems exploited with
first-touch placement.
"""


from repro.apps import make_app
from repro.dsm import DsmSystem
from repro.harness import app_kwargs, render_sweep, sweep


def test_home_policy_ablation(benchmark, ultra5, save_artifact):
    kwargs = app_kwargs("sor", "bench")

    def run_policy(policy: str):
        app = make_app("sor", home_policy=policy, **kwargs)
        system = DsmSystem(app, ultra5)
        result = system.run()
        assert app.verify(system), policy
        agg = result.aggregate
        return {
            "exec_s": result.total_time,
            "diffs": float(agg.counters.get("diffs_created", 0)),
            "diff_kb": agg.counters.get("diff_bytes_sent", 0) / 1024.0,
            "faults": float(agg.counters.get("page_faults", 0)),
            "net_mb": result.network_bytes / (1024.0 * 1024.0),
        }

    def body():
        return {p: run_policy(p) for p in ("round_robin", "aligned")}

    data = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [("round_robin", {}), ("aligned", {})],
        lambda label, _p: data[label],
    )
    text = render_sweep("A4: home assignment policy (SOR)", points)
    save_artifact("ablation_home", text)
    print("\n" + text)

    for policy, metrics in data.items():
        benchmark.extra_info[f"{policy}_exec_s"] = round(metrics["exec_s"], 4)
        benchmark.extra_info[f"{policy}_diffs"] = metrics["diffs"]
    # writer-aligned homes eliminate most diff traffic and run faster
    assert data["aligned"]["diffs"] < 0.5 * data["round_robin"]["diffs"]
    assert data["aligned"]["exec_s"] < data["round_robin"]["exec_s"]
