"""A1 -- ablation: CCL's flush/communication overlap.

Runs 3D-FFT under CCL with the overlap enabled (the paper's design:
flush issued alongside the diff round trip, double-buffered) and
disabled (synchronous flush at sync entry, like ML's discipline applied
to CCL's small log).  Isolates how much of CCL's low overhead comes
from the latency-tolerance technique vs. from the small log alone.
"""

from repro.apps import make_app
from repro.core import CoherenceCentricLogging
from repro.dsm import DsmSystem
from repro.harness import app_kwargs, render_sweep, sweep


def test_overlap_ablation(benchmark, ultra5, save_artifact):
    kwargs = app_kwargs("fft3d", "bench")

    def run_variant(overlap: bool) -> float:
        system = DsmSystem(
            make_app("fft3d", **kwargs),
            ultra5,
            lambda _i: CoherenceCentricLogging(overlap=overlap),
        )
        return system.run().total_time

    def body():
        baseline = DsmSystem(make_app("fft3d", **kwargs), ultra5).run().total_time
        return {
            "baseline": baseline,
            "with_overlap": run_variant(True),
            "without_overlap": run_variant(False),
        }

    times = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [
            ("ccl+overlap", {}),
            ("ccl-no-overlap", {}),
        ],
        lambda label, _p: {
            "exec_s": times["with_overlap" if "no" not in label else "without_overlap"],
            "overhead_pct": 100
            * (
                times["with_overlap" if "no" not in label else "without_overlap"]
                / times["baseline"]
                - 1
            ),
        },
    )
    text = render_sweep("A1: CCL flush/communication overlap (3D-FFT)", points)
    save_artifact("ablation_overlap", text)
    print("\n" + text)

    benchmark.extra_info["overhead_with_overlap_pct"] = round(
        100 * (times["with_overlap"] / times["baseline"] - 1), 2
    )
    benchmark.extra_info["overhead_without_overlap_pct"] = round(
        100 * (times["without_overlap"] / times["baseline"] - 1), 2
    )
    # the overlap must be doing real work
    assert times["with_overlap"] < times["without_overlap"]
