"""A3 -- ablation: coherence granularity (page size).

Sweeps the page size and measures 3D-FFT's traffic and the CCL/ML log
ratio.  Larger pages amplify false sharing in the transpose (each rank
needs a slice of every plane but fetches whole pages), growing ML's
page-copy log much faster than CCL's diff log -- the effect behind the
paper's observation that CCL's advantage comes from *not* logging
fetched pages.
"""


from repro.harness import logging_comparison, render_sweep, sweep

PAGE_SIZES = [1024, 4096, 16384]


def test_page_size_ablation(benchmark, ultra5, save_artifact):
    def body():
        out = {}
        for page in PAGE_SIZES:
            cfg = ultra5.with_changes(page_size=page)
            cmp = logging_comparison("fft3d", cfg, scale="test")
            ml = cmp.results["ml"]
            out[page] = {
                "exec_none_s": cmp.row("none").exec_time_s,
                "ml_log_mb": cmp.row("ml").total_log_mb,
                "ccl_log_mb": cmp.row("ccl").total_log_mb,
                "ccl_over_ml_pct": 100 * cmp.ccl_log_fraction,
                "page_faults": float(
                    ml.aggregate.counters.get("page_faults", 0)
                ),
            }
        return out

    data = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [(f"{p}B", {}) for p in PAGE_SIZES],
        lambda label, _p: data[int(label[:-1])],
    )
    text = render_sweep("A3: page size vs traffic and log ratio (3D-FFT)", points)
    save_artifact("ablation_pagesize", text)
    print("\n" + text)

    for page, metrics in data.items():
        benchmark.extra_info[f"p{page}_ccl_over_ml_pct"] = round(
            metrics["ccl_over_ml_pct"], 2
        )
    # bigger pages -> fewer faults but fatter transfers; the CCL/ML log
    # ratio improves (ML logs whole pages, CCL logs word diffs)
    assert data[16384]["page_faults"] < data[1024]["page_faults"]
    assert data[16384]["ccl_over_ml_pct"] < data[1024]["ccl_over_ml_pct"]
