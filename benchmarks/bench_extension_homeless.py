"""X1 -- extension: home-based vs homeless LRC.

The paper's Section 1 claims three advantages for home-based SDSM: home
reads/writes are free, a remote fault costs a single round trip, and no
garbage collection is needed.  This bench runs the four evaluation
workloads under both coherence protocols and tabulates the quantities
those claims are about: execution time, faults, diff-fetch round trips
per fault (homeless pays one per writer), wire traffic, and the bytes
pinned in homeless diff repositories (which, with no GC, only grow).
"""


from repro.apps import PAPER_APPS, make_app
from repro.dsm import DsmSystem
from repro.harness import app_kwargs, render_sweep, sweep


def test_home_based_vs_homeless(benchmark, ultra5, save_artifact):
    def run(name, coherence):
        app = make_app(name, **app_kwargs(name, "test"))
        system = DsmSystem(app, ultra5, coherence=coherence)
        result = system.run()
        assert app.verify(system), (name, coherence)
        agg = result.aggregate
        faults = max(agg.counters.get("page_faults", 0), 1)
        out = {
            "exec_ms": 1e3 * result.total_time,
            "faults": float(agg.counters.get("page_faults", 0)),
            "net_mb": result.network_bytes / 1e6,
        }
        if coherence == "lrc":
            out["rts_per_fault"] = agg.counters.get(
                "diff_fetch_round_trips", 0
            ) / faults
            out["repo_kb"] = sum(n.diff_repo_bytes for n in system.nodes) / 1024
        else:
            out["rts_per_fault"] = 1.0  # one round trip to the home
            out["repo_kb"] = 0.0  # diffs discarded once applied (no GC)
        return out

    def body():
        return {
            (name, coh): run(name, coh)
            for name in PAPER_APPS
            for coh in ("hlrc", "lrc")
        }

    data = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [(f"{name}/{coh}", {"k": (name, coh)})
         for name in PAPER_APPS for coh in ("hlrc", "lrc")],
        lambda label, p: data[p["k"]],
    )
    text = render_sweep("X1: home-based (hlrc) vs homeless (lrc)", points)
    save_artifact("extension_homeless", text)
    print("\n" + text)

    for name in PAPER_APPS:
        hl, ll = data[(name, "hlrc")], data[(name, "lrc")]
        benchmark.extra_info[f"{name}_lrc_rts_per_fault"] = round(
            ll["rts_per_fault"], 2
        )
        benchmark.extra_info[f"{name}_lrc_repo_kb"] = round(ll["repo_kb"], 1)
        # the paper's structural claims
        assert ll["rts_per_fault"] >= 1.0  # homeless needs >= 1 RT/writer
        assert ll["repo_kb"] > 0.0  # homeless retains diffs (no GC)
        assert hl["repo_kb"] == 0.0  # home-based discards them
