"""X3 -- extension: adaptive home migration.

Runs SOR with a deliberately pessimal round-robin home map under static
HLRC and under barrier-synchronised sole-writer migration, plus the
writer-aligned static optimum for reference.  Migration should discover
the aligned placement adaptively: diff traffic collapses toward zero
after the first hand-off wave.
"""


from repro.apps import make_app
from repro.dsm import DsmSystem
from repro.harness import render_sweep, sweep


def test_home_migration(benchmark, ultra5, save_artifact):
    def run(coherence, policy="round_robin"):
        app = make_app("sor", n=128, iters=10, home_policy=policy)
        system = DsmSystem(app, ultra5, coherence=coherence)
        result = system.run()
        assert app.verify(system), (coherence, policy)
        agg = result.aggregate
        return {
            "exec_ms": 1e3 * result.total_time,
            "diffs": float(agg.counters.get("diffs_created", 0)),
            "homes_gained": float(agg.counters.get("homes_gained", 0)),
            "net_mb": result.network_bytes / 1e6,
        }

    def body():
        return {
            "static-rr": run("hlrc"),
            "migrating": run("hlrc-migrate"),
            "static-aligned": run("hlrc", policy="aligned"),
        }

    data = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [(k, {"k": k}) for k in ("static-rr", "migrating", "static-aligned")],
        lambda label, p: data[p["k"]],
    )
    text = render_sweep(
        "X3: adaptive home migration (SOR, pessimal round-robin start)",
        points,
    )
    save_artifact("extension_migration", text)
    print("\n" + text)

    benchmark.extra_info["static_diffs"] = data["static-rr"]["diffs"]
    benchmark.extra_info["migrating_diffs"] = data["migrating"]["diffs"]
    # migration closes most of the gap to the aligned optimum
    assert data["migrating"]["diffs"] < 0.5 * data["static-rr"]["diffs"]
    assert data["migrating"]["homes_gained"] > 0
    assert data["static-aligned"]["diffs"] == 0
