"""X2 -- extension: simultaneous multi-node failure recovery.

Beyond the paper (which evaluates single failures): crash 1, 2, then 4
of the 8 nodes at their final intervals and recover them all
concurrently under CCL.  Victims serve each other from their surviving
logs -- possible precisely because CCL makes every writer log its own
outgoing diffs durably.  Every victim's recovered state is verified
bit-exactly before its time counts.
"""


from repro.apps import make_app
from repro.core import run_multi_recovery_experiment
from repro.dsm import DsmSystem
from repro.harness import app_kwargs, render_sweep, sweep

FAILURE_SETS = [(3,), (1, 5), (0, 2, 4, 6)]


def test_multi_failure_recovery(benchmark, ultra5, save_artifact):
    kwargs = app_kwargs("fft3d", "test")

    def body():
        reexec = DsmSystem(make_app("fft3d", **kwargs), ultra5).run().total_time
        out = {"reexec_s": reexec, "runs": {}}
        for failed in FAILURE_SETS:
            res = run_multi_recovery_experiment(
                make_app("fft3d", **kwargs), ultra5, "ccl", failed_nodes=failed
            )
            assert res.ok, (failed, res.mismatches)
            out["runs"][failed] = res
        return out

    data = benchmark.pedantic(body, rounds=1, iterations=1)
    points = sweep(
        [(f"{len(f)} victim(s)", {"f": f}) for f in FAILURE_SETS],
        lambda label, p: {
            "recovery_s": data["runs"][p["f"]].recovery_time,
            "vs_reexec": data["runs"][p["f"]].recovery_time / data["reexec_s"],
            "slowest_victim": max(
                data["runs"][p["f"]].recovery_times.values()
            ),
        },
    )
    text = render_sweep(
        "X2: concurrent multi-failure CCL recovery (3D-FFT)", points
    )
    save_artifact("extension_multifailure", text)
    print("\n" + text)

    times = [data["runs"][f].recovery_time for f in FAILURE_SETS]
    benchmark.extra_info["recovery_times_s"] = [round(t, 4) for t in times]
    # victims replay concurrently: wall time grows sublinearly with the
    # victim count and stays below re-execution
    assert times[-1] < len(FAILURE_SETS[-1]) * times[0]
    assert all(t < data["reexec_s"] for t in times)
