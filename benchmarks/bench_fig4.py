"""E6 -- Figure 4: impacts of logging protocols on execution time.

Runs all four applications under None/ML/CCL at bench scale and renders
the normalised-execution-time bar chart.  Shape targets (paper): the
CCL bars sit within 1-6% of 1.0; the ML bars at +9% to +24%.
"""

from repro.apps import PAPER_APPS
from repro.harness import logging_comparison, render_fig4


def test_fig4_normalized_execution_time(benchmark, ultra5, save_artifact):
    def body():
        return [
            logging_comparison(name, ultra5, scale="bench")
            for name in PAPER_APPS
        ]

    comparisons = benchmark.pedantic(body, rounds=1, iterations=1)
    text = render_fig4(comparisons)
    save_artifact("fig4", text)
    print("\n" + text)

    for cmp in comparisons:
        benchmark.extra_info[f"{cmp.app_name}_ml"] = round(
            cmp.normalized_time("ml"), 4
        )
        benchmark.extra_info[f"{cmp.app_name}_ccl"] = round(
            cmp.normalized_time("ccl"), 4
        )
        # orderings of the paper's Figure 4
        assert 1.0 <= cmp.normalized_time("ccl") < cmp.normalized_time("ml")
        # CCL's overhead stays in the single digits
        assert cmp.normalized_time("ccl") < 1.10
