"""E7 -- Figure 5: impacts of logging protocols on recovery time.

For each application: one failure-free run (the re-execution baseline),
then a crash of node 3 at its final interval recovered once under ML
and once under CCL.  Every recovery is verified bit-exact against the
crash-point snapshot before its time is reported.

Shape targets (paper): recovery beats re-execution for both schemes
(ML-recovery reductions 43-66%, CCL recovery 55-84%), with CCL ahead of
ML.  Our scaled datasets sit below the paper's pages-per-interval for
Water, where the two schemes come out close (see EXPERIMENTS.md).
"""


from repro.apps import PAPER_APPS
from repro.harness import recovery_comparison, render_fig5


def test_fig5_recovery_time(benchmark, ultra5, save_artifact):
    def body():
        return [
            recovery_comparison(name, ultra5, scale="bench", failed_node=3)
            for name in PAPER_APPS
        ]

    recoveries = benchmark.pedantic(body, rounds=1, iterations=1)
    text = render_fig5(recoveries)
    save_artifact("fig5", text)
    print("\n" + text)

    for rec in recoveries:
        benchmark.extra_info[f"{rec.app_name}_ml_reduction_pct"] = round(
            100 * rec.reduction("ml"), 1
        )
        benchmark.extra_info[f"{rec.app_name}_ccl_reduction_pct"] = round(
            100 * rec.reduction("ccl"), 1
        )
        # both recovery schemes beat re-execution on every workload
        assert rec.normalized("ml") < 1.0, rec.app_name
        assert rec.normalized("ccl") < 1.0, rec.app_name
        # recovery reproduced the crash-point state bit-for-bit
        assert rec.ml.ok and rec.ccl.ok
