"""Microbenchmarks for the vectorised diff engine and the simulator core.

Unlike the other benches (which regenerate paper artefacts), this one
times the *implementation's* hot kernels -- diff create/merge/apply,
the packed stable-log encoding, and raw simulator event throughput --
against the preserved pre-vectorisation references in
:mod:`repro.memory.reference`.  The numbers land in
``benchmark.extra_info`` and ``benchmark_results/micro.txt``; the
committed ``BENCH_perf.json`` (from ``python -m repro perf``) is the
tracked-over-time copy.

Run standalone for CI's perf-smoke job::

    python benchmarks/bench_micro.py --check   # correctness only, no timing gate
    python benchmarks/bench_micro.py           # timings to stdout
"""

import argparse
import json
import sys

from repro.harness.perf import (
    check_kernels,
    run_kernel_benchmarks,
)


def test_micro_kernels(benchmark, save_artifact):
    checked = check_kernels(cases=50)
    data = benchmark.pedantic(
        lambda: run_kernel_benchmarks(repeat=3), rounds=1, iterations=1
    )
    text = json.dumps(data, indent=2, sort_keys=True)
    save_artifact("micro", text)
    print("\n" + text)

    benchmark.extra_info["correctness_cases"] = checked
    for name, row in data.items():
        benchmark.extra_info[f"{name}_ns"] = row["ns_per_op"] if "ns_per_op" in row \
            else row.get("ns_per_event")
        if "speedup" in row:
            benchmark.extra_info[f"{name}_speedup"] = row["speedup"]

    # The headline acceptance number: merging two dense full-page diffs
    # must beat the per-word reference by a wide margin.
    assert data["merge_diffs_dense_fullpage"]["speedup"] >= 5.0
    # The dense-apply fast path (cached span + slice copy) must at least
    # keep parity with the reference's run loop; it regressed to 0.89x
    # once when per-call numpy-scalar extraction crept in.
    assert data["apply_diff_dense"]["speedup"] >= 0.95


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--check", action="store_true",
                   help="correctness only (CI mode): verify the vectorised "
                        "kernels against the references, no timing")
    p.add_argument("--repeat", type=int, default=5)
    args = p.parse_args(argv)

    if args.check:
        checked = check_kernels(cases=200)
        print(f"bench_micro --check: {checked} randomized cases OK "
              "(vectorized kernels byte-identical to references)")
        return 0

    checked = check_kernels(cases=50)
    data = run_kernel_benchmarks(repeat=args.repeat)
    print(json.dumps(data, indent=2, sort_keys=True))
    print(f"# correctness: {checked} cases OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
