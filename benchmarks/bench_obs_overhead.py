"""S2 -- the telemetry layer's runtime cost.

Runs the same application three ways and reports wall-clock seconds:

* ``off``      -- tracer disabled, the default: every span/edge guard
  short-circuits on ``Tracer.enabled``;
* ``spans``    -- causal spans + message edges recorded;
* ``exported`` -- spans recorded, then the Chrome-trace export, the
  critical-path walk, and the flush-overlap metric computed (what
  ``repro timeline`` / ``repro critical-path`` pay per run).

The bound that matters is ``off`` vs an untraced build: tracing-off
must be free, which the pinned golden test
(tests/obs/test_byte_identity.py) checks for *values* and this bench
bounds for *wall time* -- recording must also stay cheap enough that
``--sanitize`` and the chaos suite's failure dumps remain usable.
"""

import time

from repro.apps import make_app
from repro.core import CoherenceCentricLogging
from repro.dsm import DsmSystem
from repro.harness import app_kwargs, render_sweep, sweep
from repro.obs import LatencyRecorder, chrome_trace, critical_path, flush_overlap
from repro.sim.trace import Tracer


def _build(ultra5, traced: bool) -> DsmSystem:
    return DsmSystem(
        make_app("sor", **app_kwargs("sor", "bench")),
        ultra5,
        lambda _i: CoherenceCentricLogging(),
        tracer=Tracer(enabled=traced),
    )


def test_obs_overhead(benchmark, ultra5, save_artifact):
    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def body():
        off = timed(lambda: _build(ultra5, False).run())

        spans_system = _build(ultra5, True)
        spans = timed(lambda: spans_system.run())

        export_system = _build(ultra5, True)

        def run_and_export():
            export_system.run()
            chrome_trace(export_system.tracer)
            critical_path(export_system.tracer)
            flush_overlap(export_system.tracer)

        exported = timed(run_and_export)
        return {
            "off_s": off,
            "spans_s": spans,
            "exported_s": exported,
            "spans": len(spans_system.tracer.spans),
            "edges": len(spans_system.tracer.edges),
        }

    times = benchmark.pedantic(body, rounds=1, iterations=1)

    points = sweep(
        [("off", {}), ("spans", {}), ("exported", {})],
        lambda label, _p: {
            "wall_s": times[f"{label}_s"],
            "overhead_pct": 100 * (times[f"{label}_s"] / times["off_s"] - 1),
        },
    )
    text = render_sweep(
        "telemetry overhead (sor/ccl, bench scale, "
        f"{times['spans']} spans, {times['edges']} edges)",
        points,
    )
    print(text)
    save_artifact("obs_overhead", text)

    benchmark.extra_info.update(
        {k: round(v, 3) if isinstance(v, float) else v for k, v in times.items()}
    )
    # With lazy span construction (module-level TRACING_ACTIVE flag plus
    # site-level guards on detail-dict builds), recording costs <2x the
    # untraced run locally; bound at 3x/5x for shared CI runners.
    assert times["spans_s"] < 3 * max(times["off_s"], 0.05)
    assert times["exported_s"] < 5 * max(times["off_s"], 0.05)


def test_latency_recorder_overhead(benchmark):
    """Bound the always-on streaming latency recorder's observe() cost.

    The recorder runs unconditionally in the lock/barrier/page-fetch
    paths (unlike spans it has no off switch), so its per-observation
    cost is the one number that must stay sub-microsecond-ish.  Bound
    it well below 5us/observe even on shared runners -- at the
    simulator's ~10-100 observations per virtual millisecond that keeps
    the recorder invisible next to event dispatch.
    """
    n = 200_000
    values = [1e-6 * (1 + (i % 997)) for i in range(n)]

    def body():
        rec = LatencyRecorder()
        observe = rec.observe
        for v in values:
            observe(v)
        return rec

    rec = benchmark(body)
    assert rec.count == n
    per_observe = benchmark.stats.stats.mean / n
    benchmark.extra_info["ns_per_observe"] = round(per_observe * 1e9, 1)
    assert per_observe < 5e-6, (
        f"LatencyRecorder.observe costs {per_observe * 1e9:.0f} ns -- "
        "too slow for always-on instrumentation"
    )
    # sanity: the histogram actually answers quantile queries
    assert 0 < rec.quantile(0.99) <= rec.max
