"""S1 -- the coherence sanitizer's runtime cost.

Runs the same application three ways and reports wall-clock seconds:

* ``plain``     -- tracer disabled (instrumentation guards short-circuit);
* ``traced``    -- structured events recorded, nothing checked;
* ``sanitized`` -- traced, then invariant-checked and recoverability-
  audited (what ``pytest --sanitize`` pays per run).

The interesting ratio is plain vs traced: event construction sits on
every protocol operation, so it must be near-free when off.  Checking
happens once, after the run, off any simulated critical path.
"""

import time

from repro.analysis import audit_recoverability, check_trace
from repro.apps import make_app
from repro.core import CoherenceCentricLogging
from repro.dsm import DsmSystem
from repro.harness import app_kwargs, render_sweep, sweep
from repro.sim.trace import Tracer


def _build(ultra5, traced: bool) -> DsmSystem:
    return DsmSystem(
        make_app("sor", **app_kwargs("sor", "bench")),
        ultra5,
        lambda _i: CoherenceCentricLogging(),
        tracer=Tracer(enabled=traced),
    )


def test_sanitizer_overhead(benchmark, ultra5, save_artifact):
    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def body():
        plain = timed(lambda: _build(ultra5, False).run())

        traced_system = _build(ultra5, True)
        traced = timed(lambda: traced_system.run())

        checked_system = _build(ultra5, True)

        def run_and_check():
            checked_system.run()
            check_trace(checked_system.tracer).raise_if_failed()
            audit_recoverability(checked_system).raise_if_failed()

        sanitized = timed(run_and_check)
        return {
            "plain_s": plain,
            "traced_s": traced,
            "sanitized_s": sanitized,
            "events": len(traced_system.tracer),
        }

    times = benchmark.pedantic(body, rounds=1, iterations=1)

    points = sweep(
        [("plain", {}), ("traced", {}), ("sanitized", {})],
        lambda label, _p: {
            "wall_s": times[f"{label}_s"],
            "overhead_pct": 100 * (times[f"{label}_s"] / times["plain_s"] - 1),
        },
    )
    text = render_sweep(
        "sanitizer overhead (sor/ccl, bench scale, "
        f"{times['events']} trace events)",
        points,
    )
    print(text)
    save_artifact("sanitizer_overhead", text)

    benchmark.extra_info.update(
        {k: round(v, 3) if isinstance(v, float) else v for k, v in times.items()}
    )
    # sanity: the checked run must not be an order of magnitude slower
    assert times["sanitized_s"] < 20 * max(times["plain_s"], 0.05)
