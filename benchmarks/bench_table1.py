"""E1 -- Table 1: application characteristics.

Regenerates the paper's Table 1 (program, data-set size, and
synchronisation type of the four evaluation applications) and times one
verified no-logging run of each scaled-down application as the
benchmark body.
"""

from repro.apps import PAPER_APPS
from repro.harness import render_table1, run_application


def test_table1_characteristics(benchmark, ultra5, save_artifact):
    def body():
        totals = {}
        for name in PAPER_APPS:
            result, _system = run_application(name, "none", ultra5, scale="test")
            totals[name] = result.total_time
        return totals

    totals = benchmark.pedantic(body, rounds=1, iterations=1)
    text = render_table1(PAPER_APPS)
    save_artifact("table1", text)
    for name, t in totals.items():
        benchmark.extra_info[f"{name}_exec_s"] = round(t, 4)
    print("\n" + text)
