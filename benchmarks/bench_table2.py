"""E2-E5 -- Table 2(a)-(d): overhead details under the logging protocols.

One benchmark per application (3D-FFT, MG, Shallow, Water): run the app
under None, ML, and CCL at bench scale, render the paper's Table 2
panel, and record the headline metrics.

Paper shape targets (Section 4.2): CCL execution overhead 1-6%, ML
9-24%; CCL total log a small fraction of ML's (4.5-12.5% in the paper's
configuration).
"""

import pytest

from repro.apps import PAPER_APPS
from repro.harness import logging_comparison, render_table2_panel

PANEL = {"fft3d": "a", "mg": "b", "shallow": "c", "water": "d"}


@pytest.mark.parametrize("app_name", PAPER_APPS)
def test_table2_panel(benchmark, ultra5, save_artifact, app_name):
    """Both configurations are reported: the *sound* default (round-robin
    homes + home-write diff logging, supporting bit-exact recovery) and
    the *paper-faithful* mode (writer-aligned homes, no home-write
    logging) whose log-size ratios match the paper's 4.5%-12.5%."""

    def body():
        sound = logging_comparison(app_name, ultra5, scale="bench")
        paper = logging_comparison(
            app_name, ultra5, scale="bench", paper_mode=True
        )
        return sound, paper

    sound, paper = benchmark.pedantic(body, rounds=1, iterations=1)
    text = (
        render_table2_panel(sound)
        + "\n\n[paper-faithful configuration: aligned homes, no home-write"
        " logging]\n"
        + render_table2_panel(paper)
    )
    save_artifact(f"table2{PANEL[app_name]}_{app_name}", text)
    print("\n" + text)

    benchmark.extra_info["ml_overhead_pct"] = round(
        100 * (sound.normalized_time("ml") - 1), 2
    )
    benchmark.extra_info["ccl_overhead_pct"] = round(
        100 * (sound.normalized_time("ccl") - 1), 2
    )
    benchmark.extra_info["ccl_log_fraction_pct"] = round(
        100 * sound.ccl_log_fraction, 2
    )
    benchmark.extra_info["paper_mode_ccl_log_fraction_pct"] = round(
        100 * paper.ccl_log_fraction, 2
    )

    # the paper's qualitative claims must hold in both configurations
    for cmp in (sound, paper):
        assert cmp.normalized_time("ccl") < cmp.normalized_time("ml")
        assert cmp.ccl_log_fraction < 1.0
    # and the paper-faithful mode lands in the paper's log-ratio band
    assert paper.ccl_log_fraction < 0.20
