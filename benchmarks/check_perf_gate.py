"""The CI perf gate: fail on regression against the committed trajectory.

Re-times the hot kernels and the simulator event loop, then compares
against the most recent entries of ``benchmark_results/history.jsonl``
(the committed perf trajectory that every ``python -m repro perf`` run
appends to) that recorded each metric.  The gate fails (exit 1) when,
beyond ``--tolerance`` (default 10%):

* ``sim_event_throughput`` (events/s) dropped -- the event-loop
  rewrite's headline number; or
* any *parity-gated* kernel (the diff/encode kernels that have a
  preserved reference oracle, see ``bench_micro.py --check``) got
  slower in ns/op.

Timings are best-of-N on the current host, so the comparison is only
meaningful against a baseline recorded on comparable hardware: CI runs
this with a loose tolerance to catch order-of-magnitude regressions
(shared runners vary), while ``make perf-gate`` enforces the strict
default on a quiet dev box against its own committed numbers.

Usage::

    PYTHONPATH=src python benchmarks/check_perf_gate.py \
        [--history benchmark_results/history.jsonl] \
        [--repeat 5] [--tolerance 0.10]
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.harness.perf import run_kernel_benchmarks  # noqa: E402

#: Kernels with a preserved pre-vectorisation reference oracle; these
#: are the ones whose speedups the campaign claims, so they are the
#: ones the gate refuses to let slide.
PARITY_GATED_KERNELS = [
    "create_diff_dense",
    "create_diff_scattered",
    "merge_diffs_dense_fullpage",
    "merge_diffs_scattered",
    "apply_diff_dense",
    "apply_diff_scattered",
    "stablelog_encode",
]

#: history.jsonl entry schemas this gate knows how to read.  Entries
#: written before the field existed are treated as schema 1; entries
#: from a *newer* checkout are skipped with a warning instead of
#: crashing the gate (forward compatibility).
SUPPORTED_HISTORY_SCHEMAS = {1}


def load_baseline(path: str) -> tuple:
    """Baseline (kernel entry, throughput entry) from the trajectory.

    Headline-only ``repro perf --target`` entries carry no kernel
    timings (and pre-campaign entries carry no events/s), so each
    metric family baselines against the most recent entry that actually
    recorded it.  Entries with an unknown ``schema`` are skipped with a
    warning -- a newer writer must not brick an older gate.
    """
    with open(path) as fh:
        entries = [json.loads(ln) for ln in fh.read().splitlines() if ln.strip()]
    if not entries:
        raise SystemExit(f"perf-gate: {path} is empty -- run `python -m repro perf`")
    readable = []
    for i, e in enumerate(entries):
        schema = e.get("schema", 1)
        if schema in SUPPORTED_HISTORY_SCHEMAS:
            readable.append(e)
        else:
            print(f"perf-gate: WARNING skipping {path} entry {i} "
                  f"(rev {e.get('git_rev', '?')}): unknown schema {schema!r} "
                  f"(this gate reads {sorted(SUPPORTED_HISTORY_SCHEMAS)})")
    if not readable:
        raise SystemExit(
            f"perf-gate: no readable entries in {path} -- every entry has an "
            f"unknown schema; update the checkout or re-run `python -m repro perf`"
        )
    kernels = next(
        (e for e in reversed(readable) if e.get("kernels_ns_per_op")), {}
    )
    sim = next(
        (e for e in reversed(readable) if e.get("sim_events_per_sec")), {}
    )
    return kernels, sim


def merge_best(best: dict, cur: dict) -> dict:
    """Element-wise best of two measurement passes.

    Timing on a shared box is one-sided noise: a measurement can only
    come out *slower* than the machine's capability, never faster, so
    the minimum ns/op (maximum events/s) across passes is the honest
    estimate.  A genuine regression survives every pass; a scheduler
    hiccup does not.
    """
    if best is None:
        return cur
    out = dict(best)
    for name, row in cur.items():
        if name == "sim_event_throughput":
            if row["events_per_sec"] > out[name]["events_per_sec"]:
                out[name] = row
        elif row.get("ns_per_op", 1e18) < out.get(name, {}).get("ns_per_op", 1e18):
            out[name] = row
    return out


def evaluate(current: dict, base_k: dict, base_s: dict, tolerance: float):
    """Compare one merged measurement against the baseline entries."""
    failures = []
    rows = []

    # Headline: simulator event throughput (higher is better).
    base_eps = base_s.get("sim_events_per_sec")
    cur_eps = current["sim_event_throughput"]["events_per_sec"]
    if base_eps:
        delta = cur_eps / base_eps - 1.0
        ok = delta >= -tolerance
        rows.append(("sim_event_throughput [events/s]",
                     f"{base_eps:,.0f}", f"{cur_eps:,.0f}", delta, ok))
        if not ok:
            failures.append("sim_event_throughput")
    else:
        rows.append(("sim_event_throughput [events/s]",
                     "(absent)", f"{cur_eps:,.0f}", None, True))

    # Parity-gated kernels (lower ns/op is better).
    base_kernels = base_k.get("kernels_ns_per_op", {})
    for name in PARITY_GATED_KERNELS:
        base_ns = base_kernels.get(name)
        cur_ns = current[name]["ns_per_op"]
        if base_ns:
            delta = cur_ns / base_ns - 1.0
            ok = delta <= tolerance
            rows.append((f"{name} [ns/op]",
                         f"{base_ns:,.0f}", f"{cur_ns:,.0f}", delta, ok))
            if not ok:
                failures.append(name)
        else:
            rows.append((f"{name} [ns/op]", "(absent)", f"{cur_ns:,.0f}",
                         None, True))
    return failures, rows


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--history", default="benchmark_results/history.jsonl",
                   help="trajectory file providing the baseline entries")
    p.add_argument("--repeat", type=int, default=5,
                   help="timing repetitions per kernel (best-of)")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="allowed fractional regression (0.10 = 10%%)")
    p.add_argument("--retries", type=int, default=3,
                   help="extra measurement passes while any metric fails "
                        "(best-of across passes; a real regression "
                        "survives them all)")
    args = p.parse_args(argv)

    base_k, base_s = load_baseline(args.history)
    print(f"perf-gate: baselining against {args.history} -- kernels from "
          f"rev {base_k.get('git_rev')} ({base_k.get('ts')}), events/s from "
          f"rev {base_s.get('git_rev')} ({base_s.get('ts')})")

    best = None
    for attempt in range(1 + max(0, args.retries)):
        best = merge_best(best, run_kernel_benchmarks(repeat=args.repeat))
        failures, rows = evaluate(best, base_k, base_s, args.tolerance)
        if not failures:
            break
        if attempt < args.retries:
            print(f"perf-gate: {', '.join(failures)} over tolerance on pass "
                  f"{attempt + 1}; re-measuring (noise vs regression)")

    width = max(len(r[0]) for r in rows)
    for metric, base, cur, delta, ok in rows:
        d = "      --" if delta is None else f"{delta:+8.1%}"
        mark = "ok  " if ok else "FAIL"
        print(f"  {mark}  {metric:<{width}}  {base:>14} -> {cur:>14}  {d}")

    if failures:
        print(f"perf-gate: FAIL -- {len(failures)} metric(s) regressed more "
              f"than {args.tolerance:.0%}: {', '.join(failures)}")
        print()
        print(attribute_failure(best, base_k, base_s))
        return 1
    print(f"perf-gate: OK -- no metric regressed more than {args.tolerance:.0%}")
    return 0


def attribute_failure(best: dict, base_k: dict, base_s: dict) -> str:
    """Ranked regression attribution for a failed gate.

    Builds two pseudo trajectory entries -- the baseline the gate
    compared against and this run's best-of measurements -- and hands
    them to ``repro explain``'s history mode, so the CI log ends with
    *which* kernels moved, ranked by contribution, not just a threshold
    breach.
    """
    from repro.obs.explain import explain_history, render_explain

    baseline = {
        "ts": base_k.get("ts") or base_s.get("ts"),
        "git_rev": base_k.get("git_rev") or base_s.get("git_rev"),
        "kernels_ns_per_op": dict(base_k.get("kernels_ns_per_op", {})),
        "sim_events_per_sec": base_s.get("sim_events_per_sec"),
    }
    current = {
        "ts": "this run",
        "git_rev": "worktree",
        "kernels_ns_per_op": {
            name: row["ns_per_op"] for name, row in best.items()
            if isinstance(row, dict) and row.get("ns_per_op") is not None
        },
        "sim_events_per_sec":
            best["sim_event_throughput"]["events_per_sec"]
            if "sim_event_throughput" in best else None,
    }
    return render_explain(explain_history(baseline, current))


if __name__ == "__main__":
    raise SystemExit(main())
