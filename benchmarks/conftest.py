"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation
(a Table 2 panel, Figure 4/5 series, or an ablation) and:

* measures the wall-clock cost of the simulation via pytest-benchmark
  (one round -- the simulations are deterministic);
* stores the headline numbers in ``benchmark.extra_info`` (visible in
  ``--benchmark-json`` output);
* writes the rendered artefact to ``benchmark_results/<name>.txt`` so
  the regenerated tables/figures survive output capturing.
"""

import pathlib

import pytest

from repro.config import ClusterConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def ultra5() -> ClusterConfig:
    """The paper's 8-node testbed."""
    return ClusterConfig.ultra5(num_nodes=8)


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Persist a rendered table/figure next to the benchmark output."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save
