#!/usr/bin/env python3
"""Crash a node mid-run and watch coherence-centric recovery replay it.

Runs the Water molecular-dynamics workload (locks + barriers), crashes
node 5 at its final sealed interval, and recovers it twice -- once with
traditional message logging, once with coherence-centric logging --
verifying each time that the replayed node's memory image, page table,
and vector clock match the crash-point snapshot bit for bit.

Usage::

    python examples/crash_recovery_demo.py [app] [failed_node]
"""

import sys

from repro import ClusterConfig, make_app, run_recovery_experiment
from repro.dsm import DsmSystem
from repro.harness import app_kwargs


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "water"
    failed_node = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    cluster = ClusterConfig.ultra5(num_nodes=8)
    kwargs = app_kwargs(app_name, "test")

    print(f"Workload: {app_name}   crash victim: node {failed_node}")
    baseline = DsmSystem(make_app(app_name, **kwargs), cluster).run()
    print(f"Failure-free execution: {baseline.total_time * 1e3:8.2f} ms "
          "(= the cost of re-execution from the initial state)")
    print()

    for protocol in ("ml", "ccl"):
        res = run_recovery_experiment(
            make_app(app_name, **kwargs), cluster, protocol,
            failed_node=failed_node,
        )
        status = "bit-exact" if res.ok else f"DIVERGED: {res.mismatches[:3]}"
        saving = 100.0 * (1.0 - res.recovery_time / baseline.total_time)
        c = res.replay_stats.counters
        print(f"{protocol.upper()}-recovery of node {failed_node} "
              f"(crash at seal {res.at_seal}):")
        print(f"  recovery time : {res.recovery_time * 1e3:8.2f} ms "
              f"({saving:+.1f}% vs re-execution)")
        print(f"  verification  : {status}")
        if protocol == "ml":
            print(f"  replay faults : {int(c.get('replay_faults', 0))} "
                  "(each a disk read of a logged page copy)")
        else:
            print(f"  prefetched    : {int(c.get('pages_prefetched', 0))} pages "
                  f"({int(c.get('prefetch_direct', 0))} direct, "
                  f"{int(c.get('prefetch_delta', 0))} delta, "
                  f"{int(c.get('prefetch_rebuilt', 0))} rebuilt; "
                  "zero replay faults)")
        print()

    print("CCL reconstructs every page the replay will touch at the start "
          "of each\ninterval, from writer-logged diffs -- the memory-miss "
          "idle time ML-recovery\npays at every fault simply never happens.")


if __name__ == "__main__":
    main()
