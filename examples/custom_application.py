#!/usr/bin/env python3
"""Write your own workload against the DSM API.

Implements a small parallel histogram from scratch: each rank scans a
private shard of a data stream, accumulates a private histogram, and
merges it into the shared global histogram under a lock -- then rank 0
publishes the winner bin.  The app plugs into everything the library
offers: all three logging protocols and verified crash recovery.

Usage::

    python examples/custom_application.py
"""

import numpy as np

from repro import ClusterConfig, DsmSystem, make_hooks_factory
from repro import run_recovery_experiment
from repro.apps import DsmApplication, gather_global


class HistogramApp(DsmApplication):
    """Lock-merged parallel histogram over a deterministic data stream."""

    name = "histogram"
    synchronization = "locks and barriers"

    def __init__(self, items: int = 4096, bins: int = 64, rounds: int = 3,
                 seed: int = 99):
        self.items, self.bins, self.rounds, self.seed = items, bins, rounds, seed
        self.iterations = rounds
        self.data_set = f"{rounds} rounds over {items} items, {bins} bins"

    def _stream(self, rnd: int) -> np.ndarray:
        rng = np.random.RandomState(self.seed + rnd)
        return rng.randint(0, self.bins, size=self.items)

    def allocate(self, space, nprocs):
        space.allocate("hist", (self.bins,), np.int64,
                       init=np.zeros(self.bins, np.int64))
        space.allocate("winner", (self.rounds,), np.int64,
                       init=np.zeros(self.rounds, np.int64))

    def program(self, dsm):
        per = self.items // dsm.nprocs
        lo, hi = dsm.rank * per, (dsm.rank + 1) * per
        for rnd in range(self.rounds):
            local = np.bincount(self._stream(rnd)[lo:hi], minlength=self.bins)
            yield from dsm.compute(5.0 * per)
            # merge into the shared histogram under the lock
            yield from dsm.acquire(0)
            yield from dsm.read("hist")
            yield from dsm.write("hist")
            dsm.arr("hist")[:] += local
            yield from dsm.release(0)
            yield from dsm.barrier()
            if dsm.rank == 0:
                yield from dsm.read("hist")
                yield from dsm.write("winner", rnd, rnd + 1)
                dsm.arr("winner")[rnd] = int(dsm.arr("hist").argmax())
                # reset for the next round
                yield from dsm.write("hist")
                dsm.arr("hist")[:] = 0
            yield from dsm.barrier()

    def verify(self, system):
        expected = [
            int(np.bincount(self._stream(r), minlength=self.bins).argmax())
            for r in range(self.rounds)
        ]
        got = gather_global(system, "winner").tolist()
        return got == expected


def main() -> None:
    cluster = ClusterConfig.ultra5(num_nodes=8)
    app = HistogramApp()
    print(f"Custom app: {app.data_set} on 8 nodes")
    for protocol in ("none", "ml", "ccl"):
        system = DsmSystem(app, cluster, make_hooks_factory(protocol))
        result = system.run()
        ok = app.verify(system)
        print(f"  {protocol:>4}: {result.total_time * 1e3:7.2f} ms, "
              f"log {result.total_log_bytes / 1024:6.1f} KB, verified={ok}")

    res = run_recovery_experiment(HistogramApp(), cluster, "ccl", failed_node=2)
    print(f"  recovery of node 2 at seal {res.at_seal}: "
          f"{res.recovery_time * 1e3:.2f} ms, bit-exact={res.ok}")


if __name__ == "__main__":
    main()
