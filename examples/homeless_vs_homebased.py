#!/usr/bin/env python3
"""Home-based vs homeless LRC: the paper's Section 1 trade-offs, live.

Runs each evaluation workload under both coherence protocols and prints
the quantities the paper's introduction argues about:

* a home-based fault is one round trip to the home; a homeless fault
  gathers diffs from every writer with relevant intervals;
* home-based homes discard a diff as soon as it is applied; homeless
  writers pin their diffs until a garbage-collection epoch that this
  implementation (like the paper's argument) never needs to run for
  home-based;
* home reads/writes are free for the home node.

Usage::

    python examples/homeless_vs_homebased.py
"""

from repro import ClusterConfig, DsmSystem, make_app
from repro.apps import PAPER_APPS
from repro.harness import app_kwargs


def run(name: str, coherence: str):
    app = make_app(name, **app_kwargs(name, "test"))
    system = DsmSystem(app, ClusterConfig.ultra5(num_nodes=8),
                       coherence=coherence)
    result = system.run()
    assert app.verify(system), (name, coherence)
    agg = result.aggregate
    faults = max(int(agg.counters.get("page_faults", 0)), 1)
    if coherence == "lrc":
        rts = agg.counters.get("diff_fetch_round_trips", 0) / faults
        repo = sum(n.diff_repo_bytes for n in system.nodes) / 1024
    else:
        rts, repo = 1.0, 0.0
    return {
        "exec_ms": 1e3 * result.total_time,
        "faults": faults,
        "rts_per_fault": rts,
        "repo_kb": repo,
        "net_mb": result.network_bytes / 1e6,
    }


def main() -> None:
    print(f"{'workload':<10}{'protocol':<10}{'exec(ms)':>10}{'faults':>8}"
          f"{'RTs/fault':>11}{'repo(KB)':>10}{'net(MB)':>9}")
    print("-" * 58)
    for name in PAPER_APPS:
        for coherence in ("hlrc", "lrc"):
            m = run(name, coherence)
            print(f"{name:<10}{coherence:<10}{m['exec_ms']:>10.1f}"
                  f"{m['faults']:>8d}{m['rts_per_fault']:>11.2f}"
                  f"{m['repo_kb']:>10.1f}{m['net_mb']:>9.2f}")
    print()
    print("Homeless LRC pays one diff round trip per writer at every fault")
    print("and retains every diff it ever created; home-based HLRC pays one")
    print("round trip to the home and retains nothing -- the trade the")
    print("paper's introduction lays out.")


if __name__ == "__main__":
    main()
