#!/usr/bin/env python3
"""Explore the design space: disk speed, page size, and home placement.

Three miniature studies built from the library's sweep machinery:

1. how ML's synchronous flush and CCL's overlapped flush react to the
   stable-storage write path getting slower;
2. how the coherence granularity (page size) moves traffic and the
   CCL/ML log-size ratio;
3. what writer-aligned home placement does to diff traffic (the lever
   later HLRC systems pulled with first-touch allocation).

Usage::

    python examples/logging_tradeoffs.py
"""

from repro import ClusterConfig, make_app
from repro.config import DiskConfig
from repro.dsm import DsmSystem
from repro.harness import (
    app_kwargs,
    logging_comparison,
    render_sweep,
    sweep,
)


def disk_speed_study(cluster: ClusterConfig) -> str:
    disks = [
        ("fast", DiskConfig(write_latency_s=0.1e-3, bandwidth_bps=30e6)),
        ("default", DiskConfig()),
        ("slow", DiskConfig(write_latency_s=2e-3, bandwidth_bps=3e6)),
    ]

    def measure(label, params):
        cmp = logging_comparison("sor", params["cfg"], scale="test")
        return {
            "ml_overhead_pct": 100 * (cmp.normalized_time("ml") - 1),
            "ccl_overhead_pct": 100 * (cmp.normalized_time("ccl") - 1),
        }

    points = sweep(
        [(label, {"cfg": cluster.with_changes(disk=d)}) for label, d in disks],
        measure,
    )
    return render_sweep("Disk speed vs failure-free overhead (SOR)", points)


def page_size_study(cluster: ClusterConfig) -> str:
    def measure(label, params):
        cmp = logging_comparison(
            "fft3d", cluster.with_changes(page_size=params["page"]), scale="test"
        )
        return {
            "ccl_over_ml_log_pct": 100 * cmp.ccl_log_fraction,
            "ml_log_mb": cmp.row("ml").total_log_mb,
        }

    points = sweep(
        [(f"{p} B pages", {"page": p}) for p in (1024, 4096, 16384)], measure
    )
    return render_sweep("Page size vs log volume (3D-FFT)", points)


def home_placement_study(cluster: ClusterConfig) -> str:
    def measure(label, params):
        app = make_app("sor", home_policy=params["policy"],
                       **app_kwargs("sor", "test"))
        result = DsmSystem(app, cluster).run()
        agg = result.aggregate
        return {
            "exec_ms": 1e3 * result.total_time,
            "diffs": float(agg.counters.get("diffs_created", 0)),
            "faults": float(agg.counters.get("page_faults", 0)),
        }

    points = sweep(
        [("round_robin", {"policy": "round_robin"}),
         ("writer-aligned", {"policy": "aligned"})],
        measure,
    )
    return render_sweep("Home placement vs protocol traffic (SOR)", points)


def main() -> None:
    cluster = ClusterConfig.ultra5(num_nodes=8)
    for study in (disk_speed_study, page_size_study, home_placement_study):
        print(study(cluster))
        print()


if __name__ == "__main__":
    main()
