#!/usr/bin/env python3
"""Quickstart: run an application on the recoverable home-based DSM.

Runs the 3D-FFT workload on the paper's simulated 8-node Ultra-5
cluster under all three logging protocols, verifies the numerics
against ``numpy.fft``, and prints the paper-style Table 2 panel.

Usage::

    python examples/quickstart.py
"""

from repro import ClusterConfig
from repro.harness import logging_comparison, render_table2_panel


def main() -> None:
    cluster = ClusterConfig.ultra5(num_nodes=8)
    print("Simulating 8 x Sun Ultra-5 on switched 100 Mbps Ethernet...")
    print()

    cmp = logging_comparison("fft3d", cluster, scale="test")
    print(render_table2_panel(cmp))
    print()

    none_t = cmp.row("none").exec_time_s
    for protocol in ("ml", "ccl"):
        row = cmp.row(protocol)
        overhead = 100.0 * (row.exec_time_s / none_t - 1.0)
        print(
            f"{protocol.upper():>3}: +{overhead:.1f}% failure-free overhead, "
            f"{row.total_log_mb:.3f} MB logged in {row.num_flushes} flushes"
        )
    print()
    print(
        "CCL's flush overlaps the diff round trip that HLRC already "
        "performs, so its\nlog reaches stable storage almost for free -- "
        "the paper's headline result."
    )


if __name__ == "__main__":
    main()
