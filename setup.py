"""Setup script.

Metadata lives here (rather than only in ``pyproject.toml``) because the
target environment ships setuptools 65 without the ``wheel`` package, so
PEP 660 editable installs are unavailable; ``pip install -e .
--no-build-isolation`` falls back to this legacy path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Coherence-centric logging and recovery for home-based software "
        "DSM (ICPP 1999 reproduction)"
    ),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
