"""repro -- Coherence-Centric Logging and Recovery for Home-Based SDSM.

A from-scratch Python reproduction of Kongmunvattana & Tzeng (ICPP
1999): a home-based lazy-release-consistency software DSM running on a
deterministic cluster simulator, the paper's coherence-centric logging
(CCL) protocol and its traditional message-logging (ML) baseline,
prefetch-based crash recovery with bit-exact state verification, the
four evaluation workloads, and a harness regenerating every table and
figure of the paper.

Quickstart::

    from repro import ClusterConfig, DsmSystem, make_app, make_hooks_factory

    app = make_app("fft3d")
    system = DsmSystem(app, ClusterConfig.ultra5(), make_hooks_factory("ccl"))
    result = system.run()
    print(result.total_time, result.total_log_bytes)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

from .config import ClusterConfig, CpuConfig, DiskConfig, NetworkConfig
from .dsm import Dsm, DsmSystem, RunResult, VectorClock
from .apps import APP_REGISTRY, PAPER_APPS, DsmApplication, make_app
from .core import (
    CoherenceCentricLogging,
    MessageLogging,
    NoLogging,
    RecoveryResult,
    make_hooks,
    make_hooks_factory,
    run_recovery_experiment,
)
from .harness import (
    logging_comparison,
    recovery_comparison,
    render_fig4,
    render_fig5,
    render_table1,
    render_table2_panel,
    run_application,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ClusterConfig",
    "NetworkConfig",
    "DiskConfig",
    "CpuConfig",
    "Dsm",
    "DsmSystem",
    "RunResult",
    "VectorClock",
    "DsmApplication",
    "APP_REGISTRY",
    "PAPER_APPS",
    "make_app",
    "NoLogging",
    "MessageLogging",
    "CoherenceCentricLogging",
    "make_hooks",
    "make_hooks_factory",
    "RecoveryResult",
    "run_recovery_experiment",
    "run_application",
    "logging_comparison",
    "recovery_comparison",
    "render_table1",
    "render_table2_panel",
    "render_fig4",
    "render_fig5",
]
