"""Coherence sanitizer: static and dynamic checks for the simulator.

Three independent passes (see ``docs/analysis.md`` for the invariant
catalogue):

* :mod:`repro.analysis.invariants` -- trace-driven protocol invariant
  checker and word-granularity data-race detector;
* :mod:`repro.analysis.recoverability` -- log auditor that proves every
  fetched page version is derivable from the initial image plus logged
  diffs (the paper's recoverability claim, machine-checked);
* :mod:`repro.analysis.lint` -- AST lint pass for simulator-specific
  hazards (``python -m repro.analysis.lint``);
* :mod:`repro.analysis.protoflow` -- static message-flow conformance:
  the send/handler graph extracted from ``dsm/`` checked against the
  declared protocol table (``python -m repro.analysis.protoflow``);
* :mod:`repro.analysis.modelcheck` -- small-scope model checker:
  exhaustive delivery-schedule exploration with sleep-set partial-order
  reduction plus bit-exact recovery from every reachable crash point
  (``python -m repro modelcheck``).

:mod:`repro.analysis.sanitize` wires the first two into every
``DsmSystem.run`` call; the test suite enables it with
``pytest --sanitize``.
"""

from typing import Any

from .invariants import (
    InvariantChecker,
    InvariantReport,
    RaceDetector,
    Violation,
    check_trace,
)
from .recoverability import Problem, RecoverabilityReport, audit_recoverability
from .sanitize import install as install_sanitizer

#: Lazy exports (PEP 562): keeps ``python -m repro.analysis.lint`` /
#: ``.protoflow`` free of runpy double-import warnings.
_LAZY = {
    "is_suppressed": ("lint", "is_suppressed"),
    "McReport": ("modelcheck", "McReport"),
    "McViolation": ("modelcheck", "McViolation"),
    "ModelChecker": ("modelcheck", "ModelChecker"),
    "run_modelcheck": ("modelcheck", "run_modelcheck"),
    "analyze_paths": ("protoflow", "analyze_paths"),
    "analyze_source": ("protoflow", "analyze_source"),
}


def __getattr__(name: str) -> Any:
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), attr)


__all__ = [
    "InvariantChecker",
    "InvariantReport",
    "RaceDetector",
    "Violation",
    "check_trace",
    "Problem",
    "RecoverabilityReport",
    "audit_recoverability",
    "install_sanitizer",
    "is_suppressed",
    "McReport",
    "McViolation",
    "ModelChecker",
    "run_modelcheck",
    "analyze_paths",
    "analyze_source",
]
