"""Coherence sanitizer: static and dynamic checks for the simulator.

Three independent passes (see ``docs/analysis.md`` for the invariant
catalogue):

* :mod:`repro.analysis.invariants` -- trace-driven protocol invariant
  checker and word-granularity data-race detector;
* :mod:`repro.analysis.recoverability` -- log auditor that proves every
  fetched page version is derivable from the initial image plus logged
  diffs (the paper's recoverability claim, machine-checked);
* :mod:`repro.analysis.lint` -- AST lint pass for simulator-specific
  hazards (``python -m repro.analysis.lint``).

:mod:`repro.analysis.sanitize` wires the first two into every
``DsmSystem.run`` call; the test suite enables it with
``pytest --sanitize``.
"""

from .invariants import (
    InvariantChecker,
    InvariantReport,
    RaceDetector,
    Violation,
    check_trace,
)
from .recoverability import Problem, RecoverabilityReport, audit_recoverability
from .sanitize import install as install_sanitizer

__all__ = [
    "InvariantChecker",
    "InvariantReport",
    "RaceDetector",
    "Violation",
    "check_trace",
    "Problem",
    "RecoverabilityReport",
    "audit_recoverability",
    "install_sanitizer",
]
