"""Trace-driven protocol invariant checker.

Consumes the structured events a :class:`~repro.sim.trace.Tracer`
records (see :class:`~repro.sim.trace.Ev`) and validates the HLRC
invariants the paper's correctness argument rests on:

* **vt-monotonic** -- a node's applied vector timestamp only grows
  along its own execution (Section 2: interval timestamps capture a
  monotonically growing causal history).
* **lock-hb** -- the timestamp a node holds after acquiring a lock
  dominates the timestamp the previous holder had when it released it
  (write notices travel the lock chain, Section 2).
* **barrier-hb** -- the timestamp a node leaves a barrier with
  dominates every participant's check-in timestamp (the barrier release
  carries every record the node lacks, Section 2).
* **page-state** -- page-table transitions follow the
  INVALID/CLEAN/DIRTY protection automaton of
  :mod:`repro.memory.page`, and a home copy never changes state on its
  home node (home copies are permanently valid, Section 2).
* **diff-ack-order** -- at a release/barrier the diffs of the closing
  interval are sent to their homes and *acknowledged* before the
  interval is sealed (Figure 2: the releaser waits for all diff ACKs),
  and every diff applied at a home was actually sent by its writer.
* **serve-fetch** -- the bytes installed by a page fault are exactly
  the bytes some home served for that page (content integrity of the
  fetch path, checked by CRC).
* **data-race** -- word-granularity write sets of *concurrent*
  intervals (vector timestamps incomparable) never overlap; HLRC
  merges concurrent diffs at the home assuming data-race-free programs
  touch disjoint words (Section 2), so an overlap is an application
  data race the protocol would silently resolve arbitrarily.

``check_trace`` runs all of them over a trace and returns an
:class:`InvariantReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import InvariantViolationError
from ..memory.page import PageState
from ..sim.trace import Ev, TraceEvent, Tracer

__all__ = [
    "Violation",
    "InvariantReport",
    "InvariantChecker",
    "RaceDetector",
    "check_trace",
]

#: Legal page-table transitions ``(from, to)`` (states by value string).
LEGAL_TRANSITIONS = frozenset(
    {
        (PageState.INVALID.value, PageState.CLEAN.value),   # fetch / fill
        (PageState.CLEAN.value, PageState.DIRTY.value),     # first write
        (PageState.DIRTY.value, PageState.CLEAN.value),     # seal (diffed)
        (PageState.CLEAN.value, PageState.INVALID.value),   # invalidate
        (PageState.DIRTY.value, PageState.INVALID.value),   # invalidate (early-diffed)
    }
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to the event that exposed it."""

    rule: str
    time: float
    node: int
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] t={self.time:.6f} node {self.node}: {self.message}"


@dataclass
class InvariantReport:
    """Outcome of one invariant-checking pass."""

    violations: List[Violation] = field(default_factory=list)
    events_checked: int = 0
    intervals_seen: int = 0
    races_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`InvariantViolationError` listing every violation."""
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations)
            raise InvariantViolationError(
                f"{len(self.violations)} protocol invariant violation(s):\n{lines}"
            )

    def by_rule(self, rule: str) -> List[Violation]:
        return [v for v in self.violations if v.rule == rule]


def _dominates(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    return len(a) == len(b) and all(x >= y for x, y in zip(a, b))


@dataclass(frozen=True)
class _WriteSet:
    """Word-granularity writes of one (node, flush) with its timestamp."""

    node: int
    vt: Tuple[int, ...]
    page: int
    #: Half-open word-offset ranges ``(start, end)``.
    ranges: Tuple[Tuple[int, int], ...]
    label: str


class RaceDetector:
    """Flags overlapping same-page writes by concurrent intervals.

    Fed the word-run payloads of ``interval_end`` and ``early_diff``
    events; two write sets race when they come from different nodes,
    their vector timestamps are incomparable (neither dominates), and
    their word ranges on one page intersect.
    """

    def __init__(self) -> None:
        self._by_page: Dict[int, List[_WriteSet]] = {}
        self.pairs_checked = 0

    def add(
        self,
        node: int,
        vt: Tuple[int, ...],
        page: int,
        runs: Iterable[Iterable[int]],
        label: str,
    ) -> None:
        ranges = tuple((int(off), int(off) + int(n)) for off, n in runs)
        if ranges:
            self._by_page.setdefault(page, []).append(
                _WriteSet(node, vt, page, ranges, label)
            )

    @staticmethod
    def _overlap(a: _WriteSet, b: _WriteSet) -> Optional[Tuple[int, int]]:
        for s1, e1 in a.ranges:
            for s2, e2 in b.ranges:
                lo, hi = max(s1, s2), min(e1, e2)
                if lo < hi:
                    return lo, hi
        return None

    def finish(self) -> List[Violation]:
        out: List[Violation] = []
        for page, sets in self._by_page.items():
            for i, a in enumerate(sets):
                for b in sets[i + 1 :]:
                    if a.node == b.node:
                        continue
                    self.pairs_checked += 1
                    if _dominates(a.vt, b.vt) or _dominates(b.vt, a.vt):
                        continue  # causally ordered: not a race
                    hit = self._overlap(a, b)
                    if hit is not None:
                        out.append(
                            Violation(
                                "data-race",
                                0.0,
                                a.node,
                                f"page {page} words [{hit[0]}, {hit[1]}) written "
                                f"by concurrent intervals {a.label} (node {a.node}, "
                                f"vt={list(a.vt)}) and {b.label} (node {b.node}, "
                                f"vt={list(b.vt)})",
                            )
                        )
        return out


class InvariantChecker:
    """Streaming checker: feed events in trace (simulated-time) order."""

    def __init__(self) -> None:
        self.report = InvariantReport()
        self.races = RaceDetector()
        #: node -> last own-vt seen (monotonicity).
        self._last_vt: Dict[int, Tuple[int, ...]] = {}
        #: lock -> vt at its most recent release.
        self._release_vt: Dict[int, Tuple[int, ...]] = {}
        #: episode -> [(node, vt)] check-ins (from the manager's events).
        self._checkins: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}
        #: node -> {(index, part): set of homes} outstanding diff sends.
        self._sends: Dict[int, Dict[Tuple[int, int], Set[int]]] = {}
        #: node -> {(index, part)} acknowledged flushes.
        self._acked: Dict[int, Set[Tuple[int, int]]] = {}
        #: (page, requester) -> FIFO of served CRCs.
        self._served: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    def _flag(self, rule: str, ev: TraceEvent, message: str) -> None:
        self.report.violations.append(Violation(rule, ev.time, ev.node, message))

    def feed(self, ev: TraceEvent) -> None:
        self.report.events_checked += 1
        e, d = ev.event, ev.detail
        if e in Ev.OWN_VT_EVENTS:
            self._check_monotonic(ev, tuple(d["vt"]))
        if e == Ev.LOCK_ACQUIRED:
            self._check_lock_hb(ev, d["lock"], tuple(d["vt"]))
        elif e == Ev.LOCK_RELEASED:
            self._release_vt[d["lock"]] = tuple(d["vt"])
        elif e == Ev.BARRIER_CHECKIN:
            self._checkins.setdefault(d["episode"], []).append(
                (d["node"], tuple(d["vt"]))
            )
        elif e == Ev.BARRIER_EXIT:
            self._check_barrier_hb(ev, d["episode"], tuple(d["vt"]))
        elif e == Ev.PAGE_STATE:
            self._check_page_state(ev, d)
        elif e == Ev.DIFF_SEND:
            self._sends.setdefault(ev.node, {}).setdefault(
                (d["index"], d["part"]), set()
            ).add(d["home"])
        elif e == Ev.DIFF_ACKED:
            self._check_diff_acked(ev, d)
        elif e == Ev.DIFF_APPLY:
            self._check_diff_apply(ev, d)
        elif e == Ev.INTERVAL_END:
            self._check_interval_end(ev, d)
        elif e == Ev.EARLY_DIFF:
            self.races.add(
                ev.node,
                tuple(d["vt"]),
                d["page"],
                d["runs"],
                f"early part {d['part']}",
            )
        elif e == Ev.PAGE_SERVE:
            self._served.setdefault((d["page"], d["to"]), []).append(d["crc"])
        elif e == Ev.PAGE_FETCH:
            self._check_page_fetch(ev, d)

    # ------------------------------------------------------------------
    def _check_monotonic(self, ev: TraceEvent, vt: Tuple[int, ...]) -> None:
        last = self._last_vt.get(ev.node)
        if last is not None and not _dominates(vt, last):
            self._flag(
                "vt-monotonic",
                ev,
                f"{ev.event} vt {list(vt)} does not dominate the node's "
                f"previous vt {list(last)}",
            )
        self._last_vt[ev.node] = vt

    def _check_lock_hb(self, ev: TraceEvent, lock: int, vt: Tuple[int, ...]) -> None:
        rel = self._release_vt.get(lock)
        if rel is not None and not _dominates(vt, rel):
            self._flag(
                "lock-hb",
                ev,
                f"acquired lock {lock} with vt {list(vt)} not dominating the "
                f"previous release's vt {list(rel)}: write notices were lost "
                "on the lock chain",
            )

    def _check_barrier_hb(self, ev: TraceEvent, episode: int, vt: Tuple[int, ...]) -> None:
        for node, cvt in self._checkins.get(episode, []):
            if not _dominates(vt, cvt):
                self._flag(
                    "barrier-hb",
                    ev,
                    f"left barrier episode {episode} with vt {list(vt)} not "
                    f"dominating node {node}'s check-in vt {list(cvt)}",
                )

    def _check_page_state(self, ev: TraceEvent, d: dict) -> None:
        if d["home"] == ev.node:
            self._flag(
                "page-state",
                ev,
                f"home page {d['page']} changed state {d['from']} -> {d['to']} "
                f"({d['reason']}) on its home node: home copies are "
                "permanently valid",
            )
        if (d["from"], d["to"]) not in LEGAL_TRANSITIONS:
            self._flag(
                "page-state",
                ev,
                f"illegal transition {d['from']} -> {d['to']} "
                f"({d['reason']}) for page {d['page']}",
            )

    def _check_diff_acked(self, ev: TraceEvent, d: dict) -> None:
        key = (d["index"], d["part"])
        sent = self._sends.get(ev.node, {}).get(key)
        if sent is None:
            self._flag(
                "diff-ack-order",
                ev,
                f"interval {key[0]} part {key[1]} acknowledged but no diff "
                "was ever sent",
            )
        elif set(d["homes"]) != sent:
            self._flag(
                "diff-ack-order",
                ev,
                f"interval {key[0]} part {key[1]} acknowledged by homes "
                f"{sorted(d['homes'])} but sent to {sorted(sent)}",
            )
        self._acked.setdefault(ev.node, set()).add(key)

    def _check_diff_apply(self, ev: TraceEvent, d: dict) -> None:
        key = (d["index"], d["part"])
        sent = self._sends.get(d["writer"], {}).get(key)
        if sent is None or ev.node not in sent:
            self._flag(
                "diff-ack-order",
                ev,
                f"applied a diff batch from writer {d['writer']} interval "
                f"{key[0]} part {key[1]} that the writer never sent here",
            )

    def _check_interval_end(self, ev: TraceEvent, d: dict) -> None:
        self.report.intervals_seen += 1
        key = (d["interval"], 0)
        sent = self._sends.get(ev.node, {}).get(key)
        if sent and key not in self._acked.get(ev.node, set()):
            self._flag(
                "diff-ack-order",
                ev,
                f"interval {d['interval']} sealed before its diffs to homes "
                f"{sorted(sent)} were acknowledged",
            )
        vt = tuple(d["vt"])
        for w in d["writes"]:
            self.races.add(ev.node, vt, w["page"], w["runs"], f"interval {d['interval']}")

    def _check_page_fetch(self, ev: TraceEvent, d: dict) -> None:
        fifo = self._served.get((d["page"], ev.node))
        if not fifo:
            self._flag(
                "serve-fetch",
                ev,
                f"installed page {d['page']} without any matching serve "
                "from its home",
            )
            return
        crc = fifo.pop(0)
        if crc != d["crc"]:
            self._flag(
                "serve-fetch",
                ev,
                f"page {d['page']} content CRC {d['crc']:#010x} differs from "
                f"the served CRC {crc:#010x}: bytes were corrupted in flight",
            )

    # ------------------------------------------------------------------
    def finish(self) -> InvariantReport:
        """Run the cross-event checks and return the report."""
        race_violations = self.races.finish()
        self.report.races_checked = self.races.pairs_checked
        self.report.violations.extend(race_violations)
        return self.report


def check_trace(trace) -> InvariantReport:
    """Check a whole trace: a :class:`Tracer` or an event iterable."""
    events = trace.events if isinstance(trace, Tracer) else trace
    checker = InvariantChecker()
    for ev in events:
        checker.feed(ev)
    return checker.finish()
