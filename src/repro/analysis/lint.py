"""AST lint pass for simulator-specific hazards.

Run as ``python -m repro.analysis.lint [paths...]`` (default:
``src/repro``).  Exit status is non-zero when any finding is reported.

Rules:

* **GEN001** -- a function annotated as returning ``Generator`` contains
  no ``yield``: ``yield from`` it and the caller crashes (or silently
  skips the protocol step) at runtime.  The simulator drives every
  protocol method with ``yield from``, which makes this the classic
  footgun of the codebase.
* **BLK001** -- a real blocking call (``time.sleep``, ``input``) inside
  a generator function: simulated processes must block on simulation
  events (``Timeout``, ``Signal``), never on the host OS, or the
  deterministic engine stalls wall-clock time for every process.
* **MUT001** -- a mutable literal as a default: either a function
  parameter default or a ``@dataclass`` field default.  Event and log
  record types are dataclasses here; a shared mutable default aliases
  state across records (use ``field(default_factory=...)``).
* **DET001** -- wall-clock or unseeded randomness inside the
  deterministic engine: ``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now``, stdlib ``random``, or ``numpy.random`` convenience
  functions.  Simulated time comes from the engine; randomness must go
  through an explicitly seeded ``RandomState``/``default_rng`` so runs
  stay reproducible.
* **OBS001** -- a bare ``print()`` call: all harness output must go
  through the console layer (:mod:`repro.obs.console`) so ``--quiet``
  and ``--json`` stay honest.  The console module itself (the one
  place allowed to touch stdout) is exempt by filename.

A finding can be suppressed by ending its line with ``# lint: ignore``
(blanket) or ``# lint: ignore[DET001]`` / ``# lint: ignore[DET001,
OBS001]`` (scoped to the listed codes -- preferred, so the suppression
cannot hide an unrelated finding that later lands on the same line).
"""

from __future__ import annotations

import argparse
import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from ..obs.console import get_console

__all__ = ["Finding", "is_suppressed", "lint_source", "lint_paths", "main"]

SUPPRESS_MARKER = "lint: ignore"
#: ``# lint: ignore`` with an optional ``[CODE, CODE...]`` scope.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


def is_suppressed(lines: Sequence[str], line: int, code: str) -> bool:
    """True when 1-indexed ``line`` carries a marker suppressing ``code``.

    A bare ``# lint: ignore`` (optionally followed by prose) suppresses
    everything on the line; ``# lint: ignore[A,B]`` suppresses exactly
    the listed codes.
    """
    if not (1 <= line <= len(lines)):
        return False
    m = _SUPPRESS_RE.search(lines[line - 1])
    if m is None:
        return False
    if m.group(1) is None:
        return True  # blanket suppression
    scoped = {c.strip() for c in m.group(1).split(",") if c.strip()}
    return code in scoped

#: ``time`` attributes that read the host wall clock.
WALL_CLOCK_ATTRS = {"time", "time_ns", "monotonic", "monotonic_ns",
                    "perf_counter", "perf_counter_ns"}
#: Seeded / explicitly-constructed numpy RNG entry points (allowed).
SEEDED_RNG_ATTRS = {"RandomState", "default_rng", "Generator", "seed"}


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _own_scope_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(fn: ast.AST) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _own_scope_nodes(fn)
    )


def _annotation_names_generator(fn: ast.FunctionDef) -> bool:
    if fn.returns is None:
        return False
    try:
        text = ast.unparse(fn.returns)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    # Iterator[...] is excluded on purpose: returning iter(...) or a
    # generator expression satisfies it without any yield.
    return "Generator" in text


def _body_is_stub(fn: ast.FunctionDef) -> bool:
    """Docstring-, pass-, ellipsis- or raise-only bodies (abstract stubs)."""
    for stmt in fn.body:
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set"}
    return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        #: import alias -> real module name, for DET001/BLK001 resolution.
        self.modules: dict[str, str] = {}
        self._generator_depth = 0
        # the console module is the one place allowed to touch stdout
        self._allow_print = Path(path).name == "console.py"

    # -- bookkeeping ---------------------------------------------------
    def _add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if is_suppressed(self.lines, line, code):
            return
        self.findings.append(
            Finding(self.path, line, getattr(node, "col_offset", 0) + 1,
                    code, message)
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted module path of an attribute chain root, if imported."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name) and node.id in self.modules:
            parts.append(self.modules[node.id])
            return ".".join(reversed(parts))
        return None

    # -- GEN001 / BLK001 / MUT001 on functions -------------------------
    def _visit_function(self, node: ast.FunctionDef) -> None:
        is_gen = _is_generator(node)
        if _annotation_names_generator(node) and not is_gen and not _body_is_stub(node):
            self._add(
                node, "GEN001",
                f"'{node.name}' is annotated as returning a Generator but "
                "contains no yield; 'yield from' on it will fail at runtime",
            )
        args = node.args
        defaults = list(args.defaults) + list(args.kw_defaults)
        for default in defaults:
            if default is not None and _is_mutable_literal(default):
                self._add(
                    default, "MUT001",
                    f"mutable default argument in '{node.name}'; the object "
                    "is shared across every call",
                )
        self._generator_depth += 1 if is_gen else 0
        self.generic_visit(node)
        self._generator_depth -= 1 if is_gen else 0

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function  # type: ignore[assignment]

    # -- MUT001 on dataclass fields ------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass(node):
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and _is_mutable_literal(stmt.value)
                ):
                    self._add(
                        stmt, "MUT001",
                        f"mutable default on dataclass field in '{node.name}'; "
                        "use field(default_factory=...)",
                    )
        self.generic_visit(node)

    # -- BLK001 / DET001 on calls --------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._resolve(node.func)
        if dotted is not None:
            self._check_dotted_call(node, dotted)
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "input"
            and self._generator_depth > 0
        ):
            self._add(
                node, "BLK001",
                "input() blocks the process on the host terminal inside a "
                "simulated process",
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not self._allow_print
        ):
            self._add(
                node, "OBS001",
                "bare print() bypasses the console layer; route output "
                "through repro.obs.console so --quiet/--json stay honest",
            )
        self.generic_visit(node)

    def _check_dotted_call(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if dotted == "time.sleep":
            self._add(
                node, "BLK001",
                "time.sleep blocks the host thread; simulated processes must "
                "yield a Timeout instead",
            )
        elif parts[0] == "time" and len(parts) == 2 and parts[1] in WALL_CLOCK_ATTRS:
            self._add(
                node, "DET001",
                f"{dotted}() reads the host wall clock inside the "
                "deterministic engine; use the simulator's virtual time",
            )
        elif parts[0] == "random":
            # random.Random(seed) is the recommended seeded constructor;
            # only flag it when called without an explicit seed
            if dotted == "random.Random" and node.args:
                return
            self._add(
                node, "DET001",
                f"{dotted}() uses the unseeded global random state; "
                "construct an explicitly seeded generator instead",
            )
        elif (
            parts[0] == "numpy"
            and len(parts) >= 3
            and parts[1] == "random"
            and parts[2] not in SEEDED_RNG_ATTRS
        ):
            self._add(
                node, "DET001",
                f"{dotted}() draws from numpy's global random state; use a "
                "seeded RandomState/default_rng",
            )
        elif parts[0] == "datetime" and parts[-1] in {"now", "utcnow", "today"}:
            self._add(
                node, "DET001",
                f"{dotted}() reads the host clock inside the deterministic "
                "engine",
            )


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, source)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.path, f.line, f.col))


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for raw in paths:
        p = Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_source(f.read_text(), str(f)))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST lint for simulator-specific hazards "
        "(GEN001 generator protocol, BLK001 blocking calls, "
        "MUT001 mutable defaults, DET001 nondeterminism, "
        "OBS001 bare print).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint")
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    con = get_console()
    for f in findings:
        con.result(str(f))
    if findings:
        con.error(f"{len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
