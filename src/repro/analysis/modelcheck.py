"""Small-scope model checking of the coherence/logging protocol.

The chaos suite samples schedules; this module *enumerates* them.  For
bounded configurations (2-4 nodes, 1-2 pages, short lock/barrier
programs) it drives the deterministic simulator through every relevant
interleaving of message delivery, and at the end of each explored
execution checks

* the streaming invariant catalogue (:mod:`repro.analysis.invariants`)
  over the execution's causal trace,
* the program's own result (each rank asserts the shared data it must
  observe after the final barrier), and
* **bit-exact recovery from every reachable crash point**: for every
  node and every sealed interval of the execution, the victim's durable
  log is truncated to what a crash at that instant leaves on disk and
  replayed (:func:`repro.core.recovery.replay_failed_node`), and the
  recovered image is compared word-for-word against the crash-point
  snapshot -- the paper's correctness claim, checked on *all* schedules
  instead of observed ones.

Nondeterminism model
--------------------
The only scheduling freedom in the simulated cluster is message
delivery order: computation between deliveries is deterministic, and
the base network is FIFO per ``(src, dst)`` link (one transmit NIC,
constant latency).  The engine's controlled-scheduler hook
(:meth:`repro.sim.engine.Simulator.run` with ``choice_fn``) parks every
delivery as a labelled choice point; whenever the event heap drains,
the checker picks which *enabled* delivery (lowest undelivered
``link_seq`` on each link) fires next.

Partial-order reduction
-----------------------
Exhaustive enumeration of delivery orders explodes factorially, but
most orders are equivalent: two deliveries addressed to *different*
nodes commute -- each runs handler code only at its destination, and
the messages a handler emits go out on links whose labels are assigned
deterministically.  Deliveries to the *same* node never commute here,
even for disjoint pages, because handler execution order is exactly
what determines log-record append order -- the order-sensitivity the
recovery checks exist to exercise.  The checker prunes with **sleep
sets** (Godefroid) over this commutativity oracle: an execution that
would only permute independent deliveries of an already-explored
execution is cut off and counted as pruned.  Sleep sets never drop a
Mazurkiewicz trace, so every inequivalent delivery order within the
budget is still explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Generator, List, Optional
from typing import Sequence, Set, Tuple

import numpy as np

from ..config import ClusterConfig
from ..dsm.system import DsmSystem
from ..errors import ApplicationError, DeadlockError, SimulationError
from ..sim.engine import PendingChoice
from ..sim.network import DeliveryLabel
from ..sim.trace import Tracer
from .invariants import check_trace

__all__ = [
    "McViolation",
    "McReport",
    "ModelChecker",
    "PROGRAMS",
    "run_modelcheck",
]


# ----------------------------------------------------------------------
# bounded programs
# ----------------------------------------------------------------------
_PAGE_SIZE = 256
_WORDS_PER_PAGE = _PAGE_SIZE // 4  # int32


class _BoundedApp:
    """A tiny SPMD program sized for exhaustive exploration."""

    data_set = "bounded"
    synchronization = "mixed"

    def __init__(self, name: str, pages: int,
                 program: Callable[["_BoundedApp", Any], Generator[Any, Any, None]]):
        self.name = name
        self.pages = pages
        self._program = program

    def allocate(self, space: Any, nprocs: int) -> None:
        n = self.pages * _WORDS_PER_PAGE
        space.allocate("x", (n,), np.int32, init=np.zeros(n, np.int32))

    def homes(self, space: Any, nprocs: int) -> Optional[List[int]]:
        return None  # round-robin

    def program(self, dsm: Any) -> Generator[Any, Any, None]:
        yield from self._program(self, dsm)


def _lock_program(app: _BoundedApp, dsm: Any) -> Generator[Any, Any, None]:
    """Each rank, under one global lock, bumps its own word of every
    page; after the final barrier every rank must observe all bumps."""
    for page in range(app.pages):
        word = page * _WORDS_PER_PAGE + dsm.rank
        yield from dsm.acquire(0)
        yield from dsm.write("x", word, word + 1)
        dsm.arr("x")[word] += dsm.rank + 1
        yield from dsm.release(0)
    yield from dsm.barrier(0)
    yield from dsm.read("x")
    x = dsm.arr("x")
    for page in range(app.pages):
        base = page * _WORDS_PER_PAGE
        for r in range(dsm.nprocs):
            if int(x[base + r]) != r + 1:
                raise ApplicationError(
                    f"rank {dsm.rank}: x[{base + r}] == {int(x[base + r])}, "
                    f"expected {r + 1}"
                )


def _barrier_program(app: _BoundedApp, dsm: Any) -> Generator[Any, Any, None]:
    """Disjoint writes, a barrier, then each rank checks its left
    neighbour's slice -- the write-notice propagation path."""
    stride = max(1, _WORDS_PER_PAGE // max(1, dsm.nprocs))
    for page in range(app.pages):
        lo = page * _WORDS_PER_PAGE + dsm.rank * stride
        yield from dsm.write("x", lo, lo + stride)
        dsm.arr("x")[lo:lo + stride] = dsm.rank + 1
    yield from dsm.barrier(0)
    left = (dsm.rank - 1) % dsm.nprocs
    for page in range(app.pages):
        lo = page * _WORDS_PER_PAGE + left * stride
        yield from dsm.read("x", lo, lo + stride)
        seen = dsm.arr("x")[lo:lo + stride]
        if not bool(np.all(seen == left + 1)):
            raise ApplicationError(
                f"rank {dsm.rank}: neighbour slice {seen.tolist()} != {left + 1}"
            )
    yield from dsm.barrier(1)


PROGRAMS: Dict[str, Callable[[_BoundedApp, Any], Generator[Any, Any, None]]] = {
    "lock": _lock_program,
    "barrier": _barrier_program,
}


# ----------------------------------------------------------------------
# controlled scheduler
# ----------------------------------------------------------------------
class _SleepBlocked(Exception):
    """Every enabled delivery is in the sleep set: this execution only
    permutes independent deliveries of one already explored."""


def _independent(a: Any, b: Any) -> bool:
    """Commutativity oracle: deliveries to different nodes commute."""
    if isinstance(a, DeliveryLabel) and isinstance(b, DeliveryLabel):
        return a.dst != b.dst
    return False  # unknown labels: assume dependent (sound)


def _sort_key(label: Any) -> Tuple[int, int, int, str]:
    if isinstance(label, DeliveryLabel):
        return (label.src, label.dst, label.link_seq, label.kind)
    return (1 << 30, 1 << 30, 0, repr(label))


def _enabled(pending: Sequence[PendingChoice]) -> List[PendingChoice]:
    """Per-link FIFO: only the lowest undelivered seq on each link."""
    best: Dict[Any, PendingChoice] = {}
    for c in pending:
        lab = c.label
        if isinstance(lab, DeliveryLabel):
            key: Any = (lab.src, lab.dst)
            cur = best.get(key)
            if cur is None or lab.link_seq < cur.label.link_seq:
                best[key] = c
        else:  # non-network labels form their own singleton links
            best[("?", id(c))] = c
    return sorted(best.values(), key=lambda c: _sort_key(c.label))


@dataclass
class _Job:
    """One scheduled re-execution: decision prefix + sleep set after it."""

    decisions: Tuple[int, ...]
    sleep: FrozenSet[Any]


class _Controller:
    """The ``choice_fn`` for one execution.

    Replays ``decisions`` (indices into the sorted enabled set at each
    step), then runs the default policy -- first enabled delivery not in
    the sleep set -- recording backtrack jobs for every alternative, per
    the sleep-set DFS.
    """

    def __init__(self, decisions: Sequence[int], sleep: FrozenSet[Any],
                 use_dpor: bool = True):
        self.decisions = list(decisions)
        self.sleep: Set[Any] = set(sleep)
        self.use_dpor = use_dpor
        self.chosen: List[int] = []  # full decision list of this run
        self.backtracks: List[_Job] = []
        self.steps = 0

    def _indep(self, a: Any, b: Any) -> bool:
        return self.use_dpor and _independent(a, b)

    def __call__(self, pending: List[PendingChoice]) -> Optional[PendingChoice]:
        enabled = _enabled(pending)
        step = len(self.chosen)
        if step < len(self.decisions):
            idx = self.decisions[step]
            if idx >= len(enabled):
                raise SimulationError(
                    f"schedule step {step}: index {idx} out of range "
                    f"({len(enabled)} enabled) -- stale schedule?"
                )
            self.chosen.append(idx)
            self.steps += 1
            return enabled[idx]
        # free run under the sleep set
        avail = [c for c in enabled if c.label not in self.sleep]
        if not avail:
            raise _SleepBlocked()
        chosen = avail[0]
        # schedule the siblings: alternative `a` explores with the
        # earlier siblings (incl. `chosen`) added to its sleep set
        earlier: List[Any] = [chosen.label]
        for alt in avail[1:]:
            alt_sleep = frozenset(
                u for u in set(self.sleep) | set(earlier)
                if self._indep(u, alt.label)
            )
            self.backtracks.append(
                _Job(tuple(self.chosen) + (enabled.index(alt),), alt_sleep)
            )
            earlier.append(alt.label)
        self.sleep = {u for u in self.sleep if self._indep(u, chosen.label)}
        self.chosen.append(enabled.index(chosen))
        self.steps += 1
        return chosen


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
@dataclass
class McViolation:
    """One property failure, with enough to replay the exact schedule."""

    kind: str  # "invariant" | "recovery" | "run-error" | "deadlock"
    schedule: str
    detail: str
    victim: int = -1
    stop_at: int = -1
    crash_time: float = -1.0

    def repro_command(self, program: str, nodes: int, pages: int,
                      protocol: str) -> str:
        cmd = (
            f"python -m repro modelcheck --program {program} "
            f"--nodes {nodes} --pages {pages} --protocol {protocol}"
        )
        if self.schedule:
            cmd += f" --schedule {self.schedule}"
        return cmd


@dataclass
class McReport:
    """Outcome of one bounded exploration."""

    program: str
    protocol: str
    nodes: int
    pages: int
    use_dpor: bool
    budget: int
    explored: int = 0
    pruned: int = 0
    transitions: int = 0
    recovery_checks: int = 0
    recovery_deduped: int = 0
    truncated: bool = False
    violations: List[McViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        shape = (
            f"{self.program} nodes={self.nodes} pages={self.pages} "
            f"protocol={self.protocol} dpor={'on' if self.use_dpor else 'off'}"
        )
        status = "EXHAUSTED" if not self.truncated else (
            f"TRUNCATED at budget={self.budget}")
        lines = [
            f"modelcheck [{shape}]: {status}",
            f"  schedules explored: {self.explored}  "
            f"pruned (sleep-set): {self.pruned}  "
            f"delivery transitions: {self.transitions}",
            f"  recovery checks: {self.recovery_checks} "
            f"({self.recovery_deduped} deduplicated)",
            f"  violations: {len(self.violations)}",
        ]
        for v in self.violations[:20]:
            where = ""
            if v.kind == "recovery":
                where = (f" victim={v.victim} stop_at={v.stop_at} "
                         f"t={v.crash_time:.6g}")
            lines.append(f"  FAIL [{v.kind}]{where}: {v.detail}")
            lines.append("    " + v.repro_command(
                self.program, self.nodes, self.pages, self.protocol))
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the checker
# ----------------------------------------------------------------------
def _schedule_str(decisions: Sequence[int]) -> str:
    return ".".join(str(d) for d in decisions)


def parse_schedule(text: str) -> Tuple[int, ...]:
    """Inverse of the repro line's ``--schedule`` encoding."""
    text = text.strip()
    if not text:
        return ()
    return tuple(int(part) for part in text.split("."))


class ModelChecker:
    """Sleep-set DFS over delivery schedules of one bounded program."""

    def __init__(
        self,
        program: str = "lock",
        nodes: int = 2,
        pages: int = 1,
        protocol: str = "ccl",
        budget: int = 5000,
        use_dpor: bool = True,
        check_recovery: bool = True,
    ):
        if program not in PROGRAMS:
            raise ValueError(
                f"unknown program {program!r}; have {sorted(PROGRAMS)}")
        if not (2 <= nodes <= 4):
            raise ValueError("modelcheck is small-scope: 2 <= nodes <= 4")
        if not (1 <= pages <= 2):
            raise ValueError("modelcheck is small-scope: 1 <= pages <= 2")
        self.program = program
        self.nodes = nodes
        self.pages = pages
        self.protocol = protocol
        self.budget = budget
        self.use_dpor = use_dpor
        self.check_recovery = check_recovery and protocol != "none"
        self.config = ClusterConfig.ultra5(
            num_nodes=nodes, page_size=_PAGE_SIZE)
        # fingerprint -> first schedule that checked it; repeated
        # (victim, stop_at, identical snapshot+log) checks are skipped
        self._recovery_seen: Set[Tuple[Any, ...]] = set()

    # -- one execution -------------------------------------------------
    def _app(self) -> _BoundedApp:
        return _BoundedApp(
            f"mc-{self.program}", self.pages, PROGRAMS[self.program])

    def _hooks_factory(self) -> Any:
        from ..core.logging_base import make_hooks_factory

        return make_hooks_factory(self.protocol)

    def _build(self, app: _BoundedApp) -> DsmSystem:
        return DsmSystem(
            app, self.config, self._hooks_factory(),
            tracer=Tracer(enabled=True),
        )

    def _execute(
        self, decisions: Sequence[int], sleep: FrozenSet[Any]
    ) -> Tuple[DsmSystem, _Controller, Optional[str], List[Any]]:
        """Run one schedule; returns (system, controller, error, probes).

        ``error`` is a human-readable run failure (deadlock, assertion in
        the program, protocol error), or None on clean completion.
        May raise :class:`_SleepBlocked` (redundant execution, pruned).
        """
        from ..core.failure import CrashProbe

        app = self._app()
        system = self._build(app)
        probes = [CrashProbe(v, capture_all=True)
                  for v in range(self.nodes)]
        for probe in probes:
            system.add_probe(probe)
        controller = _Controller(decisions, sleep, self.use_dpor)
        system.sim.choice_fn = controller
        run = getattr(DsmSystem.run, "__wrapped__", DsmSystem.run)
        error: Optional[str] = None
        try:
            run(system)
        except _SleepBlocked:
            raise
        except DeadlockError as exc:
            error = f"deadlock: blocked={exc.blocked}"
        except (ApplicationError, SimulationError) as exc:
            error = f"{type(exc).__name__}: {exc}"
        return system, controller, error, probes

    # -- per-execution property checks ---------------------------------
    def _check_execution(
        self,
        report: McReport,
        system: DsmSystem,
        controller: _Controller,
        error: Optional[str],
        probes: List[Any],
    ) -> None:
        schedule = _schedule_str(controller.chosen)
        if error is not None:
            kind = "deadlock" if error.startswith("deadlock") else "run-error"
            report.violations.append(McViolation(kind, schedule, error))
            return
        inv = check_trace(system.tracer)
        for v in inv.violations:
            report.violations.append(
                McViolation("invariant", schedule, str(v)))
        if self.check_recovery:
            for probe in probes:
                self._check_recovery(report, system, probe, schedule)

    def _check_recovery(
        self, report: McReport, system: DsmSystem, probe: Any, schedule: str
    ) -> None:
        """Chaos-style bit-exact recovery at every crash point of one
        victim: each seal instant plus each inter-seal midpoint."""
        from ..core.recovery import compare_state, replay_failed_node
        from ..errors import LoggingProtocolError, RecoveryError

        victim = probe.node
        log = getattr(system.nodes[victim].hooks, "log", None)
        if log is None or not probe.snapshots:
            return
        seal_times = sorted(s.time for s in probe.snapshots.values())
        instants = list(seal_times)
        instants += [
            (a + b) / 2.0 for a, b in zip(seal_times, seal_times[1:])
        ]
        for t in sorted(instants):
            seals_done = sum(
                1 for s in probe.snapshots.values() if s.time <= t)
            view = log.durable_view(t)
            lost = log.first_lost_interval(t)
            stop_at = seals_done if lost is None else min(seals_done, lost)
            if stop_at < 1:
                continue  # restart-from-checkpoint: trivially bit-exact
            snapshot = probe.snapshots[stop_at]
            fp = (
                victim, stop_at, len(view._persistent),
                snapshot.interval_index, repr(snapshot.vt),
                hash(snapshot.memory.tobytes()),
            )
            if fp in self._recovery_seen:
                report.recovery_deduped += 1
                continue
            self._recovery_seen.add(fp)
            report.recovery_checks += 1
            try:
                replay, _rt = replay_failed_node(
                    system.app, self.config, self.protocol, system,
                    victim, view, stop_at,
                )
            except (RecoveryError, LoggingProtocolError,
                    SimulationError) as exc:
                report.violations.append(McViolation(
                    "recovery", schedule, f"replay error: {exc}",
                    victim=victim, stop_at=stop_at, crash_time=t))
                continue
            mismatches = compare_state(
                replay, snapshot, self.config.page_size)
            if mismatches:
                report.violations.append(McViolation(
                    "recovery", schedule,
                    "state mismatch: " + "; ".join(mismatches[:3]),
                    victim=victim, stop_at=stop_at, crash_time=t))

    # -- exploration ---------------------------------------------------
    def explore(self) -> McReport:
        """DFS the schedule space to exhaustion or budget."""
        report = McReport(
            self.program, self.protocol, self.nodes, self.pages,
            self.use_dpor, self.budget,
        )
        stack: List[_Job] = [_Job((), frozenset())]
        while stack:
            if report.explored + report.pruned >= self.budget:
                report.truncated = True
                break
            job = stack.pop()
            try:
                system, controller, error, probes = self._execute(
                    job.decisions, job.sleep)
            except _SleepBlocked:
                report.pruned += 1
                continue
            report.explored += 1
            report.transitions += controller.steps
            # LIFO: reverse so the first alternative is explored next
            stack.extend(reversed(controller.backtracks))
            self._check_execution(report, system, controller, error, probes)
        return report

    def replay(self, schedule: str) -> McReport:
        """Re-run one schedule (from a violation repro line) and check it."""
        report = McReport(
            self.program, self.protocol, self.nodes, self.pages,
            self.use_dpor, budget=1,
        )
        try:
            system, controller, error, probes = self._execute(
                parse_schedule(schedule), frozenset())
        except _SleepBlocked:  # pragma: no cover - empty sleep never blocks
            report.pruned += 1
            return report
        report.explored = 1
        report.transitions = controller.steps
        self._check_execution(report, system, controller, error, probes)
        return report


def run_modelcheck(
    program: str = "lock",
    nodes: int = 2,
    pages: int = 1,
    protocol: str = "ccl",
    budget: int = 5000,
    use_dpor: bool = True,
    check_recovery: bool = True,
    schedule: Optional[str] = None,
) -> McReport:
    """One-call entry point used by the CLI and tests."""
    checker = ModelChecker(
        program=program, nodes=nodes, pages=pages, protocol=protocol,
        budget=budget, use_dpor=use_dpor, check_recovery=check_recovery,
    )
    if schedule is not None:
        return checker.replay(schedule)
    return checker.explore()
