"""Static protocol-conformance pass over the DSM message layer.

Run as ``python -m repro.analysis.protoflow [paths...]`` (default:
``src/repro/dsm``).  The pass parses the AST of the protocol sources,
extracts the send/consume graph -- which functions send which message
kinds (``self._send``/``self._post`` literals, ``NetMessage(kind=...)``
constructions) and which kinds are consumed (dispatch comparisons,
``expect()`` registrations, ``*KINDS*`` set literals) -- and checks it
against the declared protocol table (:mod:`repro.dsm.protocol`).

Rules:

* **PROTO001** -- a message kind is sent but never consumed anywhere in
  the scanned sources (and not declared ``external`` in the table), or
  sent without being declared at all.  Such a message sits in the
  destination mailbox forever; its sender's reply wait deadlocks.
* **PROTO002** -- a declared consumer mutates logged protocol state
  (the ``logged_state`` attributes of its message kind) without calling
  the declared log hook on the same path.  Replay reconstructs handler
  effects from log records; a mutation without its record is exactly
  the class of bug that silently breaks bit-exact recovery.
* **PROTO003** -- a reply payload is constructed and a ``raise`` can
  execute before the payload is sent.  The requester has already
  registered its ``expect()``; an exception in the gap leaves it
  waiting forever.

Suppression uses the lint marker syntax on the finding's line:
``# lint: ignore`` or ``# lint: ignore[PROTO002]``.
"""

from __future__ import annotations

import argparse
import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..dsm.protocol import PROTOCOL, MessageSpec, payload_class_names
from ..obs.console import get_console
from .lint import Finding, is_suppressed

__all__ = ["analyze_paths", "analyze_source", "main"]

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault",
    "pop", "popleft", "clear", "remove", "fill",
})

#: Call names that send a payload (2nd/3rd positional arg is the kind).
_SEND_FUNCS = frozenset({"_send", "_post"})


def _own_scope(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _root_self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` root of an attribute/subscript/call chain, if any.

    ``self.memory.page_bytes(p)[:]`` -> ``memory``;
    ``self.home_events[p].append`` -> ``home_events``; otherwise None.
    """
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        else:
            return None


def _is_hook_call(node: ast.Call, hook: str) -> bool:
    """True for ``self.hooks.<hook>(...)``."""
    f = node.func
    return (
        isinstance(f, ast.Attribute)
        and f.attr == hook
        and isinstance(f.value, ast.Attribute)
        and f.value.attr == "hooks"
        and isinstance(f.value.value, ast.Name)
        and f.value.value.id == "self"
    )


def _str_constants(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def _mentions_kind(node: ast.AST) -> bool:
    """Does a comparison reference ``<x>.kind`` or a ``kind`` variable?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "kind":
            return True
        if isinstance(sub, ast.Name) and sub.id == "kind":
            return True
    return False


@dataclass
class _SendSite:
    kind: str
    path: str
    line: int
    col: int


@dataclass
class _ModuleScan:
    """Everything the conformance rules need from one source file."""

    path: str
    lines: List[str]
    sends: List[_SendSite] = field(default_factory=list)
    consumed: Set[str] = field(default_factory=set)
    #: function name -> defs (PROTO002/PROTO003 walk these bodies).
    functions: Dict[str, List[ast.FunctionDef]] = field(default_factory=dict)


class _Extractor(ast.NodeVisitor):
    def __init__(self, scan: _ModuleScan):
        self.scan = scan

    def _visit_function(self, node: ast.FunctionDef) -> None:
        self.scan.functions.setdefault(node.name, []).append(node)
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        # self._send(dst, "kind", payload) / self._post(dst, "kind", payload)
        if (
            isinstance(f, ast.Attribute)
            and f.attr in _SEND_FUNCS
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            self.scan.sends.append(_SendSite(
                node.args[1].value, self.scan.path,
                node.lineno, node.col_offset + 1))
        # NetMessage(..., kind="literal", ...)
        name = f.attr if isinstance(f, ast.Attribute) else (
            f.id if isinstance(f, ast.Name) else "")
        if name == "NetMessage":
            for kw in node.keywords:
                if (kw.arg == "kind" and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)):
                    self.scan.sends.append(_SendSite(
                        kw.value.value, self.scan.path,
                        node.lineno, node.col_offset + 1))
            for i, arg in enumerate(node.args):
                # positional form: NetMessage(src, dst, "kind", ...)
                if (i == 2 and isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)):
                    self.scan.sends.append(_SendSite(
                        arg.value, self.scan.path,
                        node.lineno, node.col_offset + 1))
        # expect("kind", key) registers a consumer
        if name == "expect" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                self.scan.consumed.add(first.value)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # msg.kind == "diff" / kind in ("page_req", ...) dispatch arms
        if _mentions_kind(node):
            self.scan.consumed.update(_str_constants(node))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # SERVER_KINDS / UNSEQUENCED_KINDS set literals name handled kinds
        for target in node.targets:
            tname = target.id if isinstance(target, ast.Name) else (
                target.attr if isinstance(target, ast.Attribute) else "")
            if "KINDS" in tname.upper():
                self.scan.consumed.update(_str_constants(node.value))
        self.generic_visit(node)


def _scan_module(source: str, path: str) -> _ModuleScan:
    scan = _ModuleScan(path, source.splitlines())
    _Extractor(scan).visit(ast.parse(source, filename=path))
    return scan


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
def _check_proto001(scans: List[_ModuleScan]) -> List[Finding]:
    consumed: Set[str] = set()
    for scan in scans:
        consumed |= scan.consumed
    findings: List[Finding] = []
    reported: Set[str] = set()
    for scan in scans:
        for site in scan.sends:
            spec = PROTOCOL.get(site.kind)
            if spec is not None and (spec.external or spec.internal):
                continue
            if site.kind in consumed or site.kind in reported:
                continue
            reported.add(site.kind)
            declared = "" if spec is not None else \
                " (and it is not declared in the protocol table)"
            findings.append(_finding(
                scan, site.line, site.col, "PROTO001",
                f"message kind {site.kind!r} is sent but never handled: no "
                f"dispatch arm, expect() site, or *KINDS table consumes it"
                f"{declared}; the receiver's mailbox keeps it forever",
            ))
    return findings


def _mutations(fn: ast.FunctionDef, attrs: Tuple[str, ...]) -> List[Tuple[str, int]]:
    """(attr, line) for every in-place mutation of ``self.<attr>``."""
    out: List[Tuple[str, int]] = []
    for node in _own_scope(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                root = _root_self_attr(target)
                if root in attrs:
                    out.append((root, node.lineno))
        elif isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in MUTATING_METHODS:
                root = _root_self_attr(f.value)
                if root in attrs:
                    out.append((root, node.lineno))
    return sorted(out, key=lambda m: m[1])


def _check_proto002(scans: List[_ModuleScan]) -> List[Finding]:
    findings: List[Finding] = []
    for spec in PROTOCOL.values():
        if not spec.log_hook or not spec.logged_state:
            continue
        for scan in scans:
            for consumer in spec.consumers:
                for fn in scan.functions.get(consumer, []):
                    mutated = _mutations(fn, spec.logged_state)
                    if not mutated:
                        continue
                    hook_called = any(
                        isinstance(n, ast.Call) and _is_hook_call(n, spec.log_hook)
                        for n in _own_scope(fn)
                    )
                    if hook_called:
                        continue
                    attr, line = mutated[0]
                    findings.append(_finding(
                        scan, line, 1, "PROTO002",
                        f"{consumer}() handles {spec.kind!r} and mutates "
                        f"logged state 'self.{attr}' without calling "
                        f"self.hooks.{spec.log_hook}(); replay cannot "
                        f"reconstruct the mutation",
                    ))
    return findings


def _check_proto003(scans: List[_ModuleScan]) -> List[Finding]:
    payload_names = set(payload_class_names())
    findings: List[Finding] = []
    for scan in scans:
        for fns in scan.functions.values():
            for fn in fns:
                findings.extend(_proto003_in_function(scan, fn, payload_names))
    return findings


def _proto003_in_function(
    scan: _ModuleScan, fn: ast.FunctionDef, payload_names: Set[str]
) -> List[Finding]:
    built: Dict[str, int] = {}  # var name -> construction line
    sends: List[Tuple[int, Set[str]]] = []  # (line, names referenced)
    raises: List[int] = []
    for node in _own_scope(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            cls = node.value.func
            cls_name = cls.attr if isinstance(cls, ast.Attribute) else (
                cls.id if isinstance(cls, ast.Name) else "")
            if cls_name in payload_names:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        built[target.id] = node.lineno
        elif isinstance(node, ast.Raise):
            raises.append(node.lineno)
        elif isinstance(node, ast.Call):
            f = node.func
            name = f.attr if isinstance(f, ast.Attribute) else (
                f.id if isinstance(f, ast.Name) else "")
            if name in _SEND_FUNCS or name in ("send", "post"):
                refs = {
                    sub.id for arg in node.args
                    for sub in ast.walk(arg) if isinstance(sub, ast.Name)
                }
                sends.append((node.lineno, refs))
    findings: List[Finding] = []
    for var, built_line in built.items():
        send_lines = sorted(ln for ln, refs in sends
                            if var in refs and ln >= built_line)
        if not send_lines:
            continue
        gap_raises = [r for r in raises if built_line < r < send_lines[0]]
        if gap_raises:
            findings.append(_finding(
                scan, gap_raises[0], 1, "PROTO003",
                f"{fn.name}() constructs reply {var!r} at line {built_line} "
                f"but can raise before sending it at line {send_lines[0]}; "
                f"the requester's expect() then waits forever",
            ))
    return findings


def _finding(scan: _ModuleScan, line: int, col: int, code: str,
             message: str) -> Optional[Finding]:
    if is_suppressed(scan.lines, line, code):
        return None
    return Finding(scan.path, line, col, code, message)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def _run_rules(scans: List[_ModuleScan]) -> List[Finding]:
    findings = [
        f for f in (
            _check_proto001(scans) + _check_proto002(scans)
            + _check_proto003(scans)
        ) if f is not None
    ]
    return sorted(findings, key=lambda f: (f.path, f.line, f.col))


def analyze_source(source: str, path: str = "<string>") -> List[Finding]:
    """Conformance-check one module's source text (fixture tests)."""
    return _run_rules([_scan_module(source, path)])


def analyze_paths(paths: Sequence[str]) -> List[Finding]:
    """Conformance-check every ``.py`` file under files/directories.

    PROTO001's consumed-kind set is the union over all scanned files,
    so pass the whole protocol layer (``src/repro/dsm``) at once.
    """
    scans: List[_ModuleScan] = []
    for raw in paths:
        p = Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            scans.append(_scan_module(f.read_text(), str(f)))
    return _run_rules(scans)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.protoflow",
        description="Static message-flow conformance against the declared "
        "protocol table (PROTO001 unhandled kind, PROTO002 unlogged "
        "handler mutation, PROTO003 raise between reply construction "
        "and send).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro/dsm"],
                        help="files or directories to check")
    args = parser.parse_args(argv)
    findings = analyze_paths(args.paths)
    con = get_console()
    for f in findings:
        con.result(str(f))
    if findings:
        con.error(f"{len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
