"""Recoverability auditor: prove the logs can replay any crash.

The paper's central claim (Section 3.2) is that CCL's minimal log --
own diffs, write-invalidation notices, 12-byte update-event records and
fetch *metadata* -- is always sufficient for a recovering node to
reconstruct every page version its replay faults on.  This module
machine-checks that claim after a failure-free run, with no crash
needed: for a crash at any time T, the recovering node's replay faults
on exactly the page versions its fetch records name (recovery replays
the failure-free schedule, so the fetch set over the whole run covers
every crash point).  The auditor therefore:

1. **Structurally** verifies the log cross-references: every update
   event a home logged points at a diff its writer actually logged
   (:class:`~repro.core.logrecords.UpdateEventLogRecord` ``(writer,
   interval, part, page)`` must resolve via the writer's
   ``find_own_diff``), and the notices inside each
   :class:`~repro.core.logrecords.NoticeLogRecord` are stored in causal
   (vt-total) order, the order replay applies them in.
2. **Reconstructs** every fetched page version symbolically: starting
   from the pristine initial image (the checkpoint every node holds at
   interval zero), it applies -- in the same causal order recovery uses
   (:meth:`ReplayNode.causal_sort`) -- every logged diff of that page
   whose timestamp the fetched version covers, and compares the result,
   by CRC, against the bytes the fetcher actually installed (recorded
   by the tracer's ``page_fetch`` events).  The first version that
   cannot be rebuilt bit-exactly is reported as a hard error naming the
   page and version.

Under ML the content check instead verifies that each logged page copy
(:class:`~repro.core.logrecords.PageCopyLogRecord`) matches the traced
fetch bytes -- ML logs contents verbatim, so recoverability there is
storage fidelity, not derivability.

Only CCL with home-write diffs enabled (the repo's sound default) makes
*every* version derivable; other configurations are audited
structurally but skipped for content reconstruction.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.logrecords import (
    FetchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
)
from ..errors import LoggingProtocolError, RecoverabilityError
from ..memory import LocalMemory
from ..memory.diff import Diff, apply_diff
from ..sim.trace import Ev, Tracer

__all__ = ["Problem", "RecoverabilityReport", "audit_recoverability"]


@dataclass(frozen=True)
class Problem:
    """One unrecoverable or inconsistent log finding."""

    kind: str
    node: int
    page: int
    version: Optional[Tuple[int, ...]]
    message: str

    def __str__(self) -> str:
        v = list(self.version) if self.version is not None else "?"
        return f"[{self.kind}] node {self.node} page {self.page} version {v}: {self.message}"


@dataclass
class RecoverabilityReport:
    """Outcome of one audit pass."""

    protocol: str
    problems: List[Problem] = field(default_factory=list)
    fetches_checked: int = 0
    events_checked: int = 0
    notice_records_checked: int = 0
    content_checked: bool = False
    skipped_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def first_unreachable(self) -> Optional[Problem]:
        """The first page version proven unrecoverable, if any."""
        return self.problems[0] if self.problems else None

    def raise_if_failed(self) -> None:
        """Raise :class:`RecoverabilityError` on the first hard error."""
        if self.problems:
            lines = "\n".join(str(p) for p in self.problems)
            raise RecoverabilityError(
                f"{len(self.problems)} unrecoverable finding(s):\n{lines}"
            )


def _node_log(node: Any) -> Optional[Any]:
    return getattr(node.hooks, "log", None)


def _fetched_crcs(
    tracer: Optional[Tracer],
) -> Dict[Tuple[int, int], List[Tuple[Tuple[int, ...], int]]]:
    """(fetcher, page) -> [(version, installed-content CRC), ...] in fetch order.

    Keyed FIFO, not a flat map: the same page can be fetched repeatedly
    at the same version with *different* bytes (a home legally serves
    its in-progress writes, which bump no version until sealed), so
    trace events must be matched to log records positionally.  Both the
    trace and each node's log are chronological, so the k-th fetch
    record of a page is the k-th fetch event of that page.
    """
    out: Dict[Tuple[int, int], List[Tuple[Tuple[int, ...], int]]] = {}
    if tracer is None:
        return out
    for ev in tracer.filter(Ev.PAGE_FETCH):
        d = ev.detail
        if d.get("version") is None:
            continue
        out.setdefault((ev.node, d["page"]), []).append(
            (tuple(d["version"]), d["crc"])
        )
    return out


def audit_recoverability(system, tracer: Optional[Tracer] = None) -> RecoverabilityReport:
    """Audit a finished run's logs; see the module docstring.

    ``system`` is the :class:`~repro.dsm.system.DsmSystem` that ran;
    ``tracer`` defaults to ``system.tracer``.  Volatile (not yet
    flushed) records are audited too: survivors' logs do not lose them.
    """
    if tracer is None:
        tracer = system.tracer
    names = {n.hooks.name for n in system.nodes}
    protocol = names.pop() if len(names) == 1 else "mixed"
    report = RecoverabilityReport(protocol=protocol)

    if protocol not in ("ccl", "ml"):
        report.skipped_reason = f"no recovery log under protocol {protocol!r}"
        return report

    logs = {n.id: _node_log(n) for n in system.nodes}
    if any(log is None for log in logs.values()):
        report.skipped_reason = "a node has no stable log"
        return report

    # ------------------------------------------------------------------
    # structural pass: cross-references and causal ordering
    # ------------------------------------------------------------------
    for node in system.nodes:
        for rec in logs[node.id].all_records:
            if isinstance(rec, NoticeLogRecord):
                report.notice_records_checked += 1
                totals = [r.vt.total for r in rec.records]
                if totals != sorted(totals):
                    report.problems.append(
                        Problem(
                            "notice-order",
                            node.id,
                            -1,
                            None,
                            f"notices of bundle {rec.interval} window "
                            f"{rec.window} are not in causal (vt-total) "
                            f"order: {totals}; replay would apply "
                            "invalidations out of happens-before order",
                        )
                    )
            elif isinstance(rec, UpdateEventLogRecord):
                for page in rec.pages:
                    report.events_checked += 1
                    try:
                        logs[rec.writer].find_own_diff(
                            page, rec.writer_index, rec.part
                        )
                    except LoggingProtocolError:
                        report.problems.append(
                            Problem(
                                "missing-diff",
                                node.id,
                                page,
                                None,
                                f"update event references writer {rec.writer} "
                                f"interval {rec.writer_index} part {rec.part}, "
                                "but the writer's log holds no such diff: the "
                                "home copy of this page is not reconstructible "
                                "past this event",
                            )
                        )

    # ------------------------------------------------------------------
    # content pass: rebuild every fetched version from base + diffs
    # ------------------------------------------------------------------
    crcs = _fetched_crcs(tracer)

    if protocol == "ml":
        cursors: Dict[Tuple[int, int], int] = {}
        for node in system.nodes:
            for rec in logs[node.id].all_records:
                if not isinstance(rec, PageCopyLogRecord):
                    continue
                if rec.contents is None or rec.version is None:
                    continue
                key = (node.id, rec.page)
                fifo = crcs.get(key, [])
                k = cursors.get(key, 0)
                cursors[key] = k + 1
                if k >= len(fifo):
                    continue  # tracer missed this fetch (enabled late / maxlen)
                version, traced = fifo[k]
                if version != rec.version.as_tuple():
                    continue
                report.fetches_checked += 1
                got = zlib.crc32(rec.contents.tobytes())
                if got != traced:
                    report.problems.append(
                        Problem(
                            "content-mismatch",
                            node.id,
                            rec.page,
                            rec.version.as_tuple(),
                            "logged page copy differs from the bytes the "
                            "fetch installed: replay would feed the node "
                            "corrupt data",
                        )
                    )
        report.content_checked = bool(crcs)
        return report

    # CCL: only the home-write-diff configuration makes home writes
    # observable in the logs, so only then is every version derivable.
    if not all(getattr(n.hooks, "log_home_diffs", False) for n in system.nodes):
        report.skipped_reason = (
            "content reconstruction needs log_home_diffs (paper mode falls "
            "back to home rollback, which the audit cannot model)"
        )
        return report

    # index every logged diff once: page -> [(diff, writer, index, part, vt)]
    by_page: Dict[int, List[Tuple[Diff, int, int, int, object]]] = {}
    for node in system.nodes:
        for rec in logs[node.id].all_records:
            if not isinstance(rec, OwnDiffLogRecord):
                continue
            for d in rec.diffs:
                by_page.setdefault(d.page, []).append(
                    (d, node.id, rec.vt_index, 0, rec.vt)
                )
            for d in rec.home_diffs:
                by_page.setdefault(d.page, []).append(
                    (d, node.id, rec.vt_index, 0, rec.vt)
                )
            for part, d, evt in rec.early:
                by_page.setdefault(d.page, []).append(
                    (d, node.id, rec.vt_index, part, evt)
                )

    pristine = LocalMemory(system.space)

    from ..core.recovery import ReplayNode

    cursors: Dict[Tuple[int, int], int] = {}
    for node in system.nodes:
        for rec in logs[node.id].all_records:
            if not isinstance(rec, FetchLogRecord):
                continue
            if rec.version is None:
                continue
            version = rec.version
            key = (node.id, rec.page)
            fifo = crcs.get(key, [])
            k = cursors.get(key, 0)
            cursors[key] = k + 1
            if k >= len(fifo):
                continue  # tracer missed this fetch; structural only
            traced_version, traced = fifo[k]
            if traced_version != version.as_tuple():
                continue
            report.fetches_checked += 1
            frame = pristine.page_bytes(rec.page).copy()
            entries = [
                e for e in by_page.get(rec.page, ())
                if version.dominates(e[4])
            ]
            for d, _w, _i, _p, _vt in ReplayNode.causal_sort(entries):
                apply_diff(d, frame)
            rebuilt = zlib.crc32(frame.tobytes())
            report.content_checked = True
            if rebuilt != traced:
                report.problems.append(
                    Problem(
                        "unreachable-version",
                        node.id,
                        rec.page,
                        version.as_tuple(),
                        "version cannot be rebuilt from the initial image "
                        "plus logged diffs (rebuilt CRC "
                        f"{rebuilt:#010x} != fetched CRC {traced:#010x}): a "
                        "crash-at-fetch replay would fault on a page no "
                        "survivor can serve",
                    )
                )
    return report
