"""Run-time sanitizer: every DSM run is traced and checked.

:func:`install` wraps :meth:`DsmSystem.run <repro.dsm.system.DsmSystem.run>`
so that each failure-free run is traced (the tracer is force-enabled for
the run's duration) and, on completion, fed through both sanitizer
passes:

* the protocol invariant checker (:func:`repro.analysis.check_trace`),
* the recoverability auditor
  (:func:`repro.analysis.audit_recoverability`).

Either raises (:class:`~repro.errors.InvariantViolationError` /
:class:`~repro.errors.RecoverabilityError`) on a violation, turning any
test that runs a DSM application into a protocol conformance test.
Runs with a killed node are traced but not checked -- a crashed run
legitimately leaves dangling sends and unacked diffs.

The pytest hook in the repo's ``tests/conftest.py`` installs this for
the whole session when invoked as ``pytest --sanitize``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from ..dsm.system import DsmSystem
from .invariants import check_trace
from .recoverability import audit_recoverability

__all__ = ["install", "is_installed", "traced"]

_original_run: Optional[Callable[..., Any]] = None


def is_installed() -> bool:
    """Whether the sanitizer wrapper is currently active."""
    return _original_run is not None


def install() -> Callable[[], None]:
    """Wrap :meth:`DsmSystem.run` with the sanitizer; return the undo.

    Idempotent: a second call while installed returns a no-op undo so
    nested installers cannot double-wrap or prematurely unwrap.
    """
    global _original_run
    if _original_run is not None:
        return lambda: None

    original = DsmSystem.run
    _original_run = original

    def run_sanitized(self: DsmSystem, kill_node: Optional[int] = None,
                      kill_at: Optional[float] = None) -> Any:
        was_enabled = self.tracer.enabled
        self.tracer.enabled = True
        try:
            result = original(self, kill_node=kill_node, kill_at=kill_at)
        finally:
            self.tracer.enabled = was_enabled
        if kill_node is None and result.completed:
            check_trace(self.tracer).raise_if_failed()
            audit_recoverability(self).raise_if_failed()
        if not was_enabled:
            # stay transparent: the caller did not ask for a trace, so
            # do not leave one behind (but keep it when a check raised,
            # as evidence).
            self.tracer.clear()
        return result

    run_sanitized.__wrapped__ = original  # type: ignore[attr-defined]
    DsmSystem.run = run_sanitized  # type: ignore[method-assign]

    def uninstall() -> None:
        global _original_run
        if _original_run is None:
            return
        DsmSystem.run = _original_run  # type: ignore[method-assign]
        _original_run = None

    return uninstall


@contextmanager
def traced() -> Iterator[None]:
    """Force tracing on for every run in the block, without checking.

    Used by ``repro analyze --app``: it wants the trace and the *report*
    (counts, all findings), not the first-violation exception
    :func:`install` raises.
    """
    original = DsmSystem.run

    def run_traced(self: DsmSystem, kill_node: Optional[int] = None,
                   kill_at: Optional[float] = None) -> Any:
        self.tracer.enabled = True
        return original(self, kill_node=kill_node, kill_at=kill_at)

    DsmSystem.run = run_traced  # type: ignore[method-assign]
    try:
        yield
    finally:
        DsmSystem.run = original  # type: ignore[method-assign]
