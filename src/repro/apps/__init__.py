"""The evaluation workloads (paper Table 1) plus extras.

* :mod:`repro.apps.fft3d` -- NAS-FT-style distributed 3D FFT (barriers)
* :mod:`repro.apps.mg` -- multigrid Poisson solver (barriers)
* :mod:`repro.apps.shallow` -- NCAR shallow-water kernel (barriers)
* :mod:`repro.apps.water` -- SPLASH-style molecular dynamics (locks+barriers)
* :mod:`repro.apps.sor` -- red-black SOR (extra workload, not in the paper)
* :mod:`repro.apps.lu` -- blocked LU factorisation (extra workload)

All applications execute real numerical kernels over the DSM and verify
their final shared state against sequential references.
"""

from .base import (
    APP_REGISTRY,
    DsmApplication,
    block_rows,
    gather_global,
    make_app,
    owner_homes,
    register_app,
)
from .fft3d import Fft3dApp
from .mg import MgApp
from .shallow import ShallowApp
from .water import WaterApp
from .sor import SorApp
from .lu import LuApp

#: The four applications of the paper's evaluation, in Table 1 order.
PAPER_APPS = ("fft3d", "mg", "shallow", "water")

__all__ = [
    "APP_REGISTRY",
    "PAPER_APPS",
    "DsmApplication",
    "block_rows",
    "owner_homes",
    "gather_global",
    "make_app",
    "register_app",
    "Fft3dApp",
    "MgApp",
    "ShallowApp",
    "WaterApp",
    "SorApp",
    "LuApp",
]
