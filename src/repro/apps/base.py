"""Application framework for the evaluation workloads.

The paper evaluates four parallel applications (Table 1): 3D-FFT and MG
from the NAS benchmarks, Shallow (the NCAR weather kernel), and Water
(SPLASH molecular dynamics).  Each is implemented here as a real
numerical kernel running SPMD over the DSM API: the arithmetic is
performed on NumPy views of the shared pages, access annotations stand
in for VM traps, and analytic flop counts charge the simulated clock.

:class:`DsmApplication` fixes the interface the system/harness expects;
:func:`block_rows` / :func:`owner_homes` provide the standard row-block
decomposition and writer-aligned home assignment the real applications
used; :func:`gather_global` reassembles the authoritative global array
from home copies for verification.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..dsm.home import block_homes
from ..errors import ApplicationError
from ..memory import SharedAddressSpace

if TYPE_CHECKING:  # pragma: no cover
    from ..dsm.api import Dsm
    from ..dsm.system import DsmSystem

__all__ = [
    "DsmApplication",
    "block_rows",
    "owner_homes",
    "gather_global",
    "APP_REGISTRY",
    "register_app",
    "make_app",
]


def block_rows(n_rows: int, nprocs: int, rank: int) -> Tuple[int, int]:
    """Row range ``[lo, hi)`` of ``rank`` under block distribution."""
    per = -(-n_rows // nprocs)
    lo = min(rank * per, n_rows)
    hi = min(lo + per, n_rows)
    return lo, hi


def owner_homes(
    space: SharedAddressSpace, nprocs: int, owners: Dict[str, List[int]]
) -> List[int]:
    """Home assignment aligning each variable's pages with its owners.

    ``owners[name]`` gives a per-page owner list for that variable (as
    long as ``space.pages_of(var)``); unlisted variables fall back to a
    block distribution of their pages.  Real HLRC applications co-locate
    homes with the rank that writes each partition, which is what makes
    home writes free.
    """
    homes = [0] * space.npages
    for var in space.variables:
        pages = list(space.pages_of(var))
        if var.name in owners:
            per_page = owners[var.name]
            if len(per_page) != len(pages):
                raise ApplicationError(
                    f"owner map for {var.name!r} covers {len(per_page)} pages,"
                    f" variable spans {len(pages)}"
                )
            for p, h in zip(pages, per_page):
                homes[p] = h
        else:
            blocks = block_homes(len(pages), nprocs)
            for p, h in zip(pages, blocks):
                homes[p] = h
    return homes


def gather_global(system: "DsmSystem", name: str) -> np.ndarray:
    """Reassemble a shared variable's authoritative global contents.

    Home-based systems: after a final barrier every home copy is up to
    date (all diffs flushed and acknowledged), so home pages are
    stitched together.  Homeless systems have no authoritative copy;
    there a page is taken from any node still holding it valid (a valid
    copy covers every known write), or reconstructed from a stale frame
    plus the pending diffs sitting in the writers' repositories.
    """
    var = system.space.var(name)
    page_size = system.config.page_size
    out = np.empty(var.nbytes, dtype=np.uint8)
    homeless = getattr(system, "coherence", "hlrc") == "lrc"
    for page in system.space.pages_of(var):
        if homeless:
            frame = _lrc_page_contents(system, page)
        else:
            # consult the live page table, not the initial map: homes
            # may have migrated (adaptive-home extension)
            home = system.nodes[0].pagetable.entry(page).home
            frame = system.nodes[home].memory.page_bytes(page)
        page_lo = page * page_size
        lo = max(page_lo, var.offset)
        hi = min(page_lo + page_size, var.end)
        out[lo - var.offset : hi - var.offset] = frame[lo - page_lo : hi - page_lo]
    return out.view(var.dtype).reshape(var.shape)


def _lrc_page_contents(system: "DsmSystem", page: int) -> np.ndarray:
    """Current contents of a page in a homeless system (see gather_global)."""
    from ..memory.diff import apply_diff
    from ..memory.page import PageState

    for node in system.nodes:
        if node.pagetable.entry(page).state is not PageState.INVALID:
            return node.memory.page_bytes(page)
    # no valid copy: rebuild from node 0's frame + its pending diffs
    node = system.nodes[0]
    frame = node.memory.page_bytes(page).copy()
    have = node.pagetable.entry(page).version
    entries = []
    for r in node.pending.get(page, []):
        if have.dominates(r.vt):
            continue
        writer = system.nodes[r.node]
        for part, vt, diff in writer.diff_repo.get((page, r.index), []):
            entries.append((diff, r.node, r.index, part, vt))
    for diff, _w, _i, _p, _vt in sorted(
        entries, key=lambda e: (e[4].total, e[1], e[2], -e[3])
    ):
        apply_diff(diff, frame)
    return frame


class DsmApplication(abc.ABC):
    """One evaluation workload.

    Subclasses implement :meth:`allocate` (declare shared variables,
    optionally with deterministic initial contents), :meth:`program`
    (the per-rank SPMD generator), and :meth:`verify` (compare the
    final shared state against a sequential reference).  They may
    override :meth:`homes` to align page homes with their data
    partition, and should fill :attr:`characteristics` for Table 1.
    """

    #: Short name used by the registry and the harness tables.
    name: str = "app"
    #: Table 1 fields: data-set description and synchronisation types.
    data_set: str = ""
    synchronization: str = "barriers"
    iterations: int = 0

    @abc.abstractmethod
    def allocate(self, space: SharedAddressSpace, nprocs: int) -> None:
        """Declare every shared variable (with deterministic init data)."""

    def homes(self, space: SharedAddressSpace, nprocs: int) -> Optional[List[int]]:
        """Per-page home assignment; None selects round-robin."""
        return None

    @abc.abstractmethod
    def program(self, dsm: "Dsm") -> Generator[Any, Any, None]:
        """The SPMD program executed by every rank."""

    def verify(self, system: "DsmSystem") -> bool:
        """Check the final shared state against a sequential reference."""
        return True

    def characteristics(self) -> Dict[str, str]:
        """The application's Table 1 row."""
        return {
            "program": self.name,
            "data_set": self.data_set,
            "synchronization": self.synchronization,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: name -> factory(paper_scale: bool) for the harness CLI.
APP_REGISTRY: Dict[str, Any] = {}


def register_app(name: str):
    """Class decorator adding an application to the registry."""

    def deco(cls):
        APP_REGISTRY[name] = cls
        return cls

    return deco


def make_app(name: str, paper_scale: bool = False, **kwargs) -> DsmApplication:
    """Instantiate a registered application by name.

    ``paper_scale=True`` selects the dataset sizes of the paper's
    Table 1; the default sizes are scaled down so simulations complete
    in seconds (see EXPERIMENTS.md for the mapping).
    """
    try:
        cls = APP_REGISTRY[name]
    except KeyError:
        raise ApplicationError(
            f"unknown application {name!r}; registered: {sorted(APP_REGISTRY)}"
        ) from None
    return cls(paper_scale=paper_scale, **kwargs)
