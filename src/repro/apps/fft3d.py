"""3D-FFT: the NAS FT kernel on the DSM (paper Table 1, row 1).

Computes repeated 3-D Fast Fourier Transforms of an evolving complex
field using the classic slab decomposition:

1. each rank *evolves* its slab (pointwise phase multiply, local),
2. transforms it along axes 1-2 (local 2-D FFTs),
3. **transpose**: every rank gathers a column block from every other
   rank's slab -- the all-to-all exchange that dominates FT's
   communication, realised here as page faults on remote slabs,
4. transforms the gathered block along axis 0 and stores it in the
   transposed result array (a local home write),
5. accumulates a checksum through per-rank partial slots.

Synchronisation is barriers only, matching Table 1.  All arithmetic is
real NumPy FFT work on the shared pages; the result is verified against
``numpy.fft.fftn`` of a sequentially evolved field.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional

import numpy as np

from ..errors import ApplicationError
from ..memory import SharedAddressSpace
from .base import DsmApplication, block_rows, gather_global, owner_homes, register_app

if TYPE_CHECKING:  # pragma: no cover
    from ..dsm.api import Dsm
    from ..dsm.system import DsmSystem

__all__ = ["Fft3dApp"]


@register_app("fft3d")
class Fft3dApp(DsmApplication):
    """NAS-FT-style distributed 3D FFT."""

    name = "3D-FFT"
    synchronization = "barriers"

    def __init__(
        self,
        n: Optional[int] = None,
        iters: Optional[int] = None,
        paper_scale: bool = False,
        seed: int = 20260706,
        home_policy: str = "round_robin",
    ):
        if paper_scale:
            self.n = n or 64
            self.iters = iters or 100
        else:
            self.n = n or 16
            self.iters = iters or 4
        self.seed = seed
        self.home_policy = home_policy
        self.iterations = self.iters
        self.data_set = f"{self.iters} iterations on {self.n}^3 data"
        self._u0: Optional[np.ndarray] = None
        self._phase: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _initial_field(self) -> np.ndarray:
        if self._u0 is None:
            rng = np.random.RandomState(self.seed)
            n = self.n
            self._u0 = (
                rng.standard_normal((n, n, n)) + 1j * rng.standard_normal((n, n, n))
            ).astype(np.complex128)
        return self._u0

    def _phase_factors(self) -> np.ndarray:
        """Per-element evolution factors (the NAS FT exponential term)."""
        if self._phase is None:
            n = self.n
            k = np.fft.fftfreq(n) * n
            k2 = (
                k[:, None, None] ** 2 + k[None, :, None] ** 2 + k[None, None, :] ** 2
            )
            self._phase = np.exp(-1e-4 * k2 + 0.05j * k2).astype(np.complex128)
        return self._phase

    # ------------------------------------------------------------------
    def allocate(self, space: SharedAddressSpace, nprocs: int) -> None:
        n = self.n
        if n % nprocs:
            raise ApplicationError(f"grid {n} not divisible by {nprocs} ranks")
        zeros = np.zeros((n, n, n), dtype=np.complex128)
        # Only communicated data lives in shared memory, as in the real
        # benchmark: the evolving field and the transformed result are
        # rank-private working arrays; `w` is the all-to-all transpose
        # buffer, and `vt` receives the final result for verification.
        space.allocate("w", (n, n, n), np.complex128, init=zeros)
        space.allocate("vt", (n, n, n), np.complex128, init=zeros)
        space.allocate(
            "csum_partial", (nprocs, 2), np.float64,
            init=np.zeros((nprocs, 2)),
        )
        space.allocate(
            "csum", (max(self.iters, 1), 2), np.float64,
            init=np.zeros((max(self.iters, 1), 2)),
        )

    def homes(self, space: SharedAddressSpace, nprocs: int) -> Optional[List[int]]:
        if self.home_policy != "aligned":
            return None  # round-robin: the TreadMarks/HLRC default

        n = self.n
        row_bytes = n * n * 16  # one axis-0 plane of a complex cube

        def plane_owner_pages(var_name: str) -> List[int]:
            var = space.var(var_name)
            pages = list(space.pages_of(var))
            page_size = space.page_size
            out = []
            for p in pages:
                off = max(p * page_size, var.offset) - var.offset
                plane = min(off // row_bytes, n - 1)
                per = n // nprocs
                out.append(min(plane // per, nprocs - 1))
            return out

        return owner_homes(
            space,
            nprocs,
            {
                "w": plane_owner_pages("w"),
                "vt": plane_owner_pages("vt"),
            },
        )

    # ------------------------------------------------------------------
    def program(self, dsm: "Dsm") -> Generator[Any, Any, None]:
        n, p, rank = self.n, dsm.nprocs, dsm.rank
        lo, hi = block_rows(n, p, rank)  # owned axis-0 planes of u/w
        n0 = hi - lo
        # vt is stored transposed: rank owns planes [lo, hi) of axis-0
        # which correspond to columns [lo, hi) of the original axis 1
        d0, d1 = lo, hi
        n1 = d1 - d0
        phase = self._phase_factors()[lo:hi]

        # rank-private working arrays (outside the shared segment)
        u_slab = self._initial_field()[lo:hi].copy()
        w = dsm.arr("w")

        fft2_flops = 5.0 * n0 * n * n * np.log2(max(n * n, 2))
        fft1_flops = 5.0 * n1 * n * n * np.log2(max(n, 2))
        evolve_flops = 6.0 * n0 * n * n

        vt_block = np.empty((n1, n, n), dtype=np.complex128)
        for it in range(self.iters):
            # 1-2: evolve own slab and FFT it along axes 1,2 (private)
            u_slab *= phase
            yield from dsm.compute(evolve_flops)
            yield from dsm.write("w", lo * n * n, hi * n * n)
            w[lo:hi] = np.fft.fft2(u_slab, axes=(1, 2))
            yield from dsm.compute(fft2_flops)
            yield from dsm.barrier()

            # 3: transpose-gather the column block [d0, d1) of axis 1
            block = np.empty((n, n1, n), dtype=np.complex128)
            for s in range(p):
                s_lo, s_hi = block_rows(n, p, s)
                for i in range(s_lo, s_hi):
                    start = i * n * n + d0 * n
                    yield from dsm.read("w", start, start + n1 * n)
                block[s_lo:s_hi] = w[s_lo:s_hi, d0:d1, :]

            # 4: FFT along original axis 0 into the private result block
            out = np.fft.fft(block, axis=0)  # shape (n, n1, n)
            vt_block[:] = out.transpose(1, 0, 2)
            yield from dsm.compute(fft1_flops)

            # 5: checksum partials (all ranks share one small page)
            part = vt_block.sum()
            yield from dsm.write("csum_partial", rank * 2, rank * 2 + 2)
            dsm.arr("csum_partial")[rank, 0] = part.real
            dsm.arr("csum_partial")[rank, 1] = part.imag
            yield from dsm.barrier()

            if rank == 0:
                yield from dsm.read("csum_partial")
                yield from dsm.write("csum", it * 2, it * 2 + 2)
                dsm.arr("csum")[it] = dsm.arr("csum_partial").sum(axis=0)

        # publish the final transformed slab for verification
        yield from dsm.write("vt", d0 * n * n, d1 * n * n)
        dsm.arr("vt")[d0:d1] = vt_block
        yield from dsm.barrier()

    # ------------------------------------------------------------------
    def verify(self, system: "DsmSystem") -> bool:
        """Compare against a sequentially evolved + transformed field."""
        u = self._initial_field().copy()
        phase = self._phase_factors()
        ref_csums = []
        for _ in range(self.iters):
            u *= phase
            full = np.fft.fftn(u, axes=(0, 1, 2))
            ref_csums.append(full.sum())
        ref_vt = full.transpose(1, 0, 2)

        got_vt = gather_global(system, "vt")
        got_csum = gather_global(system, "csum")
        if not np.allclose(got_vt, ref_vt, rtol=1e-9, atol=1e-9):
            return False
        for it, c in enumerate(ref_csums):
            if not np.allclose(got_csum[it], [c.real, c.imag], rtol=1e-7):
                return False
        return True
