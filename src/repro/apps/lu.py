"""LU: blocked dense LU factorisation (extra workload, SPLASH-2 style).

Right-looking blocked LU without pivoting on a diagonally dominant
matrix, with SPLASH-2 LU's 2-D scatter block ownership.  Each step
factorises the diagonal block, updates the perimeter blocks (everyone
reads the diagonal block -- a broadcast-shaped fault pattern), then the
trailing submatrix (each interior block reads one column and one row
perimeter block).  The matrix is stored block-major so each block is a
contiguous page run.

Not one of the paper's four applications; included as a second
lock-free workload with communication that *narrows* over time (later
steps touch fewer blocks), a contrast to the uniform per-iteration
traffic of the others.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

import numpy as np

from ..errors import ApplicationError
from ..memory import SharedAddressSpace
from .base import DsmApplication, gather_global, owner_homes, register_app

if TYPE_CHECKING:  # pragma: no cover
    from ..dsm.api import Dsm
    from ..dsm.system import DsmSystem

__all__ = ["LuApp", "lu_nopiv_inplace", "sequential_blocked_lu"]


def lu_nopiv_inplace(a: np.ndarray) -> np.ndarray:
    """Unpivoted LU of a square block, in place (unit-diagonal L + U)."""
    n = a.shape[0]
    for i in range(n - 1):
        a[i + 1 :, i] /= a[i, i]
        a[i + 1 :, i + 1 :] -= np.outer(a[i + 1 :, i], a[i, i + 1 :])
    return a


def _solve_lower_unit(lkk: np.ndarray, b: np.ndarray) -> np.ndarray:
    """X such that L_kk X = b with L unit-lower-triangular."""
    n = lkk.shape[0]
    x = b.copy()
    for i in range(1, n):
        x[i] -= lkk[i, :i] @ x[:i]
    return x


def _solve_upper_right(ukk: np.ndarray, b: np.ndarray) -> np.ndarray:
    """X such that X U_kk = b with U upper-triangular."""
    n = ukk.shape[0]
    x = b.copy()
    for j in range(n):
        x[:, j] -= x[:, :j] @ ukk[:j, j]
        x[:, j] /= ukk[j, j]
    return x


def block_owner(bi: int, bj: int, nb: int, nprocs: int) -> int:
    """SPLASH-2 LU's 2-D scatter decomposition."""
    return (bi * nb + bj) % nprocs


def initial_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.RandomState(seed)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)  # diagonal dominance: no pivoting needed
    return a


def sequential_blocked_lu(n: int, b: int, seed: int) -> np.ndarray:
    """Reference: the identical blocked algorithm on a plain array."""
    nb = n // b
    blocks = initial_matrix(n, seed).reshape(nb, b, nb, b).swapaxes(1, 2).copy()
    for k in range(nb):
        lu_nopiv_inplace(blocks[k, k])
        for i in range(k + 1, nb):
            blocks[i, k] = _solve_upper_right(blocks[k, k], blocks[i, k])
        for j in range(k + 1, nb):
            blocks[k, j] = _solve_lower_unit(blocks[k, k], blocks[k, j])
        for i in range(k + 1, nb):
            for j in range(k + 1, nb):
                blocks[i, j] -= blocks[i, k] @ blocks[k, j]
    return blocks


@register_app("lu")
class LuApp(DsmApplication):
    """SPLASH-2-style blocked LU factorisation."""

    name = "LU"
    synchronization = "barriers"

    def __init__(
        self,
        n: Optional[int] = None,
        block: int = 8,
        paper_scale: bool = False,
        seed: int = 31337,
        home_policy: str = "round_robin",
    ):
        self.n = n or (128 if paper_scale else 32)
        self.block = block
        self.home_policy = home_policy
        self.seed = seed
        if self.n % self.block:
            raise ApplicationError(f"matrix {self.n} not divisible by {self.block}")
        self.nb = self.n // self.block
        self.iterations = self.nb
        self.data_set = f"{self.n}x{self.n} matrix, {self.block}x{self.block} blocks"

    # ------------------------------------------------------------------
    def allocate(self, space: SharedAddressSpace, nprocs: int) -> None:
        nb, b = self.nb, self.block
        init = (
            initial_matrix(self.n, self.seed)
            .reshape(nb, b, nb, b)
            .swapaxes(1, 2)
            .copy()
        )
        space.allocate("A", (nb, nb, b, b), np.float64, init=init)

    def homes(self, space: SharedAddressSpace, nprocs: int) -> Optional[List[int]]:
        if self.home_policy != "aligned":
            return None  # round-robin: the TreadMarks/HLRC default
        var = space.var("A")
        nb, b = self.nb, self.block
        block_bytes = b * b * 8
        page_owner = []
        for p in space.pages_of(var):
            off = max(p * space.page_size, var.offset) - var.offset
            flat = min(off // block_bytes, nb * nb - 1)
            page_owner.append(block_owner(flat // nb, flat % nb, nb, nprocs))
        return owner_homes(space, nprocs, {"A": page_owner})

    # ------------------------------------------------------------------
    def program(self, dsm: "Dsm") -> Generator[Any, Any, None]:
        nb, b, p, rank = self.nb, self.block, dsm.nprocs, dsm.rank
        A = dsm.arr("A")
        bsz = b * b

        def elems(bi: int, bj: int) -> Tuple[int, int]:
            flat = (bi * nb + bj) * bsz
            return flat, flat + bsz

        def mine(bi: int, bj: int) -> bool:
            return block_owner(bi, bj, nb, p) == rank

        for k in range(nb):
            if mine(k, k):
                yield from dsm.write("A", *elems(k, k))
                lu_nopiv_inplace(A[k, k])
                yield from dsm.compute((2.0 / 3.0) * b**3)
            yield from dsm.barrier()

            # perimeter: everyone needing it faults on the diagonal block
            col = [i for i in range(k + 1, nb) if mine(i, k)]
            row = [j for j in range(k + 1, nb) if mine(k, j)]
            if col or row:
                yield from dsm.read("A", *elems(k, k))
            for i in col:
                yield from dsm.write("A", *elems(i, k))
                A[i, k] = _solve_upper_right(A[k, k], A[i, k])
                yield from dsm.compute(float(b**3))
            for j in row:
                yield from dsm.write("A", *elems(k, j))
                A[k, j] = _solve_lower_unit(A[k, k], A[k, j])
                yield from dsm.compute(float(b**3))
            yield from dsm.barrier()

            # trailing submatrix: read one column and one row block each
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    if not mine(i, j):
                        continue
                    yield from dsm.read("A", *elems(i, k))
                    yield from dsm.read("A", *elems(k, j))
                    yield from dsm.write("A", *elems(i, j))
                    A[i, j] -= A[i, k] @ A[k, j]
                    yield from dsm.compute(2.0 * b**3)
            yield from dsm.barrier()

    # ------------------------------------------------------------------
    def verify(self, system: "DsmSystem") -> bool:
        ref = sequential_blocked_lu(self.n, self.block, self.seed)
        got = gather_global(system, "A")
        if not np.allclose(got, ref, rtol=1e-9, atol=1e-9):
            return False
        # reassemble L and U and check L @ U == original matrix
        nb, b = self.nb, self.block
        flat = got.swapaxes(1, 2).reshape(self.n, self.n)
        lower = np.tril(flat, -1) + np.eye(self.n)
        upper = np.triu(flat)
        return bool(
            np.allclose(lower @ upper, initial_matrix(self.n, self.seed),
                        rtol=1e-8, atol=1e-8)
        )
