"""MG: multigrid Poisson solver on the DSM (paper Table 1, row 2).

Solves the 3-D Poisson problem with V-cycles, mirroring the NAS MG
kernel's structure: damped-Jacobi smoothing with halo-plane exchange,
residual computation, restriction to a coarser grid, a coarse-grid
solve, prolongation, and post-smoothing.  The grid hierarchy is
plane-block distributed; halo reads at partition boundaries generate the
nearest-neighbour fault traffic characteristic of MG, and restriction/
prolongation add the cross-level communication.

Synchronisation is barriers only (Table 1).  The parallel arithmetic is
elementwise identical to the sequential reference, so verification
demands near-bitwise agreement plus a monotonically falling residual.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..memory import SharedAddressSpace
from .base import DsmApplication, block_rows, gather_global, owner_homes, register_app

if TYPE_CHECKING:  # pragma: no cover
    from ..dsm.api import Dsm
    from ..dsm.system import DsmSystem

__all__ = ["MgApp", "jacobi_plane", "residual_plane", "restrict_grid", "prolong_grid"]

OMEGA = 0.8  # damped-Jacobi weight


# ----------------------------------------------------------------------
# grid kernels shared by the SPMD program and the sequential reference
# ----------------------------------------------------------------------
def jacobi_plane(u: np.ndarray, b: np.ndarray, i: int) -> np.ndarray:
    """One damped-Jacobi update of interior plane ``i`` (reads u[i-1:i+2])."""
    lap = (
        6.0 * u[i, 1:-1, 1:-1]
        - u[i - 1, 1:-1, 1:-1]
        - u[i + 1, 1:-1, 1:-1]
        - u[i, :-2, 1:-1]
        - u[i, 2:, 1:-1]
        - u[i, 1:-1, :-2]
        - u[i, 1:-1, 2:]
    )
    out = u[i].copy()
    out[1:-1, 1:-1] = u[i, 1:-1, 1:-1] + OMEGA * (b[i, 1:-1, 1:-1] - lap) / 6.0
    return out


def residual_plane(u: np.ndarray, b: np.ndarray, i: int) -> np.ndarray:
    """Residual ``b - A u`` on interior plane ``i``."""
    lap = (
        6.0 * u[i, 1:-1, 1:-1]
        - u[i - 1, 1:-1, 1:-1]
        - u[i + 1, 1:-1, 1:-1]
        - u[i, :-2, 1:-1]
        - u[i, 2:, 1:-1]
        - u[i, 1:-1, :-2]
        - u[i, 1:-1, 2:]
    )
    out = np.zeros_like(u[i])
    out[1:-1, 1:-1] = b[i, 1:-1, 1:-1] - lap
    return out


def restrict_grid(res: np.ndarray, ic: int) -> np.ndarray:
    """Injection restriction of coarse plane ``ic`` (reads fine plane 2ic)."""
    return res[2 * ic, ::2, ::2].copy()


def prolong_grid(uc: np.ndarray, i: int, n: int) -> np.ndarray:
    """Trilinear prolongation of fine plane ``i`` from the coarse grid."""
    nc = uc.shape[0]
    fine = np.zeros((n, n), dtype=uc.dtype)

    def plane(j: int) -> np.ndarray:
        p = np.zeros((n, n), dtype=uc.dtype)
        c = uc[j]
        p[::2, ::2] = c
        p[1:-1:2, ::2] = 0.5 * (c[:-1, :] + c[1:, :])
        p[::2, 1:-1:2] = 0.5 * (c[:, :-1] + c[:, 1:])
        p[1:-1:2, 1:-1:2] = 0.25 * (
            c[:-1, :-1] + c[1:, :-1] + c[:-1, 1:] + c[1:, 1:]
        )
        return p

    if i % 2 == 0:
        fine = plane(i // 2)
    else:
        j = i // 2
        if j + 1 < nc:
            fine = 0.5 * (plane(j) + plane(j + 1))
        else:
            fine = 0.5 * plane(j)
    return fine


def sequential_vcycles(
    n: int, cycles: int, pre: int, post: int, coarse_sweeps: int, rhs: np.ndarray
) -> Tuple[np.ndarray, List[float]]:
    """Reference solver: identical arithmetic on plain arrays."""
    levels = _level_sizes(n)
    u = {0: np.zeros((n, n, n))}
    b = {0: rhs.copy()}
    for l, nl in enumerate(levels[1:], start=1):
        u[l] = np.zeros((nl, nl, nl))
        b[l] = np.zeros((nl, nl, nl))

    def smooth(l: int, sweeps: int) -> None:
        nl = levels[l]
        for _ in range(sweeps):
            t = u[l].copy()
            for i in range(1, nl - 1):
                t[i] = jacobi_plane(u[l], b[l], i)
            u[l] = t

    def vcycle(l: int) -> None:
        nl = levels[l]
        if l == len(levels) - 1:
            smooth(l, coarse_sweeps)
            return
        smooth(l, pre)
        res = np.zeros_like(u[l])
        for i in range(1, nl - 1):
            res[i] = residual_plane(u[l], b[l], i)
        nc = levels[l + 1]
        u[l + 1][:] = 0.0
        for ic in range(1, nc - 1):
            b[l + 1][ic] = restrict_grid(res, ic)
        vcycle(l + 1)
        for i in range(1, nl - 1):
            u[l][i] += prolong_grid(u[l + 1], i, nl)
        smooth(l, post)

    norms = []
    for _ in range(cycles):
        vcycle(0)
        res = np.zeros_like(u[0])
        for i in range(1, n - 1):
            res[i] = residual_plane(u[0], b[0], i)
        norms.append(float(np.sqrt((res**2).sum())))
    return u[0], norms


def _level_sizes(n: int) -> List[int]:
    sizes = [n]
    while sizes[-1] > 4 and sizes[-1] % 2 == 0:
        sizes.append(sizes[-1] // 2)
    return sizes


# ----------------------------------------------------------------------
@register_app("mg")
class MgApp(DsmApplication):
    """NAS-MG-style multigrid Poisson solver."""

    name = "MG"
    synchronization = "barriers"

    def __init__(
        self,
        n: Optional[int] = None,
        cycles: Optional[int] = None,
        paper_scale: bool = False,
        pre: int = 2,
        post: int = 2,
        coarse_sweeps: int = 8,
        seed: int = 424242,
        home_policy: str = "round_robin",
    ):
        if paper_scale:
            self.n = n or 32
            self.cycles = cycles or 200
        else:
            self.n = n or 16
            self.cycles = cycles or 3
        self.pre, self.post, self.coarse_sweeps = pre, post, coarse_sweeps
        self.home_policy = home_policy
        self.seed = seed
        self.iterations = self.cycles
        self.data_set = f"{self.cycles} iterations on {self.n}^3 grid"
        self.levels = _level_sizes(self.n)
        self._rhs: Optional[np.ndarray] = None

    def _rhs_field(self) -> np.ndarray:
        if self._rhs is None:
            rng = np.random.RandomState(self.seed)
            f = np.zeros((self.n, self.n, self.n))
            f[1:-1, 1:-1, 1:-1] = rng.standard_normal((self.n - 2,) * 3)
            self._rhs = f
        return self._rhs

    # ------------------------------------------------------------------
    def allocate(self, space: SharedAddressSpace, nprocs: int) -> None:
        for l, nl in enumerate(self.levels):
            zeros = np.zeros((nl, nl, nl))
            init_b = self._rhs_field() if l == 0 else zeros
            space.allocate(f"u{l}", (nl, nl, nl), np.float64, init=zeros)
            space.allocate(f"t{l}", (nl, nl, nl), np.float64, init=zeros)
            space.allocate(f"b{l}", (nl, nl, nl), np.float64, init=init_b)
            space.allocate(f"res{l}", (nl, nl, nl), np.float64, init=zeros)
        space.allocate("norm_partial", (nprocs,), np.float64,
                       init=np.zeros(nprocs))
        space.allocate("norms", (max(self.cycles, 1),), np.float64,
                       init=np.zeros(max(self.cycles, 1)))

    def homes(self, space: SharedAddressSpace, nprocs: int) -> Optional[List[int]]:
        if self.home_policy != "aligned":
            return None  # round-robin: the TreadMarks/HLRC default

        owners: Dict[str, List[int]] = {}
        for l, nl in enumerate(self.levels):
            plane_bytes = nl * nl * 8
            for prefix in ("u", "t", "b", "res"):
                var = space.var(f"{prefix}{l}")
                pages = list(space.pages_of(var))
                per = -(-nl // nprocs)
                page_owner = []
                for p in pages:
                    off = max(p * space.page_size, var.offset) - var.offset
                    plane = min(off // plane_bytes, nl - 1)
                    page_owner.append(min(plane // per, nprocs - 1))
                owners[var.name] = page_owner
        return owner_homes(space, nprocs, owners)

    # ------------------------------------------------------------------
    def program(self, dsm: "Dsm") -> Generator[Any, Any, None]:
        rank, p = dsm.rank, dsm.nprocs
        levels = self.levels

        def planes(l: int) -> Tuple[int, int]:
            return block_rows(levels[l], p, rank)

        def elems(l: int, a: int, b_: int) -> Tuple[int, int]:
            nl = levels[l]
            return a * nl * nl, b_ * nl * nl

        def interior(l: int) -> range:
            lo, hi = planes(l)
            nl = levels[l]
            return range(max(lo, 1), min(hi, nl - 1))

        def read_halo(l: int, name: str) -> Generator[Any, Any, None]:
            """Own planes plus one neighbour plane on each side."""
            lo, hi = planes(l)
            nl = levels[l]
            a, b_ = max(lo - 1, 0), min(hi + 1, nl)
            if a < b_:
                yield from dsm.read(name, *elems(l, a, b_))

        def smooth(l: int, sweeps: int) -> Generator[Any, Any, None]:
            nl = levels[l]
            u = dsm.arr(f"u{l}")
            t = dsm.arr(f"t{l}")
            b_ = dsm.arr(f"b{l}")
            lo, hi = planes(l)
            for _ in range(sweeps):
                if hi > lo:
                    yield from read_halo(l, f"u{l}")
                    yield from dsm.read(f"b{l}", *elems(l, lo, hi))
                    yield from dsm.write(f"t{l}", *elems(l, lo, hi))
                    t[lo:hi] = u[lo:hi]
                    for i in interior(l):
                        t[i] = jacobi_plane(u, b_, i)
                    yield from dsm.compute(9.0 * (hi - lo) * nl * nl)
                yield from dsm.barrier()
                if hi > lo:
                    yield from dsm.write(f"u{l}", *elems(l, lo, hi))
                    u[lo:hi] = t[lo:hi]
                yield from dsm.barrier()

        def vcycle(l: int) -> Generator[Any, Any, None]:
            nl = levels[l]
            if l == len(levels) - 1:
                yield from smooth(l, self.coarse_sweeps)
                return
            yield from smooth(l, self.pre)
            # residual on own planes
            lo, hi = planes(l)
            if hi > lo:
                yield from read_halo(l, f"u{l}")
                yield from dsm.read(f"b{l}", *elems(l, lo, hi))
                yield from dsm.write(f"res{l}", *elems(l, lo, hi))
                res = dsm.arr(f"res{l}")
                res[lo:hi] = 0.0
                u = dsm.arr(f"u{l}")
                b_ = dsm.arr(f"b{l}")
                for i in interior(l):
                    res[i] = residual_plane(u, b_, i)
                yield from dsm.compute(8.0 * (hi - lo) * nl * nl)
            yield from dsm.barrier()
            # restriction: coarse owners pull the fine planes they need
            nc = levels[l + 1]
            clo, chi = planes(l + 1)
            if chi > clo:
                yield from dsm.write(f"u{l + 1}", *elems(l + 1, clo, chi))
                dsm.arr(f"u{l + 1}")[clo:chi] = 0.0
                yield from dsm.write(f"b{l + 1}", *elems(l + 1, clo, chi))
                bc = dsm.arr(f"b{l + 1}")
                res = dsm.arr(f"res{l}")
                for ic in range(clo, chi):
                    if 1 <= ic < nc - 1:
                        yield from dsm.read(f"res{l}", *elems(l, 2 * ic, 2 * ic + 1))
                        bc[ic] = restrict_grid(res, ic)
                    else:
                        bc[ic] = 0.0
                yield from dsm.compute(1.0 * (chi - clo) * nc * nc)
            yield from dsm.barrier()
            yield from vcycle(l + 1)
            # prolongation: fine owners pull the coarse planes they need
            if hi > lo:
                a = max((max(lo, 1)) // 2, 0)
                b2 = min((min(hi, nl - 1) - 1) // 2 + 2, nc)
                if a < b2:
                    yield from dsm.read(f"u{l + 1}", *elems(l + 1, a, b2))
                yield from dsm.write(f"u{l}", *elems(l, lo, hi))
                u = dsm.arr(f"u{l}")
                uc = dsm.arr(f"u{l + 1}")
                for i in interior(l):
                    u[i] += prolong_grid(uc, i, nl)
                yield from dsm.compute(3.0 * (hi - lo) * nl * nl)
            yield from dsm.barrier()
            yield from smooth(l, self.post)

        n = levels[0]
        for cyc in range(self.cycles):
            yield from vcycle(0)
            # residual norm: partials -> barrier -> rank 0 reduces
            lo, hi = planes(0)
            part = 0.0
            if hi > lo:
                yield from read_halo(0, "u0")
                yield from dsm.read("b0", *elems(0, lo, hi))
                u = dsm.arr("u0")
                b_ = dsm.arr("b0")
                for i in interior(0):
                    part += float((residual_plane(u, b_, i) ** 2).sum())
                yield from dsm.compute(8.0 * (hi - lo) * n * n)
            yield from dsm.write("norm_partial", rank, rank + 1)
            dsm.arr("norm_partial")[rank] = part
            yield from dsm.barrier()
            if rank == 0:
                yield from dsm.read("norm_partial")
                yield from dsm.write("norms", cyc, cyc + 1)
                dsm.arr("norms")[cyc] = np.sqrt(dsm.arr("norm_partial").sum())
        # closing barrier: flush the last cycle's writes to their homes
        yield from dsm.barrier()

    # ------------------------------------------------------------------
    def verify(self, system: "DsmSystem") -> bool:
        ref_u, ref_norms = sequential_vcycles(
            self.n, self.cycles, self.pre, self.post, self.coarse_sweeps,
            self._rhs_field(),
        )
        got_u = gather_global(system, "u0")
        got_norms = gather_global(system, "norms")[: self.cycles]
        if not np.allclose(got_u, ref_u, rtol=1e-10, atol=1e-12):
            return False
        if not np.allclose(got_norms, ref_norms, rtol=1e-8):
            return False
        # the solver must actually be converging
        return bool(ref_norms[-1] < ref_norms[0])
