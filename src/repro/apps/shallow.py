"""Shallow: the NCAR shallow-water weather kernel (paper Table 1, row 3).

The classic ``swm`` benchmark integrates the shallow-water equations on
a 2-D periodic staggered grid with a leapfrog scheme and Robert-Asselin
time smoothing.  Each timestep has three phases separated by barriers,
exactly the structure of the original:

1. compute the mass fluxes ``cu``/``cv``, potential vorticity ``z`` and
   height field ``h`` from ``p``/``u``/``v`` (one-sided periodic
   neighbour reads -> halo-row faults),
2. advance ``unew``/``vnew``/``pnew`` from the old time level using the
   phase-1 fields (neighbour reads on the other side),
3. time-smooth and rotate the time levels (purely local).

Rows are block-distributed; the periodic wrap makes ranks 0 and P-1
neighbours, so every rank has two halo partners.  Verification requires
elementwise agreement with a sequential execution of the identical
kernels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..memory import SharedAddressSpace
from .base import DsmApplication, block_rows, gather_global, owner_homes, register_app

if TYPE_CHECKING:  # pragma: no cover
    from ..dsm.api import Dsm
    from ..dsm.system import DsmSystem

__all__ = ["ShallowApp", "flux_rows", "advance_rows", "smooth_rows"]

# physical setup of the original swm benchmark (scaled)
DT = 90.0
DX = DY = 1.0e5
ALPHA = 0.001
FSDX = 4.0 / DX
FSDY = 4.0 / DY


def flux_rows(
    p: np.ndarray, u: np.ndarray, v: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Phase 1 on the given global rows (Sadourny scheme, reads rows±1).

    The exact discretisation of the original NCAR ``swm`` code on the
    doubly periodic staggered grid::

        cu[a,b] = .5 (p[a,b] + p[a-1,b]) u[a,b]
        cv[a,b] = .5 (p[a,b] + p[a,b-1]) v[a,b]
        z[a,b]  = (fsdx (v[a,b]-v[a-1,b]) - fsdy (u[a,b]-u[a,b-1]))
                  / (p[a-1,b-1] + p[a,b-1] + p[a,b] + p[a-1,b])
        h[a,b]  = p[a,b] + .25 (u[a+1,b]^2 + u[a,b]^2
                                + v[a,b+1]^2 + v[a,b]^2)

    (This potential-enstrophy-conserving form is what keeps the
    leapfrog integration stable over the paper's 5000 steps.)
    """
    n = p.shape[0]
    im = (rows - 1) % n
    ip = (rows + 1) % n
    jm = np.roll(np.arange(n), 1)
    jp = np.roll(np.arange(n), -1)
    cu = 0.5 * (p[rows] + p[im]) * u[rows]
    cv = 0.5 * (p[rows] + p[rows][:, jm]) * v[rows]
    z = (
        FSDX * (v[rows] - v[im]) - FSDY * (u[rows] - u[rows][:, jm])
    ) / (p[im][:, jm] + p[rows][:, jm] + p[rows] + p[im])
    h = p[rows] + 0.25 * (
        u[ip] ** 2 + u[rows] ** 2 + v[rows][:, jp] ** 2 + v[rows] ** 2
    )
    return cu, cv, z, h


def advance_rows(
    fields: Dict[str, np.ndarray], rows: np.ndarray, tdt: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Phase 2 (leapfrog step) on the given rows (reads rows±1)."""
    n = fields["p"].shape[0]
    im = (rows - 1) % n
    jm = np.roll(np.arange(n), 1)
    cu, cv, z, h = fields["cu"], fields["cv"], fields["z"], fields["h"]
    uold, vold, pold = fields["uold"], fields["vold"], fields["pold"]
    tdts8 = tdt / 8.0
    tdtsdx = tdt / DX
    tdtsdy = tdt / DY
    ip = (rows + 1) % n
    jp = np.roll(np.arange(n), -1)
    unew = (
        uold[rows]
        + tdts8 * (z[rows][:, jp] + z[rows])
        * (cv[rows][:, jp] + cv[im][:, jp] + cv[im] + cv[rows])
        - tdtsdx * (h[rows] - h[im])
    )
    vnew = (
        vold[rows]
        - tdts8 * (z[ip] + z[rows])
        * (cu[ip] + cu[rows] + cu[rows][:, jm] + cu[ip][:, jm])
        - tdtsdy * (h[rows] - h[rows][:, jm])
    )
    pnew = (
        pold[rows]
        - tdtsdx * (cu[ip] - cu[rows])
        - tdtsdy * (cv[rows][:, jp] - cv[rows])
    )
    return unew, vnew, pnew


def smooth_rows(
    cur: np.ndarray, new: np.ndarray, old: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Robert-Asselin time smoothing: returns (new_old, new_cur) rows."""
    smoothed = cur[rows] + ALPHA * (new[rows] - 2.0 * cur[rows] + old[rows])
    return smoothed, new[rows].copy()


def sequential_shallow(n: int, steps: int, init) -> Dict[str, np.ndarray]:
    """Reference integration with the identical kernels."""
    f = {k: v.copy() for k, v in init.items()}
    for k in ("cu", "cv", "z", "h", "unew", "vnew", "pnew"):
        f[k] = np.zeros((n, n))
    rows = np.arange(n)
    tdt = DT
    for step in range(steps):
        f["cu"][rows], f["cv"][rows], f["z"][rows], f["h"][rows] = flux_rows(
            f["p"], f["u"], f["v"], rows
        )
        f["unew"][rows], f["vnew"][rows], f["pnew"][rows] = advance_rows(
            f, rows, tdt
        )
        if step == 0:
            tdt = 2.0 * DT
            for name in ("u", "v", "p"):
                f[name + "old"] = f[name].copy()
                f[name] = f[name + "new"].copy()
        else:
            for name in ("u", "v", "p"):
                f[name + "old"][rows], f[name][rows] = smooth_rows(
                    f[name], f[name + "new"], f[name + "old"], rows
                )
    return f


def initial_fields(n: int) -> Dict[str, np.ndarray]:
    """The classic swm initial condition: a doubly periodic stream
    function with the matching geopotential perturbation."""
    a = 1.0e6
    el = n * DX
    di = dj = 2.0 * np.pi / n
    pcf = np.pi * np.pi * a * a / (el * el)
    i = np.arange(n)
    psi = (
        a
        * np.sin((i[:, None] + 0.5) * di)
        * np.sin((i[None, :] + 0.5) * dj)
    )
    u = -(psi - np.roll(psi, 1, axis=1)) / DY
    v = (psi - np.roll(psi, 1, axis=0)) / DX
    p = pcf * (
        np.cos(2.0 * i[:, None] * di) + np.cos(2.0 * i[None, :] * dj)
    ) + 5.0e4
    return {
        "u": u, "v": v, "p": p,
        "uold": u.copy(), "vold": v.copy(), "pold": p.copy(),
    }


@register_app("shallow")
class ShallowApp(DsmApplication):
    """NCAR shallow-water kernel."""

    name = "Shallow"
    synchronization = "barriers"

    FIELDS = (
        "u", "v", "p", "uold", "vold", "pold",
        "cu", "cv", "z", "h", "unew", "vnew", "pnew",
    )

    def __init__(
        self,
        n: Optional[int] = None,
        steps: Optional[int] = None,
        paper_scale: bool = False,
        home_policy: str = "round_robin",
    ):
        if paper_scale:
            self.n = n or 64
            self.steps = steps or 5000
        else:
            self.n = n or 32
            self.steps = steps or 6
        self.home_policy = home_policy
        self.iterations = self.steps
        self.data_set = f"{self.steps} iterations on {self.n}x{self.n} grids"

    # ------------------------------------------------------------------
    def allocate(self, space: SharedAddressSpace, nprocs: int) -> None:
        init = initial_fields(self.n)
        zeros = np.zeros((self.n, self.n))
        for name in self.FIELDS:
            space.allocate(
                name, (self.n, self.n), np.float64,
                init=init.get(name, zeros),
            )

    def homes(self, space: SharedAddressSpace, nprocs: int) -> Optional[List[int]]:
        if self.home_policy != "aligned":
            return None  # round-robin: the TreadMarks/HLRC default

        owners: Dict[str, List[int]] = {}
        row_bytes = self.n * 8
        per = -(-self.n // nprocs)
        for name in self.FIELDS:
            var = space.var(name)
            page_owner = []
            for p in space.pages_of(var):
                off = max(p * space.page_size, var.offset) - var.offset
                row = min(off // row_bytes, self.n - 1)
                page_owner.append(min(row // per, nprocs - 1))
            owners[name] = page_owner
        return owner_homes(space, nprocs, owners)

    # ------------------------------------------------------------------
    def program(self, dsm: "Dsm") -> Generator[Any, Any, None]:
        n, p, rank = self.n, dsm.nprocs, dsm.rank
        lo, hi = block_rows(n, p, rank)
        rows = np.arange(lo, hi)
        nrows = hi - lo

        def row_range(a: int, b: int) -> Tuple[int, int]:
            return a * n, b * n

        def read_with_halo(names) -> Generator[Any, Any, None]:
            """Own rows plus the periodic halo row on both sides (the
            Sadourny stencil references a-1 and a+1 in each phase)."""
            for name in names:
                yield from dsm.read(name, *row_range(lo, hi))
                for halo in ((lo - 1) % n, hi % n):
                    yield from dsm.read(name, *row_range(halo, halo + 1))

        fields = {name: dsm.arr(name) for name in self.FIELDS}
        tdt = DT
        flops_per_row = 30.0 * n

        for step in range(self.steps):
            if nrows:
                # phase 1: fluxes (reads row hi, the +1 halo)
                yield from read_with_halo(("p", "u", "v"))
                for name in ("cu", "cv", "z", "h"):
                    yield from dsm.write(name, *row_range(lo, hi))
                cu, cv, z, h = flux_rows(fields["p"], fields["u"], fields["v"], rows)
                fields["cu"][lo:hi] = cu
                fields["cv"][lo:hi] = cv
                fields["z"][lo:hi] = z
                fields["h"][lo:hi] = h
                yield from dsm.compute(flops_per_row * nrows)
            yield from dsm.barrier()

            if nrows:
                # phase 2: advance (reads row lo-1, the -1 halo)
                yield from read_with_halo(("cu", "cv", "z", "h"))
                for name in ("uold", "vold", "pold"):
                    yield from dsm.read(name, *row_range(lo, hi))
                for name in ("unew", "vnew", "pnew"):
                    yield from dsm.write(name, *row_range(lo, hi))
                unew, vnew, pnew = advance_rows(fields, rows, tdt)
                fields["unew"][lo:hi] = unew
                fields["vnew"][lo:hi] = vnew
                fields["pnew"][lo:hi] = pnew
                yield from dsm.compute(flops_per_row * nrows)
            yield from dsm.barrier()

            # phase 3: time smoothing / level rotation (all local rows)
            if nrows:
                if step == 0:
                    for name in ("u", "v", "p"):
                        yield from dsm.read(name, *row_range(lo, hi))
                        yield from dsm.read(name + "new", *row_range(lo, hi))
                        yield from dsm.write(name + "old", *row_range(lo, hi))
                        yield from dsm.write(name, *row_range(lo, hi))
                        fields[name + "old"][lo:hi] = fields[name][lo:hi]
                        fields[name][lo:hi] = fields[name + "new"][lo:hi]
                else:
                    for name in ("u", "v", "p"):
                        yield from dsm.read(name + "new", *row_range(lo, hi))
                        yield from dsm.read(name + "old", *row_range(lo, hi))
                        yield from dsm.write(name + "old", *row_range(lo, hi))
                        yield from dsm.write(name, *row_range(lo, hi))
                        sm, cur = smooth_rows(
                            fields[name], fields[name + "new"],
                            fields[name + "old"], rows,
                        )
                        fields[name + "old"][lo:hi] = sm
                        fields[name][lo:hi] = cur
                yield from dsm.compute(9.0 * nrows * n)
            if step == 0:
                tdt = 2.0 * DT
            yield from dsm.barrier()

    # ------------------------------------------------------------------
    def verify(self, system: "DsmSystem") -> bool:
        ref = sequential_shallow(self.n, self.steps, initial_fields(self.n))
        for name in ("u", "v", "p", "uold", "vold", "pold"):
            got = gather_global(system, name)
            if not np.allclose(got, ref[name], rtol=1e-10, atol=1e-9):
                return False
            if not np.all(np.isfinite(got)):
                return False
        return True
