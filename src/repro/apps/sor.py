"""Red-black successive over-relaxation (extra workload).

Not one of the paper's four applications, but a classic SDSM benchmark
with a pure nearest-neighbour pattern: the grid is row-block
distributed and each half-sweep updates one colour from the other,
faulting only on the two halo rows.  Useful as a low-communication
contrast to the all-to-all 3D-FFT in the ablation benches, and as a
compact example workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

import numpy as np

from ..memory import SharedAddressSpace
from .base import DsmApplication, block_rows, gather_global, owner_homes, register_app

if TYPE_CHECKING:  # pragma: no cover
    from ..dsm.api import Dsm
    from ..dsm.system import DsmSystem

__all__ = ["SorApp", "sor_halfsweep", "sequential_sor"]

OMEGA = 1.5


def sor_halfsweep(grid: np.ndarray, rows: np.ndarray, colour: int) -> np.ndarray:
    """Updated values of one colour on the given interior rows."""
    n = grid.shape[0]
    out = grid[rows].copy()
    for idx, i in enumerate(rows):
        if i == 0 or i == n - 1:
            continue
        js = np.arange(1 + (i + colour) % 2, n - 1, 2)
        if js.size == 0:
            continue
        neigh = grid[i - 1, js] + grid[i + 1, js] + grid[i, js - 1] + grid[i, js + 1]
        out[idx, js] = (1 - OMEGA) * grid[i, js] + OMEGA * 0.25 * neigh
    return out


def sequential_sor(n: int, iters: int, init: np.ndarray) -> np.ndarray:
    """Reference: identical half-sweeps on a plain array."""
    g = init.copy()
    rows = np.arange(n)
    for _ in range(iters):
        for colour in (0, 1):
            g[rows] = sor_halfsweep(g, rows, colour)
    return g


def initial_grid(n: int) -> np.ndarray:
    g = np.zeros((n, n))
    g[0, :] = 1.0  # hot top boundary
    return g


@register_app("sor")
class SorApp(DsmApplication):
    """Red-black SOR over a 2-D grid."""

    name = "SOR"
    synchronization = "barriers"

    def __init__(
        self,
        n: Optional[int] = None,
        iters: Optional[int] = None,
        paper_scale: bool = False,
        home_policy: str = "round_robin",
    ):
        self.n = n or (128 if paper_scale else 32)
        self.iters = iters or (100 if paper_scale else 4)
        self.home_policy = home_policy
        self.iterations = self.iters
        self.data_set = f"{self.iters} iterations on {self.n}x{self.n} grid"

    def allocate(self, space: SharedAddressSpace, nprocs: int) -> None:
        space.allocate("grid", (self.n, self.n), np.float64,
                       init=initial_grid(self.n))

    def homes(self, space: SharedAddressSpace, nprocs: int) -> Optional[List[int]]:
        if self.home_policy != "aligned":
            return None  # round-robin: the TreadMarks/HLRC default

        var = space.var("grid")
        row_bytes = self.n * 8
        per = -(-self.n // nprocs)
        page_owner = []
        for p in space.pages_of(var):
            off = max(p * space.page_size, var.offset) - var.offset
            row = min(off // row_bytes, self.n - 1)
            page_owner.append(min(row // per, nprocs - 1))
        return owner_homes(space, nprocs, {"grid": page_owner})

    def program(self, dsm: "Dsm") -> Generator[Any, Any, None]:
        n, p, rank = self.n, dsm.nprocs, dsm.rank
        lo, hi = block_rows(n, p, rank)
        rows = np.arange(lo, hi)
        grid = dsm.arr("grid")

        def row_elems(a: int, b: int) -> Tuple[int, int]:
            return a * n, b * n

        for _ in range(self.iters):
            for colour in (0, 1):
                if hi > lo:
                    a, b = max(lo - 1, 0), min(hi + 1, n)
                    yield from dsm.read("grid", *row_elems(a, b))
                    yield from dsm.write("grid", *row_elems(lo, hi))
                    grid[lo:hi] = sor_halfsweep(grid, rows, colour)
                    yield from dsm.compute(6.0 * (hi - lo) * n / 2)
                yield from dsm.barrier()

    def verify(self, system: "DsmSystem") -> bool:
        ref = sequential_sor(self.n, self.iters, initial_grid(self.n))
        got = gather_global(system, "grid")
        return bool(np.allclose(got, ref, rtol=1e-12, atol=1e-12))
