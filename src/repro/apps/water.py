"""Water: SPLASH-style molecular dynamics (paper Table 1, row 4).

N-squared molecular dynamics in the structure of SPLASH Water: molecules
are block-distributed; each timestep zeroes the force array, computes
Lennard-Jones pair forces exploiting Newton's third law (each rank owns
the pairs led by its molecules, so the reaction forces land in *other*
ranks' force blocks and are accumulated under **per-block locks** --
the lock synchronisation of Table 1), then integrates its own molecules.
Barriers separate the phases.

Verification compares positions and velocities against a sequential
reference; force accumulation order differs between the lock schedule
and the reference, so agreement is to tight floating-point tolerance
rather than bitwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..memory import SharedAddressSpace
from .base import DsmApplication, block_rows, gather_global, owner_homes, register_app

if TYPE_CHECKING:  # pragma: no cover
    from ..dsm.api import Dsm
    from ..dsm.system import DsmSystem

__all__ = ["WaterApp", "pair_forces_for_block", "initial_molecules"]

DT = 5e-4
MASS = 1.0
SIGMA = 1.0
EPS = 1.0
CUTOFF = 2.5 * SIGMA


def initial_molecules(m: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Molecules on a jittered cubic lattice with zero initial velocity."""
    side = int(np.ceil(m ** (1.0 / 3.0)))
    spacing = 1.12 * SIGMA
    grid = np.array(
        [(i, j, k) for i in range(side) for j in range(side) for k in range(side)],
        dtype=np.float64,
    )[:m]
    rng = np.random.RandomState(seed)
    pos = grid * spacing + 0.05 * spacing * rng.standard_normal((m, 3))
    vel = np.zeros((m, 3))
    return pos, vel


def pair_forces_for_block(
    pos: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """LJ forces for pairs ``(i, j)`` with ``lo <= i < hi`` and ``j > i``.

    Returns a full (M, 3) array of contributions: +f on i, -f on j
    (Newton's third law), exactly the half-matrix decomposition SPLASH
    Water uses.
    """
    m = pos.shape[0]
    out = np.zeros((m, 3))
    for i in range(lo, hi):
        js = np.arange(i + 1, m)
        if js.size == 0:
            continue
        d = pos[i] - pos[js]  # (nj, 3)
        r2 = (d * d).sum(axis=1)
        mask = (r2 < CUTOFF * CUTOFF) & (r2 > 1e-12)
        if not mask.any():
            continue
        d = d[mask]
        r2 = r2[mask]
        inv2 = (SIGMA * SIGMA) / r2
        inv6 = inv2 ** 3
        fmag = 24.0 * EPS * (2.0 * inv6 * inv6 - inv6) / r2
        f = fmag[:, None] * d
        out[i] += f.sum(axis=0)
        out[js[mask]] -= f
    return out


def sequential_water(
    m: int, steps: int, nblocks: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference integration with per-block force accumulation."""
    pos, vel = initial_molecules(m, seed)
    for _ in range(steps):
        force = np.zeros((m, 3))
        for b in range(nblocks):
            lo, hi = block_rows(m, nblocks, b)
            force += pair_forces_for_block(pos, lo, hi)
        vel = vel + (DT / MASS) * force
        pos = pos + DT * vel
    return pos, vel


@register_app("water")
class WaterApp(DsmApplication):
    """SPLASH-Water-style molecular dynamics."""

    name = "Water"
    synchronization = "locks and barriers"

    def __init__(
        self,
        molecules: Optional[int] = None,
        steps: Optional[int] = None,
        paper_scale: bool = False,
        seed: int = 1717,
        home_policy: str = "round_robin",
    ):
        if paper_scale:
            self.m = molecules or 512
            self.steps = steps or 120
        else:
            self.m = molecules or 64
            self.steps = steps or 3
        self.seed = seed
        self.home_policy = home_policy
        self.iterations = self.steps
        self.data_set = f"{self.steps} iterations on {self.m} molecules"

    # ------------------------------------------------------------------
    def allocate(self, space: SharedAddressSpace, nprocs: int) -> None:
        pos, vel = initial_molecules(self.m, self.seed)
        space.allocate("pos", (self.m, 3), np.float64, init=pos)
        space.allocate("vel", (self.m, 3), np.float64, init=vel)
        space.allocate("force", (self.m, 3), np.float64,
                       init=np.zeros((self.m, 3)))

    def homes(self, space: SharedAddressSpace, nprocs: int) -> Optional[List[int]]:
        if self.home_policy != "aligned":
            return None  # round-robin: the TreadMarks/HLRC default

        owners: Dict[str, List[int]] = {}
        row_bytes = 3 * 8
        per = -(-self.m // nprocs)
        for name in ("pos", "vel", "force"):
            var = space.var(name)
            page_owner = []
            for p in space.pages_of(var):
                off = max(p * space.page_size, var.offset) - var.offset
                mol = min(off // row_bytes, self.m - 1)
                page_owner.append(min(mol // per, nprocs - 1))
            owners[name] = page_owner
        return owner_homes(space, nprocs, owners)

    # ------------------------------------------------------------------
    def program(self, dsm: "Dsm") -> Generator[Any, Any, None]:
        m, p, rank = self.m, dsm.nprocs, dsm.rank
        lo, hi = block_rows(m, p, rank)
        nmine = hi - lo
        pos = dsm.arr("pos")
        vel = dsm.arr("vel")
        force = dsm.arr("force")

        def mol_elems(a: int, b: int) -> Tuple[int, int]:
            return a * 3, b * 3

        pair_flops = 30.0 * nmine * max(m - lo, 1)

        for _step in range(self.steps):
            # phase 1: owners zero their force blocks
            if nmine:
                yield from dsm.write("force", *mol_elems(lo, hi))
                force[lo:hi] = 0.0
            yield from dsm.barrier()

            # phase 2: pair forces for our half-matrix slice
            if nmine:
                yield from dsm.read("pos")  # all positions (remote faults)
                contrib = pair_forces_for_block(pos, lo, hi)
                yield from dsm.compute(pair_flops)
                # scatter contributions into each block under its lock
                for b in range(p):
                    blo, bhi = block_rows(m, p, b)
                    if bhi <= blo:
                        continue
                    block = contrib[blo:bhi]
                    if not np.any(block):
                        continue
                    yield from dsm.acquire(b)
                    yield from dsm.read("force", *mol_elems(blo, bhi))
                    yield from dsm.write("force", *mol_elems(blo, bhi))
                    force[blo:bhi] += block
                    yield from dsm.release(b)
            yield from dsm.barrier()

            # phase 3: integrate our molecules
            if nmine:
                yield from dsm.read("force", *mol_elems(lo, hi))
                yield from dsm.read("vel", *mol_elems(lo, hi))
                yield from dsm.write("vel", *mol_elems(lo, hi))
                yield from dsm.write("pos", *mol_elems(lo, hi))
                vel[lo:hi] = vel[lo:hi] + (DT / MASS) * force[lo:hi]
                pos[lo:hi] = pos[lo:hi] + DT * vel[lo:hi]
                yield from dsm.compute(12.0 * nmine)
            yield from dsm.barrier()

    # ------------------------------------------------------------------
    def verify(self, system: "DsmSystem") -> bool:
        nprocs = system.config.num_nodes
        ref_pos, ref_vel = sequential_water(self.m, self.steps, nprocs, self.seed)
        got_pos = gather_global(system, "pos")
        got_vel = gather_global(system, "vel")
        return bool(
            np.allclose(got_pos, ref_pos, rtol=1e-8, atol=1e-10)
            and np.allclose(got_vel, ref_vel, rtol=1e-8, atol=1e-10)
            and np.all(np.isfinite(got_pos))
        )
