"""Cluster and cost-model configuration.

The paper's testbed is a cluster of eight Sun Ultra-5 workstations
(270 MHz UltraSPARC-IIi, 64 MB RAM, local IDE disks) connected by a
switched 100 Mbps Ethernet, running modified TreadMarks under Solaris
2.6.  :class:`ClusterConfig` captures every quantity the simulator needs
to price protocol actions on that hardware; :meth:`ClusterConfig.ultra5`
returns the calibrated default.

All times are in **seconds**, sizes in **bytes**, and rates in
**bytes/second** or **flop/s** so that arithmetic in the engine never
needs unit conversions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

__all__ = [
    "NetworkConfig",
    "DiskConfig",
    "CpuConfig",
    "ClusterConfig",
    "DEFAULT_PAGE_SIZE",
    "WORD_SIZE",
]

#: Coherence unit used by the paper's platform (Solaris VM page).
DEFAULT_PAGE_SIZE = 4096

#: Diff granularity: diffs compare and ship 4-byte words, as TreadMarks does.
WORD_SIZE = 4


@dataclass(frozen=True)
class NetworkConfig:
    """Timing model for the switched-Ethernet interconnect.

    A message of ``n`` bytes from A to B costs::

        send_overhead_s            (sender CPU, on sender's critical path)
        + n / bandwidth_bps        (serialisation on sender NIC, FIFO)
        + latency_s                (wire + switch + receiver interrupt)
        + recv_overhead_s          (receiver CPU, charged to the handler)

    The switch is non-blocking, so there is no shared-medium contention;
    only the per-node NICs serialise traffic, matching full-duplex
    switched fast Ethernet.
    """

    #: One-way wire + switch + interrupt latency for a minimal message.
    latency_s: float = 150e-6
    #: Sustainable point-to-point bandwidth (100 Mbps fast Ethernet,
    #: de-rated for UDP/IP overhead).
    bandwidth_bps: float = 10.5e6
    #: Sender-side per-message CPU cost (syscall + UDP/IP stack on a
    #: 270 MHz UltraSPARC; TreadMarks-era measurements put this above
    #: 100 us each way, which is why its page fetches cost 1-2 ms).
    send_overhead_s: float = 120e-6
    #: Receiver-side per-message CPU cost (interrupt + dispatch).
    recv_overhead_s: float = 120e-6

    def transfer_time(self, nbytes: int) -> float:
        """Serialisation time of ``nbytes`` on a NIC."""
        return nbytes / self.bandwidth_bps


@dataclass(frozen=True)
class DiskConfig:
    """Timing model for a node's local disk (stable storage).

    Reads and writes are priced asymmetrically, reflecting how the
    paper's platform behaves:

    * **writes** (log flushes, checkpoints) go through the OS buffer
      cache -- a ``write()`` returns after the syscall and the copy,
      with the physical I/O draining in the background.  The effective
      per-operation latency is therefore small, while sustained volume
      still pays the transfer bandwidth (the cache drains at disk
      speed, so bandwidth bounds throughput).
    * **reads** during recovery hit a cold cache and pay the full seek +
      rotational latency of a late-1990s IDE disk (~8-10 ms) plus the
      transfer -- the "high disk access latency in reading large logged
      data" charged against ML-recovery in Section 4.3.
    """

    #: Cold random-read latency per operation (full seek + rotation).
    #: Paid when recovery opens a checkpoint or repositions in the log.
    access_latency_s: float = 8e-3
    #: Sequential-scan continuation latency per operation.  Replay
    #: consumes the log in append order, so OS read-ahead keeps the next
    #: records in flight and each read costs only the request overhead.
    seq_read_latency_s: float = 0.4e-3
    #: Buffer-cache-warm read latency.  A *survivor* serving its own
    #: recently written log finds it in the OS page cache.
    cached_read_latency_s: float = 0.25e-3
    #: Effective buffered-write latency per operation (syscall + copy).
    write_latency_s: float = 0.5e-3
    #: Sequential transfer bandwidth (bounds both directions).
    bandwidth_bps: float = 9.0e6

    def read_time(self, nbytes: int) -> float:
        """Service time for one cold random read of ``nbytes``."""
        return self.access_latency_s + nbytes / self.bandwidth_bps

    def seq_read_time(self, nbytes: int) -> float:
        """Service time for one sequential-scan read of ``nbytes``."""
        return self.seq_read_latency_s + nbytes / self.bandwidth_bps

    def cached_read_time(self, nbytes: int) -> float:
        """Service time for one cache-warm read of ``nbytes``."""
        return self.cached_read_latency_s + nbytes / self.bandwidth_bps

    def write_time(self, nbytes: int) -> float:
        """Service time for one buffered write of ``nbytes``."""
        return self.write_latency_s + nbytes / self.bandwidth_bps

    def op_time(self, nbytes: int) -> float:
        """Backward-compatible alias for :meth:`read_time`."""
        return self.read_time(nbytes)


@dataclass(frozen=True)
class CpuConfig:
    """Timing model for protocol-related CPU work on one node.

    ``flops`` charged by applications are divided by :attr:`flop_rate`.
    The protocol costs below are per-event and were chosen to mirror
    published TreadMarks/HLRC microbenchmarks on UltraSPARC-class
    hardware (page fault handling including ``mprotect`` ~ 100 us, twin
    copy and diff scan a few CPU cycles per byte).
    """

    #: Application floating-point throughput (270 MHz UltraSPARC-IIi,
    #: ~1 flop/cycle sustained on these kernels).
    flop_rate: float = 30e6
    #: Fixed cost of fielding a page fault (trap + handler dispatch).
    page_fault_s: float = 80e-6
    #: Cost of creating a twin (copy one page).
    twin_copy_per_byte_s: float = 9e-9
    #: Cost of scanning twin vs. working copy during diff creation.
    diff_scan_per_byte_s: float = 12e-9
    #: Cost of applying one diffed byte at the home node.
    diff_apply_per_byte_s: float = 10e-9
    #: Fixed cost of any synchronisation operation (bookkeeping).
    sync_overhead_s: float = 30e-6

    def compute_time(self, flops: float) -> float:
        """Wall time to execute ``flops`` floating-point operations."""
        return flops / self.flop_rate


@dataclass(frozen=True)
class ClusterConfig:
    """Full description of the simulated cluster.

    Instances are immutable; use :meth:`with_changes` to derive variants
    for ablation sweeps (e.g. a slower disk or a larger page).
    """

    num_nodes: int = 8
    page_size: int = DEFAULT_PAGE_SIZE
    network: NetworkConfig = field(default_factory=NetworkConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    #: Default shared address-space size (bytes); applications may
    #: request more at allocation time.
    shared_memory_bytes: int = 64 << 20
    #: Optional fault-domain labels, one per node (``zones[i]`` is the
    #: zone of node ``i``).  ``None`` means a single implicit zone; the
    #: network then takes its unchanged fast path, so runs without zones
    #: stay byte-identical to pre-zone behaviour.
    zones: "tuple[int, ...] | None" = None
    #: Extra one-way latency for messages that cross a zone boundary
    #: (the per-zone WAN profile; ignored without :attr:`zones`).
    zone_wan_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.page_size < 2 * WORD_SIZE or self.page_size % WORD_SIZE:
            raise ConfigError(
                f"page_size must be a multiple of {WORD_SIZE} words, got {self.page_size}"
            )
        if self.shared_memory_bytes % self.page_size:
            raise ConfigError("shared_memory_bytes must be page aligned")
        if self.zones is not None:
            if len(self.zones) != self.num_nodes:
                raise ConfigError(
                    f"zones needs one label per node: got {len(self.zones)} "
                    f"labels for {self.num_nodes} nodes"
                )
            if any(z < 0 for z in self.zones):
                raise ConfigError(f"zone labels must be >= 0, got {self.zones}")
        if self.zone_wan_latency_s < 0:
            raise ConfigError("zone_wan_latency_s must be >= 0")

    @classmethod
    def ultra5(cls, num_nodes: int = 8, **overrides) -> "ClusterConfig":
        """The paper's testbed: 8 Sun Ultra-5s on 100 Mbps switched Ethernet."""
        return cls(num_nodes=num_nodes, **overrides)

    def with_changes(self, **changes) -> "ClusterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def words_per_page(self) -> int:
        """Number of diff-granularity words in one page."""
        return self.page_size // WORD_SIZE

    # -- fault domains -------------------------------------------------
    @property
    def num_zones(self) -> int:
        """Number of distinct fault domains (1 without explicit zones)."""
        return len(set(self.zones)) if self.zones is not None else 1

    def zone_of(self, node: int) -> int:
        """Fault-domain label of ``node`` (0 without explicit zones)."""
        return self.zones[node] if self.zones is not None else 0

    def nodes_in_zone(self, zone: int) -> "tuple[int, ...]":
        """All node ranks labelled with ``zone`` (empty when unknown)."""
        if self.zones is None:
            return tuple(range(self.num_nodes)) if zone == 0 else ()
        return tuple(i for i, z in enumerate(self.zones) if z == zone)

    def with_zones(self, num_zones: int,
                   wan_latency_s: float = 0.0) -> "ClusterConfig":
        """Round-robin the nodes over ``num_zones`` fault domains."""
        if not (1 <= num_zones <= self.num_nodes):
            raise ConfigError(
                f"num_zones must be in 1..{self.num_nodes}, got {num_zones}"
            )
        return self.with_changes(
            zones=tuple(i % num_zones for i in range(self.num_nodes)),
            zone_wan_latency_s=wan_latency_s,
        )
