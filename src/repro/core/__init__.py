"""The paper's contribution: logging protocols and crash recovery.

* :mod:`repro.core.ml` -- traditional message logging (baseline).
* :mod:`repro.core.ccl` -- coherence-centric logging (the contribution).
* :mod:`repro.core.adaptive` -- adaptive hybrid logging (CCL <-> ML per
  interval under a recovery-time budget).
* :mod:`repro.core.stablelog`, :mod:`repro.core.logrecords` -- the
  stable-storage log with byte-exact size accounting.
* :mod:`repro.core.checkpoint` -- full + incremental checkpointing.
* :mod:`repro.core.failure` -- crash-point specification and capture.
* :mod:`repro.core.recovery` (+ :mod:`repro.core.ml_recovery`,
  :mod:`repro.core.ccl_recovery`) -- replay engines and the two-phase
  recovery experiment driver with bit-exact state verification.
* :mod:`repro.core.chaos` -- the seeded fault-injection / arbitrary-
  instant-crash property suite (see docs/robustness.md).
"""

from .logging_base import (
    LoggingHooks,
    NoLogging,
    PROTOCOL_NAMES,
    RECOVERY_PROTOCOL_NAMES,
    make_hooks,
    make_hooks_factory,
)
from .ml import MessageLogging
from .ccl import CoherenceCentricLogging
from .adaptive import AdaptiveLogging
from .stablelog import StableLog
from .logrecords import (
    FetchLogRecord,
    IncomingDiffLogRecord,
    LogRecord,
    ModeSwitchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
)
from .checkpoint import Checkpointer, CheckpointMeta, CheckpointSnapshot
from .failure import CrashProbe, FailureSnapshot, FailureSpec
from .detector import FailureDetector, Heartbeat
from .responder import FailedNodeResponder, SurvivorResponder
from .recovery import (
    MultiRecoveryResult,
    RecoveryResult,
    ReplayNode,
    compare_state,
    replay_node_class,
    replay_failed_node,
    run_multi_recovery_experiment,
    run_recovery_experiment,
)
from .chaos import ChaosCase, ChaosReport, run_chaos_run, run_chaos_suite
from .ml_recovery import MlReplayNode
from .ccl_recovery import CclReplayNode
from .adaptive_recovery import AdaptiveReplayNode

__all__ = [
    "LoggingHooks",
    "NoLogging",
    "PROTOCOL_NAMES",
    "RECOVERY_PROTOCOL_NAMES",
    "make_hooks",
    "make_hooks_factory",
    "MessageLogging",
    "CoherenceCentricLogging",
    "AdaptiveLogging",
    "StableLog",
    "LogRecord",
    "NoticeLogRecord",
    "FetchLogRecord",
    "PageCopyLogRecord",
    "UpdateEventLogRecord",
    "IncomingDiffLogRecord",
    "OwnDiffLogRecord",
    "ModeSwitchLogRecord",
    "Checkpointer",
    "CheckpointMeta",
    "CheckpointSnapshot",
    "CrashProbe",
    "FailureSnapshot",
    "FailureSpec",
    "FailureDetector",
    "Heartbeat",
    "SurvivorResponder",
    "FailedNodeResponder",
    "ReplayNode",
    "RecoveryResult",
    "MultiRecoveryResult",
    "compare_state",
    "replay_node_class",
    "replay_failed_node",
    "run_recovery_experiment",
    "run_multi_recovery_experiment",
    "ChaosCase",
    "ChaosReport",
    "run_chaos_run",
    "run_chaos_suite",
    "MlReplayNode",
    "CclReplayNode",
    "AdaptiveReplayNode",
]
