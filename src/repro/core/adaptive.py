"""Adaptive hybrid logging: switch between CCL and ML per interval.

The paper evaluates coherence-centric logging (Section 3.2) and
traditional message logging (Section 3.1) as static, whole-run choices.
This protocol hosts both and picks per interval, following the online
cost-model framing of "Adaptive Logging for Distributed In-memory
Databases" (PAPERS.md): ML's content-bearing log buys purely local
replay (no recovery network traffic), CCL's metadata log buys near-zero
failure-free overhead but replays across the network.  A per-node
``recovery_budget`` (virtual seconds, the "Partially Constrained
Transaction Logs" framing) bounds the projected worst-case recovery
time; within the budget the node runs in CCL mode, and when the
projection would overrun it the node falls back to ML mode -- but only
when ML replay is actually estimated to be faster.

Mechanics:

* A fixed *skeleton* is logged in every mode -- write-invalidation
  notices, update-event records, and the node's own outgoing/home-write
  diffs (``OwnDiffLogRecord``).  The skeleton is what peers' recoveries
  query (``logdiff_req`` serving, event/home-diff histories), so a
  node's mode flips never disturb anyone else's recovery.
* Only the receive-side *contents* records switch: ML mode adds full
  page copies and incoming-diff contents; CCL mode adds 24-ish-byte
  fetch records instead.
* Decisions happen exclusively at interval-seal boundaries -- the only
  points where the coherence layer holds no twins and no partially
  logged interval -- and each flip appends a
  :class:`~repro.core.logrecords.ModeSwitchLogRecord` tagged with the
  *next* interval, so replay can dispatch every logged interval segment
  to the matching replay engine
  (:class:`~repro.core.adaptive_recovery.AdaptiveReplayNode`).
* A decided flip *commits lazily*: the coherence layer can still
  deliver messages tagged with the sealed interval while the seal
  waits for diff acks, and those stragglers must be logged in the mode
  their interval replays under.  The marker and the policy flags are
  applied by the first hook that runs with the next interval's tag,
  which also keeps the log's interval tags monotone.
* The model consumes only simulated measurements (logged byte counts,
  per-interval compute time, the cluster's disk/network constants), so
  switch schedules are deterministic: same seed, same switches.

The first interval always runs in ML mode (local replay is the
conservative choice before any measurements exist); with the default
unbounded budget the model flips to CCL at the first seal, so every
adaptive log is a mixed-mode log and the chaos suites exercise
per-interval dispatch continuously.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..dsm.interval import IntervalRecord, VectorClock
from ..dsm.logginghooks import LoggingHooks
from ..dsm.messages import DiffBatch
from ..memory.diff import Diff
from ..sim.events import Signal
from .logrecords import (
    FRAME_HEADER_BYTES,
    FetchLogRecord,
    IncomingDiffLogRecord,
    LogRecord,
    ModeSwitchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
    _vt_nbytes,
)
from .stablelog import StableLog

__all__ = ["AdaptiveLogging"]


class AdaptiveLogging(LoggingHooks):
    """Hybrid CCL/ML logging driven by an online recovery-cost model."""

    name = "adaptive"
    #: Both knobs are instance attributes: the coherence layer reads them
    #: dynamically at every sync entry / interval end, so flipping them
    #: at a seal boundary changes policy for exactly the next interval.
    flush_at_sync_entry = True
    wants_home_diffs = True

    #: The mode of interval 0, before any measurement exists.
    START_MODE = "ml"
    #: Exponential-moving-average weight of the newest interval.
    EMA_ALPHA = 0.5
    #: Minimum number of future intervals the budget projection charges
    #: at the current per-interval rate.  The effective horizon grows
    #: with the run (at interval *k* the projection assumes at least
    #: *k* more intervals -- the doubling heuristic), so longer runs
    #: fall back to ML correspondingly earlier.  Larger values switch
    #: to ML earlier (more conservative about the budget).
    HEADROOM_INTERVALS = 8
    #: Fall back to ML only when its whole-run replay estimate beats
    #: CCL's by at least this factor.  When the two directions are
    #: within the estimator's noise band, switching cannot reliably
    #: help the budget and only costs overhead.
    DIRECTION_MARGIN = 0.8

    def __init__(self, recovery_budget: Optional[float] = None):
        #: Worst-case recovery-time bound in virtual seconds
        #: (None = unbounded: pure overhead minimisation).
        self.recovery_budget = recovery_budget
        self.mode = self.START_MODE
        self.flush_at_sync_entry = self.mode == "ml"
        self.mode_switches = 0
        #: Actual appended log bytes attributed to the mode in effect.
        self.mode_bytes = {"ml": 0, "ccl": 0}

    def bind(self, node) -> None:
        super().bind(node)
        self.log = StableLog(node.disk, node_id=node.id,
                             faults=getattr(node.disk, "fault_plan", None))
        self._early_diffs: List[Tuple[int, Diff, VectorClock]] = []
        # -- cost-model state ------------------------------------------
        self._compute_mark = 0.0
        #: Estimated replay time of the work committed so far, interval
        #: by interval, each priced in the mode that actually logged it.
        self._committed = 0.0
        self._ema_ml: Optional[float] = None
        self._ema_ccl = 0.0
        self._ema_compute = 0.0
        #: Pages this node has ever fetched.  A *re*-fetch means the
        #: page churned under invalidations, so at replay its exact
        #: version needs the delta/rebuild path (an extra gather wave)
        #: rather than a direct home copy.
        self._fetched_pages: set = set()
        #: Whole-run replay estimates had every interval been logged in
        #: one mode -- the stable signal for which direction to take
        #: when the budget forces a choice (per-interval EMAs flicker).
        self._sum_ml = 0.0
        self._sum_ccl = 0.0
        #: Once the budget forces a fallback the node stays in ML: the
        #: committed replay estimate only grows, so the pressure that
        #: forced the switch never relaxes, and flapping would re-log
        #: page contents for nothing.
        self._budget_latched = False
        #: A decided-but-uncommitted switch: (first interval of the new
        #: mode, the marker record to append when it commits).
        self._pending_switch: Optional[Tuple[int, ModeSwitchLogRecord]] = None
        self._reset_interval_tallies()
        # every log opens with its starting mode so replay never guesses
        self._append(ModeSwitchLogRecord(0, 0, mode=self.mode, prev_mode=""))

    def _reset_interval_tallies(self) -> None:
        self._iv_notice_bytes = 0
        self._iv_fetches = 0
        self._iv_pagecopy_bytes = 0  # hypothetical ML page-copy records
        self._iv_fetch_meta_bytes = 0  # hypothetical CCL fetch records
        self._iv_event_bytes = 0
        self._iv_incoming_bytes = 0  # hypothetical ML incoming-diff records
        self._iv_incoming_payload = 0  # raw diff bytes applied to homes
        self._iv_writers: set = set()
        self._iv_fetch_homes: set = set()
        self._iv_refetches = 0

    def _append(self, rec: LogRecord) -> None:
        self.log.append(rec)
        self.mode_bytes[self.mode or self.START_MODE] += rec.nbytes

    # ------------------------------------------------------------------
    # receipt-side hooks: skeleton always, contents only in ML mode
    # ------------------------------------------------------------------
    def on_notices_received(
        self, records: List[IntervalRecord], window: int
    ) -> None:
        self._commit_pending_switch()
        if records:
            rec = NoticeLogRecord(self.node.interval_index, window, list(records))
            self._append(rec)
            self._iv_notice_bytes += rec.nbytes

    def on_page_fetched(
        self, page: int, contents: np.ndarray, version: VectorClock, window: int
    ) -> None:
        self._commit_pending_switch()
        pagecopy_nbytes = FRAME_HEADER_BYTES + 8 + _vt_nbytes(version) + len(contents)
        fetch_nbytes = FRAME_HEADER_BYTES + 4 + _vt_nbytes(version)
        self._iv_fetches += 1
        self._iv_pagecopy_bytes += pagecopy_nbytes
        self._iv_fetch_meta_bytes += fetch_nbytes
        self._iv_fetch_homes.add(self.node.pagetable.entry(page).home)
        if page in self._fetched_pages:
            self._iv_refetches += 1
        else:
            self._fetched_pages.add(page)
        if self.mode == "ml":
            self._append(
                PageCopyLogRecord(
                    self.node.interval_index, window, page, contents.copy(),
                    version,
                )
            )
        else:
            self._append(
                FetchLogRecord(self.node.interval_index, window, page, version)
            )

    def on_update_received(self, batch: DiffBatch) -> None:
        self._commit_pending_switch()
        # the event record is skeleton: FailedNodeResponder re-derives a
        # crashed home's update history from it in every mode
        event = UpdateEventLogRecord(
            self.node.interval_index,
            0,
            batch.writer,
            batch.interval_index,
            batch.part,
            tuple(d.page for d in batch.diffs),
        )
        self._append(event)
        self._iv_event_bytes += event.nbytes
        payload = sum(d.nbytes for d in batch.diffs)
        self._iv_incoming_bytes += (
            FRAME_HEADER_BYTES + 12 + _vt_nbytes(batch.vt) + payload
        )
        self._iv_incoming_payload += payload
        self._iv_writers.add(batch.writer)
        if self.mode == "ml":
            self._append(
                IncomingDiffLogRecord(
                    self.node.interval_index,
                    0,
                    batch.writer,
                    batch.interval_index,
                    batch.vt,
                    list(batch.diffs),
                )
            )

    def on_early_diff(self, diff: Diff, part: int, vt: VectorClock) -> None:
        self._early_diffs.append((part, diff, vt))

    # ------------------------------------------------------------------
    # seal: log own diffs, re-price the interval, maybe switch mode
    # ------------------------------------------------------------------
    def on_interval_end(
        self,
        interval_index: int,
        vt: VectorClock,
        remote_diffs: List[Diff],
        home_diffs: List[Diff],
        record: Optional[IntervalRecord],
    ) -> None:
        self._commit_pending_switch()
        if record is not None:
            early, self._early_diffs = self._early_diffs, []
            self._append(
                OwnDiffLogRecord(
                    interval_index,
                    0,
                    vt_index=record.index,
                    vt=vt,
                    diffs=list(remote_diffs),
                    home_diffs=list(home_diffs),
                    early=early,
                )
            )
        self._decide(interval_index)
        self._reset_interval_tallies()

    def _estimate_replay(self) -> Tuple[float, float]:
        """Estimated replay time of the just-sealed interval, both modes.

        Priced from the cluster's disk/network/CPU constants against the
        interval's observed traffic -- the same quantities the replay
        engines charge, without running them.
        """
        cfg = self.node.cfg
        disk, net, cpu = cfg.disk, cfg.network, cfg.cpu
        rtt = 2 * (net.latency_s + net.send_overhead_s + net.recv_overhead_s)
        apply_t = cpu.diff_apply_per_byte_s * self._iv_incoming_payload
        # ML: boundary scan of notices + diff contents, then one local
        # disk read per memory miss for the logged page copy
        ml_meta = self._iv_notice_bytes + self._iv_incoming_bytes
        r_ml = disk.seq_read_time(ml_meta) if ml_meta else 0.0
        if self._iv_fetches:
            r_ml += self._iv_fetches * (cpu.page_fault_s + disk.seq_read_latency_s)
            r_ml += self._iv_pagecopy_bytes / disk.bandwidth_bps
        r_ml += apply_t
        # CCL: smaller metadata scan, then one logdiff wave to the
        # writers and one reconstruction wave to the homes
        ccl_meta = (
            self._iv_notice_bytes
            + self._iv_event_bytes
            + self._iv_fetch_meta_bytes
        )
        r_ccl = disk.seq_read_time(ccl_meta) if ccl_meta else 0.0
        per_peer = net.send_overhead_s + net.recv_overhead_s
        if self._iv_writers:
            r_ccl += rtt + net.transfer_time(self._iv_incoming_payload)
            r_ccl += (len(self._iv_writers) - 1) * per_peer
        if self._iv_fetches:
            r_ccl += rtt + net.transfer_time(self._iv_fetches * cfg.page_size)
            r_ccl += (len(self._iv_fetch_homes) - 1) * per_peer
            if self._iv_refetches:
                # a re-fetched page churned past the home's frozen copy:
                # its exact version comes from the delta/rebuild path,
                # a second serialised gather wave
                r_ccl += rtt
        r_ccl += apply_t
        return r_ml, r_ccl

    def _decide(self, interval_index: int) -> None:
        r_ml, r_ccl = self._estimate_replay()
        compute_now = self.node.stats.time.get("compute")
        compute_i = compute_now - self._compute_mark
        self._compute_mark = compute_now
        self._committed += compute_i + (r_ccl if self.mode == "ccl" else r_ml)
        self._sum_ml += r_ml
        self._sum_ccl += r_ccl
        a = self.EMA_ALPHA
        if self._ema_ml is None:
            self._ema_ml, self._ema_ccl, self._ema_compute = r_ml, r_ccl, compute_i
        else:
            self._ema_ml = a * r_ml + (1 - a) * self._ema_ml
            self._ema_ccl = a * r_ccl + (1 - a) * self._ema_ccl
            self._ema_compute = a * compute_i + (1 - a) * self._ema_compute
        want = "ccl"
        if self.recovery_budget is not None:
            projected = self._committed + self.HEADROOM_INTERVALS * (
                self._ema_compute + self._ema_ccl
            )
            if self._budget_latched or (
                self._sum_ml < self.DIRECTION_MARGIN * self._sum_ccl
                and projected > self.recovery_budget
            ):
                # CCL replay is projected to overrun the budget and ML
                # replay is estimated decisively faster: fall back to
                # local replay, and stay there (the committed estimate
                # only grows, so the pressure never relaxes)
                self._budget_latched = True
                want = "ml"
        if want != self.mode:
            self.mode_switches += 1
            # effective from the *next* interval, committed lazily: the
            # seal can still deliver messages tagged with the sealed
            # interval while it waits for diff acks, and those must log
            # in the old mode (the mode their interval replays under)
            self._pending_switch = (
                interval_index + 1,
                ModeSwitchLogRecord(
                    interval_index + 1,
                    0,
                    mode=want,
                    prev_mode=self.mode,
                    est_replay_ml=self._ema_ml,
                    est_replay_ccl=self._ema_ccl,
                ),
            )

    def _commit_pending_switch(self) -> None:
        """Apply a decided mode switch once its interval has begun.

        Runs at the top of every logging hook: the first record tagged
        with the new interval lands after the marker, straggler records
        tagged with the sealed interval land before it, so interval
        tags stay monotone and every record's schema matches the
        replay engine its interval dispatches to.
        """
        if self._pending_switch is None:
            return
        at, marker = self._pending_switch
        if self.node.interval_index < at:
            return
        self._pending_switch = None
        self._append(marker)
        self.mode = marker.mode
        self.flush_at_sync_entry = marker.mode == "ml"

    # ------------------------------------------------------------------
    # flush scheduling: ML's sync-entry flush or CCL's overlapped flush,
    # whichever the current mode dictates
    # ------------------------------------------------------------------
    def sync_entry_flush(self):
        spent = yield from self.log.flush_sync()
        if spent:
            self.node.stats.charge("log_flush", spent)

    def overlapped_flush(self) -> Optional[Signal]:
        if self.mode != "ccl":
            return None
        return self.log.flush_async()

    def log_summary(self) -> dict:
        summary = self.log.summary()
        summary["mode_switches"] = self.mode_switches
        summary["ml_mode_bytes"] = self.mode_bytes["ml"]
        summary["ccl_mode_bytes"] = self.mode_bytes["ccl"]
        return summary
