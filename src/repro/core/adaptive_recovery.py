"""Adaptive recovery: dispatch each logged interval to ML or CCL replay.

An adaptive log is a sequence of interval segments, each written in the
mode the cost model had picked at the previous seal, delimited by
:class:`~repro.core.logrecords.ModeSwitchLogRecord` markers (the bind-
time marker names interval 0's mode, every later marker the interval
its switch takes effect at).  Replay reads the full marker list up
front -- the markers are tiny and live in the metadata stream -- and
then routes every protocol-specific step of the base replay skeleton
to the engine matching the *current* interval's mode:

* ML-mode intervals replay purely locally
  (:class:`~repro.core.ml_recovery.MlReplayNode`): boundary scan of the
  logged contents, lazy page-copy reads at memory misses;
* CCL-mode intervals replay coherence-centrically
  (:class:`~repro.core.ccl_recovery.CclReplayNode`): one metadata scan,
  then a combined wave of writer-log diff fetches and home
  reconstructions.

The dispatch must live in each overridable step (not just
``_begin_interval``): CCL's interval-start path calls back into
``_boundary_read``/``_prefetch_window``, and those calls must keep
resolving to CCL behaviour for the whole interval even though the
class inherits both engines.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from .ccl_recovery import CclReplayNode
from .logrecords import ModeSwitchLogRecord
from .ml_recovery import MlReplayNode
from .recovery import ReplayNode

__all__ = ["AdaptiveReplayNode"]


class AdaptiveReplayNode(MlReplayNode, CclReplayNode):
    """Replay engine for adaptive hybrid logs (per-interval dispatch)."""

    protocol = "adaptive"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        markers = sorted(
            self.plog.select(ModeSwitchLogRecord),
            key=lambda r: r.interval,
        )
        #: ``(first_interval, mode)`` switch points in interval order.
        self.switch_points: List[Tuple[int, str]] = [
            (r.interval, r.mode) for r in markers
        ]

    def mode_at(self, interval: int) -> str:
        """The logging mode in effect during ``interval``.

        Defaults to the adaptive protocol's start mode when the log
        holds no marker at or below the interval (a truncated view cut
        before the bind-time marker never replays -- a durable view
        without it has no durable records at all)."""
        mode = "ml"
        for first, m in self.switch_points:
            if first <= interval:
                mode = m
            else:
                break
        return mode

    @property
    def _ccl_interval(self) -> bool:
        return self.mode_at(self.interval_index) == "ccl"

    # ------------------------------------------------------------------
    # per-interval dispatch of every protocol-specific step
    # ------------------------------------------------------------------
    def _begin_interval(self) -> Generator[Any, Any, None]:
        if self._ccl_interval:
            yield from CclReplayNode._begin_interval(self)
        else:
            yield from ReplayNode._begin_interval(self)

    def _boundary_read(self) -> Generator[Any, Any, None]:
        if self._ccl_interval:
            yield from CclReplayNode._boundary_read(self)
        else:
            yield from MlReplayNode._boundary_read(self)

    def _apply_boundary_updates(self) -> Generator[Any, Any, None]:
        if self._ccl_interval:
            yield from CclReplayNode._apply_boundary_updates(self)
        else:
            yield from MlReplayNode._apply_boundary_updates(self)

    def _window_read(self, window: int, notices) -> Generator[Any, Any, None]:
        if self._ccl_interval:
            yield from CclReplayNode._window_read(self, window, notices)
        else:
            yield from MlReplayNode._window_read(self, window, notices)

    def _prefetch_window(self, window: int) -> Generator[Any, Any, None]:
        if self._ccl_interval:
            yield from CclReplayNode._prefetch_window(self, window)
        else:
            yield from MlReplayNode._prefetch_window(self, window)

    def _replay_fault(self, page: int) -> Generator[Any, Any, None]:
        if self._ccl_interval:
            yield from CclReplayNode._replay_fault(self, page)
        else:
            yield from MlReplayNode._replay_fault(self, page)
