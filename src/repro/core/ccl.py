"""Coherence-centric logging (CCL) -- the paper's contribution (Section 3.2).

CCL records only information that is *indispensable* for recovery and
cannot be reconstructed from surviving nodes:

* the diffs this node itself produced at each interval end (their home
  copies advance past them and discard them),
* the write-invalidation notices received at interval starts,
* fixed-size **records** of incoming update events (12 bytes per page:
  interval number, page id, writer id) -- never their contents,
* fixed-size fetch records (page id + fetch-time version) standing in
  for the full page copies ML logs -- fetched pages are reconstructible
  from a home checkpoint plus writer-logged diffs, so their contents
  never enter the log.

The single flush per interval is issued right after the diffs are
handed to the network and completes in parallel with the diff-ACK round
trip already present in HLRC; only disk time in excess of the
communication wait lands on the critical path.

One conservative extension over the paper: each node also twins and
logs diffs of its writes to its *own home pages* (``wants_home_diffs``),
so a surviving home can serve its own modifications during a peer's
recovery.  The paper instead lets the home "rollback to the most recent
checkpoint in order to recreate its modification" (worst case in
Section 3.2); logging home writes trades a little extra log volume for
never disturbing survivors, and can only make our reported CCL overhead
*more* pessimistic than the paper's.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..dsm.interval import IntervalRecord, VectorClock
from ..dsm.logginghooks import LoggingHooks
from ..dsm.messages import DiffBatch
from ..memory.diff import Diff
from ..sim.events import Signal
from .stablelog import StableLog
from .logrecords import (
    FetchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    UpdateEventLogRecord,
)

__all__ = ["CoherenceCentricLogging"]


class CoherenceCentricLogging(LoggingHooks):
    """Log-what-cannot-be-reconstructed, flush-overlapped-with-comm."""

    name = "ccl"
    flush_at_sync_entry = False
    wants_home_diffs = True

    def __init__(self, log_home_diffs: bool = True, overlap: bool = True):
        #: Ablation knob: disable the home-write-diff extension.
        self.log_home_diffs = log_home_diffs
        self.wants_home_diffs = log_home_diffs
        #: Ablation knob: disable the flush/communication overlap and
        #: flush synchronously at sync entry instead (isolates how much
        #: of CCL's advantage comes from overlap vs. log size).
        self.overlap = overlap
        self.flush_at_sync_entry = not overlap

    def bind(self, node) -> None:
        super().bind(node)
        self.log = StableLog(node.disk, node_id=node.id,
                             faults=getattr(node.disk, "fault_plan", None))
        self._early_diffs: List[Diff] = []

    # ------------------------------------------------------------------
    def on_notices_received(
        self, records: List[IntervalRecord], window: int
    ) -> None:
        if records:
            self.log.append(
                NoticeLogRecord(self.node.interval_index, window, list(records))
            )

    def on_page_fetched(
        self, page: int, contents: np.ndarray, version: VectorClock, window: int
    ) -> None:
        # metadata only -- this is the big saving over ML
        self.log.append(
            FetchLogRecord(self.node.interval_index, window, page, version)
        )

    def on_update_received(self, batch: DiffBatch) -> None:
        self.log.append(
            UpdateEventLogRecord(
                self.node.interval_index,
                0,
                batch.writer,
                batch.interval_index,
                batch.part,
                tuple(d.page for d in batch.diffs),
            )
        )

    def on_early_diff(self, diff: Diff, part: int, vt: VectorClock) -> None:
        self._early_diffs.append((part, diff, vt))

    def on_interval_end(
        self,
        interval_index: int,
        vt: VectorClock,
        remote_diffs: List[Diff],
        home_diffs: List[Diff],
        record: Optional[IntervalRecord],
    ) -> None:
        if record is None:
            return
        early, self._early_diffs = self._early_diffs, []
        self.log.append(
            OwnDiffLogRecord(
                interval_index,
                0,
                vt_index=record.index,
                vt=vt,
                diffs=list(remote_diffs),
                home_diffs=list(home_diffs),
                early=early,
            )
        )

    # ------------------------------------------------------------------
    def overlapped_flush(self) -> Optional[Signal]:
        if not self.overlap:
            return None
        return self.log.flush_async()

    def sync_entry_flush(self):
        """Only used by the no-overlap ablation variant."""
        spent = yield from self.log.flush_sync()
        if spent:
            self.node.stats.charge("log_flush", spent)

    def log_summary(self) -> dict:
        return self.log.summary()
