"""CCL recovery: one batched log read + prefetch per interval (Section 3.2).

At the beginning of each replayed interval the recovering node

1. reads its log bundle's coherence metadata in a single disk access
   (notices, update-event records, fetch records; the log's diff-data
   stream is pulled on demand),
2. applies the interval-start write-invalidation notices,
3. launches **one combined wave of batched requests**: per-writer
   fetches of the diffs named by the update-event records (to bring its
   home copies forward) together with per-home reconstruction requests
   for every page the interval will touch (named by the logged fetch
   records) -- "fetches the updates from the logged data on remote
   nodes at the beginning of each time interval",
4. rebuilds pages to their exact fetch-time versions: directly when the
   home's frozen copy is that version, as a *delta* onto the retained
   stale frame when one exists (only the ``(have, needed]`` diffs are
   gathered), or from the home's checkpoint image otherwise.

Prefetching eliminates the memory-miss idle time entirely -- a replay
fault on an invalid page is a protocol bug here, and is raised as one.
Mid-interval acquires (windows > 0) run the same wave without the
update events, which only exist at interval granularity.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..dsm.interval import VectorClock
from ..dsm.messages import ReconPage, ReconRequest
from ..errors import RecoveryError
from ..memory.diff import apply_diff
from ..memory.page import PageState
from ..sim.network import NetMessage
from .logrecords import (
    FetchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    UpdateEventLogRecord,
)
from .recovery import ReplayNode

__all__ = ["CclReplayNode"]

#: (page, interval, part) triples wanted from one writer.
Wants = Dict[int, List[Tuple[int, int, int]]]


class CclReplayNode(ReplayNode):
    """Replay engine for coherence-centric logging."""

    protocol = "ccl"

    # ------------------------------------------------------------------
    def _begin_interval(self) -> Generator[Any, Any, None]:
        if self.restoring:
            return
        yield from self._boundary_read()
        notices = self.plog.select(
            NoticeLogRecord, interval=self.interval_index, window=0
        )
        for rec in notices:
            self._apply_notices(rec.records)
        yield from self._update_and_prefetch(window=0, with_events=True)

    def _boundary_read(self) -> Generator[Any, Any, None]:
        """One batched disk read of the interval's coherence metadata.

        The log is organised as two streams -- coherence metadata
        (notices, update events, fetch records) and diff data -- so the
        per-interval boundary scan only pays for the small metadata;
        own diffs are pulled on demand when a reconstruction history
        references this node as a writer.
        """
        nbytes = sum(
            r.nbytes
            for r in self.plog.bundle(self.interval_index)
            if not isinstance(r, OwnDiffLogRecord)
        )
        yield from self._disk_read("log_read", nbytes)

    def _apply_boundary_updates(self) -> Generator[Any, Any, None]:
        """Folded into :meth:`_begin_interval`'s combined wave."""
        return
        yield  # pragma: no cover - generator marker

    def _window_read(self, window: int, notices) -> Generator[Any, Any, None]:
        """Nothing: the bundle metadata was read once at interval start."""
        return
        yield  # pragma: no cover - generator marker

    def _prefetch_window(self, window: int) -> Generator[Any, Any, None]:
        yield from self._update_and_prefetch(window=window, with_events=False)

    # ------------------------------------------------------------------
    def _update_and_prefetch(
        self, window: int, with_events: bool
    ) -> Generator[Any, Any, None]:
        """One combined wave of event-diff fetches + page reconstruction."""
        event_wants: Wants = {}
        if with_events:
            seen = set()
            for ev in self.plog.select(
                UpdateEventLogRecord, interval=self.interval_index
            ):
                for page in ev.pages:
                    key = (ev.writer, page, ev.writer_index, ev.part)
                    if key in seen:
                        continue
                    seen.add(key)
                    event_wants.setdefault(ev.writer, []).append(
                        (page, ev.writer_index, ev.part)
                    )

        fetches = self.plog.select(
            FetchLogRecord, interval=self.interval_index, window=window
        )
        # split pages into *warm* (a stale frame with a known version is
        # still resident: reconstruct locally by range-querying exactly
        # the writers whose vector components advanced -- no home round
        # trip) and *cold* (never held: ask the home for a direct copy
        # or a checkpoint image + history)
        warm: List[Tuple[int, VectorClock]] = []
        warm_ranges: Wants = {}
        recon_by_home: Dict[int, List] = {}
        for rec in fetches:
            assert rec.version is not None
            entry = self.pagetable.entry(rec.page)
            have = entry.version
            if have is not None:
                warm.append((rec.page, rec.version))
                for j in range(self.cfg.num_nodes):
                    if rec.version[j] > have[j]:
                        warm_ranges.setdefault(j, []).append(
                            (rec.page, have[j], rec.version[j] - 1)
                        )
            else:
                recon_by_home.setdefault(entry.home, []).append(
                    (rec.page, rec.version, None)
                )
        if not event_wants and not warm and not recon_by_home:
            return

        # ---- wave 1: cold recon metadata + event diffs + warm deltas
        recon_sigs = []
        if self.timed:
            for home in sorted(recon_by_home):
                req = ReconRequest(self.id, recon_by_home[home])
                yield from self.net.send(
                    NetMessage(self.id, home, "recon_req", req, req.nbytes)
                )
                recon_sigs.append(
                    self.net.mailbox(self.id).get(
                        lambda m, h=home: m.kind == "recon_reply"
                        and m.payload.home == h
                    )
                )
        wave1 = yield from self._gather_diffs(event_wants, warm_ranges)

        if self.timed:
            t0 = self.sim.now
            items: List[ReconPage] = []
            for sig in recon_sigs:
                msg = yield sig
                items.extend(msg.payload.items)
            self.stats.charge("prefetch", self.sim.now - t0)
        else:
            items = []
            for home in sorted(recon_by_home):
                reply = self.responders[home].serve_recon(
                    ReconRequest(self.id, recon_by_home[home])
                )
                items.extend(reply.items)

        # ---- apply update events to home copies (causal order); event
        # pages are homed here, warm pages are not, so split by home
        cpu_cost = 0.0
        by_page: Dict[int, list] = {}
        for e in self.causal_sort(wave1):
            diff = e[0]
            if self.pagetable.entry(diff.page).home == self.id:
                apply_diff(diff, self.memory.page_bytes(diff.page))
                entry = self.pagetable.entry(diff.page)
                entry.version = entry.version.merge(e[4])
                cpu_cost += self.cfg.cpu.diff_apply_per_byte_s * 4 * diff.word_count
                self.stats.count("replay_diffs_applied")
            else:
                by_page.setdefault(diff.page, []).append(e)

        # ---- warm pages: apply the delta onto the retained stale frame
        for page, needed in warm:
            frame = self.memory.page_bytes(page)
            for diff, _w, _i, _p, _vt in self.causal_sort(by_page.get(page, [])):
                apply_diff(diff, frame)
                cpu_cost += self.cfg.cpu.diff_apply_per_byte_s * 4 * diff.word_count
            entry = self.pagetable.entry(page)
            entry.state = PageState.CLEAN
            entry.version = needed
            self.stats.count("pages_prefetched")
            self.stats.count("prefetch_delta")

        # ---- cold pages: direct installs, then checkpoint rebuilds
        needed_by_page = {rec.page: rec.version for rec in fetches}
        rebuilds: List[Tuple[int, VectorClock, np.ndarray]] = []
        histories: Wants = {}
        for item in items:
            if item.direct is not None:
                self._install(item.page, item.direct, item.version)
                self.stats.count("prefetch_direct")
                continue
            assert item.checkpoint is not None
            rebuilds.append((item.page, needed_by_page[item.page], item.checkpoint))
            self.stats.count("prefetch_rebuilt")
            for writer, idx, part in dict.fromkeys(item.history):
                histories.setdefault(writer, []).append((item.page, idx, part))

        if rebuilds:
            entries = yield from self._gather_diffs(histories)
            cold_by_page: Dict[int, list] = {}
            for e in entries:
                cold_by_page.setdefault(e[0].page, []).append(e)
            for page, needed, base in rebuilds:
                image = base.copy()
                for diff, _w, _i, _p, vt in self.causal_sort(
                    cold_by_page.get(page, [])
                ):
                    # client-side version filter: a *failed* home serves
                    # its history unfiltered (its event records carry no
                    # timestamps), so drop diffs beyond the needed
                    # version here -- each diff travels with its vt
                    if not needed.dominates(vt):
                        continue
                    apply_diff(diff, image)
                    cpu_cost += (
                        self.cfg.cpu.diff_apply_per_byte_s * 4 * diff.word_count
                    )
                self._install(page, image, needed)
        yield from self._spend("diff", cpu_cost)

    def _install(self, page: int, contents: np.ndarray, version) -> None:
        self.memory.page_bytes(page)[:] = contents
        entry = self.pagetable.entry(page)
        entry.state = PageState.CLEAN
        entry.version = version
        self.stats.count("pages_prefetched")

    # ------------------------------------------------------------------
    def _replay_fault(self, page: int) -> Generator[Any, Any, None]:
        raise RecoveryError(
            f"CCL replay faulted on page {page} in interval "
            f"{self.interval_index}: prefetch should have covered it"
        )
        yield  # pragma: no cover - generator marker
