"""Seeded chaos suite: random faults x random crash instants, bit-exact recovery.

Each chaos *run* executes one application under a seeded
:class:`~repro.sim.faults.FaultPlan` (drops, duplicates, delays,
reordering) with a :class:`~repro.core.failure.CrashProbe` in
``capture_all`` mode, so one faulted phase-A execution yields a snapshot
at every seal.  The driver then samples several *crash instants* --
arbitrary virtual times, deliberately not aligned with seals -- and for
each one:

1. truncates the victim's log to what a crash at that instant would
   leave on disk (:meth:`~repro.core.stablelog.StableLog.durable_view`);
2. computes the highest recoverable seal ``k*``: the victim cannot be
   reconstructed past the last seal it completed, nor past the first
   log bundle with a lost record;
3. replays the victim against the truncated log
   (:func:`~repro.core.recovery.replay_failed_node`) and verifies the
   recovered memory image, page states, versions, and vector clock
   bit-for-bit against the phase-A snapshot at ``k*``.

``kill`` cases additionally crash the victim **live** mid-run: its
processes die, its queued NIC frames and in-flight deliveries are
discarded, the survivors stall, and recovery is verified from the
killed run's own durable log.

Zone-scoped faults extend the same discipline to whole fault domains:
``zone_kill`` live-kills every node of one zone at a seeded instant and
verifies each victim's recovery with its co-victims dead;
``zone_partition`` isolates two zones from each other for a seeded
window (the reliable transport must ride the outage out).  Under the
``failover`` protocol with ``replication >= 2``, recovery goes through
:func:`~repro.core.failover_recovery.recover_via_failover` -- a
surviving replica is promoted and only the coherence-metadata suffix is
replayed -- and the contract becomes *bit-exact failover or a diagnosed
refusal when the quorum is lost*; a silent wrong-memory result is the
only failure.

Everything is derived from one integer seed, so a failing case is
reproducible from the one-line command the report prints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..config import ClusterConfig
from ..dsm.system import DsmSystem
from ..errors import (
    ConfigError,
    DeadlockError,
    LoggingProtocolError,
    RecoveryError,
    SimulationError,
    StorageFaultError,
)
from ..sim.faults import DiskFaultPlan, FaultPlan
from ..sim.trace import Tracer
from .failover_recovery import compare_mirror, recover_via_failover
from .failure import CrashProbe
from .logging_base import make_hooks_factory
from .recovery import compare_state, replay_failed_node
from .replication import ZoneFaultSpec, validate_replication
from .salvage import salvage_log

__all__ = ["ChaosCase", "ChaosReport", "run_chaos_run", "run_chaos_suite"]

#: Default fault rates: high enough that every run sees drops,
#: duplicates, delays, and reordering, low enough that the transport's
#: bounded retry (p**(max_retries+1) residual loss) never gives up on a
#: live peer.
DEFAULT_RATES = {"drop": 0.08, "dup": 0.08, "delay": 0.12, "reorder": 0.12}


@dataclass
class ChaosCase:
    """One (app, protocol, fault schedule, crash instant) verification."""

    app: str
    protocol: str
    seed: int
    crash_node: int
    crash_time: float
    stop_at: int
    live_kill: bool
    ok: bool
    detail: str = ""
    mismatches: List[str] = field(default_factory=list)
    #: Extra CLI flags (scale, cluster size, zones, replication) needed
    #: to reproduce.
    repro_extra: str = ""
    #: Salvage-scan summary for this crash instant (disk faults only).
    salvage: str = ""

    def repro_command(self) -> str:
        """One-line command reproducing exactly this case."""
        cmd = (
            f"python -m repro chaos --apps {self.app} "
            f"--protocols {self.protocol} --seed {self.seed} "
            f"--crash-time {self.crash_time!r} --crash-node {self.crash_node}"
        )
        if self.live_kill:
            cmd += " --live-kill"
        if self.repro_extra:
            cmd += f" {self.repro_extra}"
        return cmd


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos suite."""

    cases: List[ChaosCase] = field(default_factory=list)
    #: Injected-fault totals across all runs.
    fault_totals: Dict[str, int] = field(default_factory=dict)
    #: Transport totals (retransmits, dups dropped, ...) across all runs.
    transport_totals: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> List[ChaosCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        return bool(self.cases) and not self.failures

    def merge_totals(self, plan: FaultPlan, transport: Any) -> None:
        for k, v in plan.summary().items():
            self.fault_totals[k] = self.fault_totals.get(k, 0) + v
        if transport is not None and hasattr(transport, "summary"):
            for k, v in transport.summary().items():
                self.transport_totals[k] = self.transport_totals.get(k, 0) + v

    def render(self) -> str:
        lines = [
            f"chaos: {len(self.cases)} cases, "
            f"{len(self.cases) - len(self.failures)} passed, "
            f"{len(self.failures)} failed",
            f"  faults injected: {self.fault_totals}",
            f"  transport: {self.transport_totals}",
        ]
        for c in self.failures:
            lines.append(
                f"  FAIL seed={c.seed} plan=({c.app},{c.protocol}) "
                f"crash=({c.crash_node}@{c.crash_time:.6g}) "
                f"stop_at={c.stop_at}: {c.detail or c.mismatches}"
            )
            lines.append(f"    {c.repro_command()}")
        return "\n".join(lines)


def _case_rng(seed: int) -> random.Random:
    # decorrelated from the FaultPlan's own stream (same seed feeds both)
    return random.Random(seed ^ 0x9E3779B9)


def _zone_repro_flags(
    config: ClusterConfig,
    replication: int,
    zone_kill: Optional[int],
    zone_partition: Optional[Tuple[int, int]],
) -> List[str]:
    """Extra CLI flags reproducing the replication/zone setup."""
    flags: List[str] = []
    if replication > 1:
        flags.append(f"--replication {replication}")
    if config.zones is not None:
        flags.append(f"--zones {config.num_zones}")
        if config.zone_wan_latency_s > 0:
            flags.append(f"--zone-wan {config.zone_wan_latency_s:g}")
    if zone_kill is not None:
        flags.append(f"--zone-kill {zone_kill}")
    if zone_partition is not None:
        flags.append(f"--zone-partition {zone_partition[0]},{zone_partition[1]}")
    return flags


def run_chaos_run(
    app_factory: Callable[[], Any],
    config: ClusterConfig,
    protocol: str,
    seed: int,
    crash_points: int = 5,
    crash_node: Optional[int] = None,
    crash_times: Optional[List[float]] = None,
    live_kill: bool = False,
    rates: Optional[Dict[str, float]] = None,
    disk_rates: Optional[Dict[str, float]] = None,
    sanitize: bool = False,
    app_name: Optional[str] = None,
    repro_extra: str = "",
    tracer: Optional[Tracer] = None,
    replication: int = 1,
    zone_kill: Optional[int] = None,
    zone_partition: Optional[Tuple[int, int]] = None,
) -> Tuple[List[ChaosCase], FaultPlan, Any]:
    """One faulted phase-A execution plus its crash-instant recoveries.

    Returns ``(cases, fault_plan, transport)``.  ``crash_times`` (virtual
    seconds) overrides the seeded sampling -- the repro path for a
    reported failure.  With ``live_kill`` the victim is killed at the
    (single) crash time instead of being probed past it.  ``disk_rates``
    (``torn_tail`` / ``write_error`` / ``bitrot``) adds a seeded
    :class:`~repro.sim.faults.DiskFaultPlan`: flushes retry transient
    write errors, each crash instant's durable view goes through the
    salvage scan, and recovery must then be bit-exact over the salvaged
    log *or* fail with a diagnosed error naming the damage -- a silent
    wrong-memory result is the only failure.

    ``replication`` mirrors every home onto ``k-1`` followers;
    ``zone_kill`` live-kills a whole fault domain at a seeded instant
    and recovers every victim with its co-victims dead;
    ``zone_partition`` isolates two zones for a seeded window mid-run.
    Zone faults are validated (:class:`ZoneFaultSpec`) before anything
    executes.  The ``failover`` protocol (requires ``replication >= 2``)
    recovers through replica promotion instead of classic replay, and a
    diagnosed quorum-loss refusal counts as a pass.
    """
    rng = _case_rng(seed)
    rates = dict(rates or DEFAULT_RATES)
    disk_rates = {k: v for k, v in (disk_rates or {}).items() if v > 0}

    validate_replication(replication, config.num_nodes)
    spec = ZoneFaultSpec(zone_kill=zone_kill, zone_partition=zone_partition)
    if spec.any:
        spec.validate(config)
    if protocol == "failover" and replication < 2:
        raise ConfigError(
            "the failover protocol promotes a surviving replica, so it "
            f"needs replication >= 2 (got {replication}); pass "
            "--replication 2 or higher"
        )
    repro_extra = " ".join(
        ([repro_extra] if repro_extra else [])
        + _zone_repro_flags(config, replication, zone_kill, zone_partition)
    )

    def _disk_plan() -> Optional[DiskFaultPlan]:
        # fresh per execution: write-error draws are event-ordered
        return DiskFaultPlan.uniform(seed, **disk_rates) if disk_rates else None

    def _diagnosable(exc: BaseException) -> Optional[BaseException]:
        # errors raised inside spawned sim processes arrive wrapped in
        # SimulationError; walk the cause chain for the storage fault
        while exc is not None:
            if isinstance(exc, (StorageFaultError, RecoveryError,
                                LoggingProtocolError)):
                return exc
            exc = exc.__cause__
        return None
    app = app_factory()
    if app_name is None:
        app_name = str(getattr(app, "name", type(app).__name__)).lower()
    if zone_kill is not None:
        victims = list(config.nodes_in_zone(zone_kill))
        victim = victims[0]
    else:
        victim = (
            crash_node
            if crash_node is not None
            else rng.randrange(config.num_nodes)
        )
        victims = [victim]
    lethal = live_kill or zone_kill is not None

    def build(plan: FaultPlan, tracer: Optional[Tracer] = None) -> DsmSystem:
        return DsmSystem(
            app_factory(),
            config,
            make_hooks_factory(protocol),
            tracer=tracer,
            fault_plan=plan,
            disk_fault_plan=_disk_plan(),
            replication=replication,
        )

    def diagnosed(node: int, t: float, stop_at: int, exc: Exception,
                  salvage: str = "") -> ChaosCase:
        # fail-fast with a named cause is a *pass* under disk faults and
        # under failover quorum loss: the contract is bit-exact or
        # loudly refused, never silent
        return ChaosCase(
            app_name, protocol, seed, node, t, stop_at,
            live_kill, True, f"diagnosed: {exc}", repro_extra=repro_extra,
            salvage=salvage,
        )

    def fail(node: int, t: float, stop_at: int, detail: str,
             mismatches=None, salvage: str = "") -> ChaosCase:
        return ChaosCase(
            app_name, protocol, seed, node, t, stop_at,
            live_kill, False, detail, list(mismatches or []),
            repro_extra=repro_extra, salvage=salvage,
        )

    # ---- pilot duration: kill times and partition windows must be ----
    # ---- sampled inside the run --------------------------------------
    kill_time: Optional[float] = None
    part_window: Optional[Tuple[float, float]] = None
    if lethal or zone_partition is not None:
        pilot_plan = FaultPlan.uniform(seed, **rates)
        try:
            pilot = build(pilot_plan).run()
        except (StorageFaultError, SimulationError) as exc:
            cause = _diagnosable(exc)
            if not disk_rates or cause is None:
                raise
            return [diagnosed(victim, 0.0, 0, cause)], pilot_plan, None
        if lethal:
            kill_time = rng.uniform(0.15, 0.85) * pilot.total_time
            if crash_times:
                kill_time = crash_times[0]
        if zone_partition is not None:
            # a window the bounded-retransmit transport can ride out:
            # it heals well before the run would abandon live peers
            start = rng.uniform(0.2, 0.5) * pilot.total_time
            width = rng.uniform(0.05, 0.15) * pilot.total_time
            part_window = (start, start + width)

    plan = FaultPlan.uniform(seed, **rates)
    disk_plan = _disk_plan()
    if kill_time is not None:
        if zone_kill is not None:
            plan.kill_zone(victims, kill_time)
        else:
            plan.kill(victim, kill_time)
    if part_window is not None:
        za, zb = zone_partition
        plan.partition(
            config.nodes_in_zone(za), config.nodes_in_zone(zb),
            part_window[0], part_window[1],
        )
    if tracer is None and sanitize:
        tracer = Tracer(enabled=True)
    system_a = DsmSystem(
        app, config, make_hooks_factory(protocol), tracer=tracer,
        fault_plan=plan, disk_fault_plan=disk_plan, replication=replication,
    )
    probes = {v: CrashProbe(v, capture_all=True) for v in victims}
    for p in probes.values():
        system_a.add_probe(p)
    try:
        result_a = system_a.run()
    except (StorageFaultError, SimulationError) as exc:
        cause = _diagnosable(exc)
        if cause is not None and disk_plan is not None:
            return [diagnosed(victim, 0.0, 0, cause)], plan, system_a.transport
        if zone_partition is not None and isinstance(exc, DeadlockError):
            # the partition window outlived the transport's patience; a
            # stall is loud (liveness, not corruption) but still a
            # reportable failure of the ride-it-out contract
            return (
                [fail(victim, part_window[0] if part_window else 0.0, 0,
                      f"zone partition stalled the run: {exc}")],
                plan, system_a.transport,
            )
        raise

    cases: List[ChaosCase] = []

    # the application result itself proves reliable delivery: faults
    # must not change what the program computes.  A live-killed run may
    # still complete when the kill lands after the victims' last
    # contribution (survivors no longer need them) -- then the results
    # must be correct; otherwise the survivors must have stalled.
    if result_a.completed:
        verify = getattr(app, "verify", None)
        if verify is not None and not verify(system_a):
            cases.append(fail(victim, kill_time or 0.0, 0,
                              "faulted run computed wrong results"))
            return cases, plan, system_a.transport
    elif not lethal:
        cases.append(fail(victim, 0.0, 0, "faulted run did not complete"))
        return cases, plan, system_a.transport

    if sanitize and tracer is not None:
        from ..analysis import check_trace

        report = check_trace(tracer)
        if not report.ok:
            cases.append(
                fail(victim, 0.0, 0, f"sanitizer: {report.violations[0]}")
            )
            return cases, plan, system_a.transport

    home_pages = {
        v: [p for p, h in enumerate(system_a.homes) if h == v]
        for v in victims
    }

    def failover_case(v: int, t: float, view, stop_at: int,
                      salv: str) -> ChaosCase:
        """Recover one victim by replica promotion and verify the mirror.

        The chaos driver probes many counterfactual crash instants of
        one phase-A run, so the (shared, mutable) group fencing state is
        restored after each probe -- a real failover would of course
        leave the promotion in place.
        """
        grp = system_a.replica_groups[v]
        saved = (grp.promoted, grp.epoch)
        try:
            promoted, _epoch, mirror, breakdown, _stats, _rp, _rf = (
                recover_via_failover(
                    config, system_a, v, view, stop_at,
                    dead=victims, at_time=t,
                )
            )
        except (RecoveryError, LoggingProtocolError, SimulationError) as exc:
            cause = _diagnosable(exc)
            if cause is None:
                raise
            return diagnosed(v, t, stop_at, cause, salvage=salv)
        finally:
            grp.promoted, grp.epoch = saved
        mismatches = compare_mirror(
            mirror, probes[v].snapshots[mirror.seal],
            home_pages[v], config.page_size,
        )
        if "page_replay" in breakdown:
            # the scheme's whole point: page contents come from the
            # promoted replica, never from log replay
            mismatches.append("failover breakdown contains page_replay")
        return ChaosCase(
            app_name, protocol, seed, v, t, stop_at, live_kill,
            not mismatches,
            "" if not mismatches else f"mirror mismatch (promoted {promoted})",
            mismatches, repro_extra=repro_extra, salvage=salv,
        )

    # ---- sample crash instants and verify recovery at each -----------
    horizon = kill_time if kill_time is not None else result_a.total_time
    if crash_times:
        instants = list(crash_times)
    elif lethal:
        instants = [kill_time or 0.0]
    else:
        instants = sorted(rng.uniform(0.0, horizon) for _ in range(crash_points))

    for t in instants:
        for v in victims:
            probe = probes[v]
            log = getattr(system_a.nodes[v].hooks, "log")
            seals_done = sum(
                1 for s in probe.snapshots.values() if s.time <= t
            )
            view = log.durable_view(t)
            salvage_report = None
            if disk_plan is not None and disk_plan.active:
                view, salvage_report = salvage_log(view)
                # salvage keeps a prefix of the full persistent
                # sequence, so the first unreplayable interval comes
                # straight off its count
                lost = log.first_lost_from(salvage_report.salvaged_count)
            else:
                lost = log.first_lost_interval(t)
            salv = (
                salvage_report.describe() if salvage_report is not None else ""
            )
            stop_at = seals_done if lost is None else min(seals_done, lost)
            if stop_at < 1:
                # nothing recoverable was sealed: recovery degenerates
                # to a restart from the initial checkpoint, trivially
                # bit-exact
                cases.append(
                    ChaosCase(app_name, protocol, seed, v, t, 0,
                              live_kill, True, "restart-from-checkpoint",
                              repro_extra=repro_extra, salvage=salv)
                )
                continue
            if protocol == "failover":
                cases.append(failover_case(v, t, view, stop_at, salv))
                continue
            try:
                replay, _rt = replay_failed_node(
                    app, config, protocol, system_a, v,
                    view, stop_at, salvage=salvage_report, dead=victims,
                )
            except (RecoveryError, LoggingProtocolError,
                    SimulationError) as exc:
                cause = _diagnosable(exc)
                if cause is None:
                    raise
                if disk_plan is not None and disk_plan.active:
                    cases.append(diagnosed(v, t, stop_at, cause, salvage=salv))
                else:
                    cases.append(
                        fail(v, t, stop_at, f"replay error: {cause}")
                    )
                continue
            mismatches = compare_state(
                replay, probe.snapshots[stop_at], config.page_size
            )
            cases.append(
                ChaosCase(
                    app_name, protocol, seed, v, t, stop_at,
                    live_kill, not mismatches,
                    "" if not mismatches else "state mismatch",
                    mismatches,
                    repro_extra=repro_extra,
                    salvage=salv,
                )
            )
    return cases, plan, system_a.transport


def run_chaos_suite(
    app_factories: Dict[str, Callable[[], Any]],
    config: ClusterConfig,
    protocols: Tuple[str, ...] = ("ccl", "ml"),
    seeds: int = 10,
    first_seed: int = 0,
    crash_points: int = 5,
    kill_every: int = 4,
    rates: Optional[Dict[str, float]] = None,
    disk_rates: Optional[Dict[str, float]] = None,
    sanitize: bool = False,
    fail_fast: bool = False,
    repro_extra: str = "",
    replication: int = 1,
    zone_kill: Optional[int] = None,
    zone_partition: Optional[Tuple[int, int]] = None,
) -> ChaosReport:
    """The full property suite: apps x protocols x seeds x crash instants.

    Every ``kill_every``-th seed of each (app, protocol) pair becomes a
    live-kill case (victim processes die mid-run, in-flight frames
    discarded); the rest are probe-based and amortise ``crash_points``
    crash instants over one faulted execution.  ``zone_kill`` makes
    *every* seed a zone-kill case (the whole fault domain dies at a
    seeded instant; the per-seed live-kill cadence is subsumed);
    ``zone_partition`` adds a seeded two-zone partition window to each
    run.  ``replication`` runs every case over quorum-replicated homes.
    """
    report = ChaosReport()
    for app_name, factory in sorted(app_factories.items()):
        for protocol in protocols:
            for i in range(seeds):
                seed = first_seed + i
                live = (
                    kill_every > 0
                    and i % kill_every == kill_every - 1
                    and zone_kill is None
                )
                cases, plan, transport = run_chaos_run(
                    factory, config, protocol, seed,
                    crash_points=crash_points,
                    live_kill=live,
                    rates=rates,
                    disk_rates=disk_rates,
                    sanitize=sanitize,
                    app_name=app_name,
                    repro_extra=repro_extra,
                    replication=replication,
                    zone_kill=zone_kill,
                    zone_partition=zone_partition,
                )
                report.cases.extend(cases)
                report.merge_totals(plan, transport)
                if fail_fast and report.failures:
                    return report
    return report
