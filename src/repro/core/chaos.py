"""Seeded chaos suite: random faults x random crash instants, bit-exact recovery.

Each chaos *run* executes one application under a seeded
:class:`~repro.sim.faults.FaultPlan` (drops, duplicates, delays,
reordering) with a :class:`~repro.core.failure.CrashProbe` in
``capture_all`` mode, so one faulted phase-A execution yields a snapshot
at every seal.  The driver then samples several *crash instants* --
arbitrary virtual times, deliberately not aligned with seals -- and for
each one:

1. truncates the victim's log to what a crash at that instant would
   leave on disk (:meth:`~repro.core.stablelog.StableLog.durable_view`);
2. computes the highest recoverable seal ``k*``: the victim cannot be
   reconstructed past the last seal it completed, nor past the first
   log bundle with a lost record;
3. replays the victim against the truncated log
   (:func:`~repro.core.recovery.replay_failed_node`) and verifies the
   recovered memory image, page states, versions, and vector clock
   bit-for-bit against the phase-A snapshot at ``k*``.

``kill`` cases additionally crash the victim **live** mid-run: its
processes die, its queued NIC frames and in-flight deliveries are
discarded, the survivors stall, and recovery is verified from the
killed run's own durable log.

Everything is derived from one integer seed, so a failing case is
reproducible from the one-line command the report prints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..config import ClusterConfig
from ..dsm.system import DsmSystem
from ..errors import (
    LoggingProtocolError,
    RecoveryError,
    SimulationError,
    StorageFaultError,
)
from ..sim.faults import DiskFaultPlan, FaultPlan
from ..sim.trace import Tracer
from .failure import CrashProbe
from .logging_base import make_hooks_factory
from .recovery import compare_state, replay_failed_node
from .salvage import salvage_log

__all__ = ["ChaosCase", "ChaosReport", "run_chaos_run", "run_chaos_suite"]

#: Default fault rates: high enough that every run sees drops,
#: duplicates, delays, and reordering, low enough that the transport's
#: bounded retry (p**(max_retries+1) residual loss) never gives up on a
#: live peer.
DEFAULT_RATES = {"drop": 0.08, "dup": 0.08, "delay": 0.12, "reorder": 0.12}


@dataclass
class ChaosCase:
    """One (app, protocol, fault schedule, crash instant) verification."""

    app: str
    protocol: str
    seed: int
    crash_node: int
    crash_time: float
    stop_at: int
    live_kill: bool
    ok: bool
    detail: str = ""
    mismatches: List[str] = field(default_factory=list)
    #: Extra CLI flags (scale, cluster size) needed to reproduce.
    repro_extra: str = ""
    #: Salvage-scan summary for this crash instant (disk faults only).
    salvage: str = ""

    def repro_command(self) -> str:
        """One-line command reproducing exactly this case."""
        cmd = (
            f"python -m repro chaos --apps {self.app} "
            f"--protocols {self.protocol} --seed {self.seed} "
            f"--crash-time {self.crash_time!r} --crash-node {self.crash_node}"
        )
        if self.live_kill:
            cmd += " --live-kill"
        if self.repro_extra:
            cmd += f" {self.repro_extra}"
        return cmd


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos suite."""

    cases: List[ChaosCase] = field(default_factory=list)
    #: Injected-fault totals across all runs.
    fault_totals: Dict[str, int] = field(default_factory=dict)
    #: Transport totals (retransmits, dups dropped, ...) across all runs.
    transport_totals: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> List[ChaosCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        return bool(self.cases) and not self.failures

    def merge_totals(self, plan: FaultPlan, transport: Any) -> None:
        for k, v in plan.summary().items():
            self.fault_totals[k] = self.fault_totals.get(k, 0) + v
        if transport is not None and hasattr(transport, "summary"):
            for k, v in transport.summary().items():
                self.transport_totals[k] = self.transport_totals.get(k, 0) + v

    def render(self) -> str:
        lines = [
            f"chaos: {len(self.cases)} cases, "
            f"{len(self.cases) - len(self.failures)} passed, "
            f"{len(self.failures)} failed",
            f"  faults injected: {self.fault_totals}",
            f"  transport: {self.transport_totals}",
        ]
        for c in self.failures:
            lines.append(
                f"  FAIL seed={c.seed} plan=({c.app},{c.protocol}) "
                f"crash=({c.crash_node}@{c.crash_time:.6g}) "
                f"stop_at={c.stop_at}: {c.detail or c.mismatches}"
            )
            lines.append(f"    {c.repro_command()}")
        return "\n".join(lines)


def _case_rng(seed: int) -> random.Random:
    # decorrelated from the FaultPlan's own stream (same seed feeds both)
    return random.Random(seed ^ 0x9E3779B9)


def run_chaos_run(
    app_factory: Callable[[], Any],
    config: ClusterConfig,
    protocol: str,
    seed: int,
    crash_points: int = 5,
    crash_node: Optional[int] = None,
    crash_times: Optional[List[float]] = None,
    live_kill: bool = False,
    rates: Optional[Dict[str, float]] = None,
    disk_rates: Optional[Dict[str, float]] = None,
    sanitize: bool = False,
    app_name: Optional[str] = None,
    repro_extra: str = "",
    tracer: Optional[Tracer] = None,
) -> Tuple[List[ChaosCase], FaultPlan, Any]:
    """One faulted phase-A execution plus its crash-instant recoveries.

    Returns ``(cases, fault_plan, transport)``.  ``crash_times`` (virtual
    seconds) overrides the seeded sampling -- the repro path for a
    reported failure.  With ``live_kill`` the victim is killed at the
    (single) crash time instead of being probed past it.  ``disk_rates``
    (``torn_tail`` / ``write_error`` / ``bitrot``) adds a seeded
    :class:`~repro.sim.faults.DiskFaultPlan`: flushes retry transient
    write errors, each crash instant's durable view goes through the
    salvage scan, and recovery must then be bit-exact over the salvaged
    log *or* fail with a diagnosed error naming the damage -- a silent
    wrong-memory result is the only failure.
    """
    rng = _case_rng(seed)
    rates = dict(rates or DEFAULT_RATES)
    disk_rates = {k: v for k, v in (disk_rates or {}).items() if v > 0}

    def _disk_plan() -> Optional[DiskFaultPlan]:
        # fresh per execution: write-error draws are event-ordered
        return DiskFaultPlan.uniform(seed, **disk_rates) if disk_rates else None

    def _diagnosable(exc: BaseException) -> Optional[BaseException]:
        # errors raised inside spawned sim processes arrive wrapped in
        # SimulationError; walk the cause chain for the storage fault
        while exc is not None:
            if isinstance(exc, (StorageFaultError, RecoveryError,
                                LoggingProtocolError)):
                return exc
            exc = exc.__cause__
        return None
    app = app_factory()
    if app_name is None:
        app_name = str(getattr(app, "name", type(app).__name__)).lower()
    victim = (
        crash_node if crash_node is not None else rng.randrange(config.num_nodes)
    )

    def build(plan: FaultPlan, tracer: Optional[Tracer] = None) -> DsmSystem:
        return DsmSystem(
            app_factory(),
            config,
            make_hooks_factory(protocol),
            tracer=tracer,
            fault_plan=plan,
            disk_fault_plan=_disk_plan(),
        )

    def diagnosed(t: float, stop_at: int, exc: Exception,
                  salvage: str = "") -> ChaosCase:
        # fail-fast with a named cause is a *pass* under disk faults:
        # the contract is bit-exact or loudly refused, never silent
        return ChaosCase(
            app_name, protocol, seed, victim, t, stop_at,
            live_kill, True, f"diagnosed: {exc}", repro_extra=repro_extra,
            salvage=salvage,
        )

    # ---- pilot duration: a kill time must be sampled inside the run --
    kill_time: Optional[float] = None
    if live_kill:
        pilot_plan = FaultPlan.uniform(seed, **rates)
        try:
            pilot = build(pilot_plan).run()
        except (StorageFaultError, SimulationError) as exc:
            cause = _diagnosable(exc)
            if not disk_rates or cause is None:
                raise
            return [diagnosed(0.0, 0, cause)], pilot_plan, None
        kill_time = rng.uniform(0.15, 0.85) * pilot.total_time
        if crash_times:
            kill_time = crash_times[0]

    plan = FaultPlan.uniform(seed, **rates)
    disk_plan = _disk_plan()
    if kill_time is not None:
        plan.kill(victim, kill_time)
    if tracer is None and sanitize:
        tracer = Tracer(enabled=True)
    system_a = DsmSystem(
        app, config, make_hooks_factory(protocol), tracer=tracer,
        fault_plan=plan, disk_fault_plan=disk_plan,
    )
    probe = CrashProbe(victim, capture_all=True)
    system_a.add_probe(probe)
    try:
        result_a = system_a.run()
    except (StorageFaultError, SimulationError) as exc:
        cause = _diagnosable(exc)
        if disk_plan is None or cause is None:
            raise
        return [diagnosed(0.0, 0, cause)], plan, system_a.transport

    cases: List[ChaosCase] = []

    def fail(t: float, stop_at: int, detail: str, mismatches=None) -> ChaosCase:
        return ChaosCase(
            app_name, protocol, seed, victim, t, stop_at,
            live_kill, False, detail, list(mismatches or []),
            repro_extra=repro_extra,
        )

    # the application result itself proves reliable delivery: faults
    # must not change what the program computes.  A live-killed run may
    # still complete when the kill lands after the victim's last
    # contribution (survivors no longer need it) -- then the results
    # must be correct; otherwise the survivors must have stalled.
    if result_a.completed:
        verify = getattr(app, "verify", None)
        if verify is not None and not verify(system_a):
            cases.append(fail(kill_time or 0.0, 0,
                              "faulted run computed wrong results"))
            return cases, plan, system_a.transport
    elif not live_kill:
        cases.append(fail(0.0, 0, "faulted run did not complete"))
        return cases, plan, system_a.transport

    if sanitize and tracer is not None:
        from ..analysis import check_trace

        report = check_trace(tracer)
        if not report.ok:
            cases.append(
                fail(0.0, 0, f"sanitizer: {report.violations[0]}")
            )
            return cases, plan, system_a.transport

    # ---- sample crash instants and verify recovery at each -----------
    log = getattr(system_a.nodes[victim].hooks, "log")
    horizon = kill_time if kill_time is not None else result_a.total_time
    if crash_times:
        instants = list(crash_times)
    elif live_kill:
        instants = [kill_time or 0.0]
    else:
        instants = sorted(rng.uniform(0.0, horizon) for _ in range(crash_points))

    for t in instants:
        seals_done = sum(1 for s in probe.snapshots.values() if s.time <= t)
        view = log.durable_view(t)
        salvage_report = None
        if disk_plan is not None and disk_plan.active:
            view, salvage_report = salvage_log(view)
            # salvage keeps a prefix of the full persistent sequence, so
            # the first unreplayable interval comes straight off its count
            lost = log.first_lost_from(salvage_report.salvaged_count)
        else:
            lost = log.first_lost_interval(t)
        salv = salvage_report.describe() if salvage_report is not None else ""
        stop_at = seals_done if lost is None else min(seals_done, lost)
        if stop_at < 1:
            # nothing recoverable was sealed: recovery degenerates to a
            # restart from the initial checkpoint, trivially bit-exact
            cases.append(
                ChaosCase(app_name, protocol, seed, victim, t, 0,
                          live_kill, True, "restart-from-checkpoint",
                          repro_extra=repro_extra, salvage=salv)
            )
            continue
        try:
            replay, _rt = replay_failed_node(
                app, config, protocol, system_a, victim,
                view, stop_at, salvage=salvage_report,
            )
        except (RecoveryError, LoggingProtocolError, SimulationError) as exc:
            cause = _diagnosable(exc)
            if cause is None:
                raise
            if disk_plan is not None and disk_plan.active:
                cases.append(diagnosed(t, stop_at, cause, salvage=salv))
            else:
                cases.append(fail(t, stop_at, f"replay error: {cause}"))
            continue
        mismatches = compare_state(
            replay, probe.snapshots[stop_at], config.page_size
        )
        cases.append(
            ChaosCase(
                app_name, protocol, seed, victim, t, stop_at,
                live_kill, not mismatches,
                "" if not mismatches else "state mismatch",
                mismatches,
                repro_extra=repro_extra,
                salvage=salv,
            )
        )
    return cases, plan, system_a.transport


def run_chaos_suite(
    app_factories: Dict[str, Callable[[], Any]],
    config: ClusterConfig,
    protocols: Tuple[str, ...] = ("ccl", "ml"),
    seeds: int = 10,
    first_seed: int = 0,
    crash_points: int = 5,
    kill_every: int = 4,
    rates: Optional[Dict[str, float]] = None,
    disk_rates: Optional[Dict[str, float]] = None,
    sanitize: bool = False,
    fail_fast: bool = False,
    repro_extra: str = "",
) -> ChaosReport:
    """The full property suite: apps x protocols x seeds x crash instants.

    Every ``kill_every``-th seed of each (app, protocol) pair becomes a
    live-kill case (victim processes die mid-run, in-flight frames
    discarded); the rest are probe-based and amortise ``crash_points``
    crash instants over one faulted execution.
    """
    report = ChaosReport()
    for app_name, factory in sorted(app_factories.items()):
        for protocol in protocols:
            for i in range(seeds):
                seed = first_seed + i
                live = kill_every > 0 and i % kill_every == kill_every - 1
                cases, plan, transport = run_chaos_run(
                    factory, config, protocol, seed,
                    crash_points=crash_points,
                    live_kill=live,
                    rates=rates,
                    disk_rates=disk_rates,
                    sanitize=sanitize,
                    app_name=app_name,
                    repro_extra=repro_extra,
                )
                report.cases.extend(cases)
                report.merge_totals(plan, transport)
                if fail_fast and report.failures:
                    return report
    return report
