"""Per-process checkpointing (paper Section 3.2).

"A checkpoint consists of all local and shared memory contents, the
state of execution, and all internal data structures used by home-based
SDSM.  The first checkpoint flushes all shared memory pages to stable
storage, and then only those pages that have been modified since the
last checkpoint will be included in a subsequent checkpoint."

:class:`Checkpointer` implements exactly that: a full image first, then
page-granular incremental images, each written to the node's disk with
real sizes.  Checkpoints are taken at interval boundaries every
``every`` sealed intervals (independent checkpointing -- the paper's
logging protocol guarantees bounded rollback without coordination).

Recovery uses a checkpoint by charging its restore read and starting
*timed* replay at the checkpoint's seal index; the preceding intervals
are re-executed data-only at zero simulated cost, which models an
instantaneous process-image restore while keeping the replayed memory
contents real (and testable against the checkpoint snapshot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..dsm.hlrc import HlrcNode
from ..dsm.interval import VectorClock
from ..errors import CheckpointError
from ..memory.page import PageState

__all__ = ["CheckpointMeta", "CheckpointSnapshot", "Checkpointer"]


@dataclass(frozen=True)
class CheckpointMeta:
    """Size/time accounting for one checkpoint."""

    seal: int
    time: float
    nbytes: int
    pages_written: int
    full: bool


class CheckpointSnapshot:
    """The restorable state captured by one checkpoint."""

    def __init__(self, node: HlrcNode, seal: int, nbytes: int):
        self.seal = seal
        self.nbytes = nbytes
        self.memory: np.ndarray = node.memory.snapshot()
        self.vt: VectorClock = node.vt
        self.interval_index: int = node.interval_index
        self.page_states: Dict[int, Tuple[PageState, Optional[VectorClock]]] = {
            p: (node.pagetable.entry(p).state, node.pagetable.entry(p).version)
            for p in range(node.pagetable.npages)
        }


class Checkpointer:
    """Periodic full + incremental checkpoints for one node."""

    #: Bytes of execution state (registers, protocol tables) per checkpoint.
    STATE_BYTES = 4096

    def __init__(self, every: int, on: str = "seals",
                 retention: Optional[int] = None):
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
        if on not in ("seals", "barriers"):
            raise CheckpointError(f"unknown checkpoint trigger {on!r}")
        if retention is not None and retention < 1:
            raise CheckpointError(
                f"checkpoint retention must be >= 1, got {retention}"
            )
        self.every = every
        #: Keep at most this many checkpoints; after each new one the
        #: oldest beyond the depth are retired and the node's log is
        #: truncated below the oldest *retained* seal (checkpoint-driven
        #: log reclamation).  ``None`` = keep everything, never truncate.
        self.retention = retention
        self.retired: List[int] = []
        #: ``"seals"`` = independent checkpointing at every N sealed
        #: intervals (the paper's default; bounded rollback comes from
        #: the logging protocol).  ``"barriers"`` = coordinated
        #: checkpointing at every N completed barrier episodes -- the
        #: global cut is consistent because HLRC acknowledges all diffs
        #: before check-in, so no coherence message crosses a barrier.
        self.on = on
        self._last_image: Optional[np.ndarray] = None
        self._last_barrier_taken = -1
        self.metas: List[CheckpointMeta] = []
        self.snapshots: Dict[int, CheckpointSnapshot] = {}

    # ------------------------------------------------------------------
    def maybe_take(self, node: HlrcNode) -> Generator[Any, Any, None]:
        """Take a checkpoint if the node's seal count hits the period."""
        if self.on != "seals" or node.seal_count % self.every != 0:
            return
        yield from self.take(node)

    def maybe_take_barrier(self, node: HlrcNode) -> Generator[Any, Any, None]:
        """Take a coordinated checkpoint after the N-th barrier episode."""
        if self.on != "barriers":
            return
        episode = node.barrier_episode
        if episode % self.every != 0 or episode == self._last_barrier_taken:
            return
        self._last_barrier_taken = episode
        yield from self.take(node)

    def take(self, node: HlrcNode) -> Generator[Any, Any, None]:
        """Write a checkpoint now (full if first, else incremental)."""
        image = node.memory.snapshot()
        page = node.cfg.page_size
        npages = len(image) // page
        if self._last_image is None:
            pages_written = npages
            full = True
        else:
            old = self._last_image.reshape(npages, page)
            new = image.reshape(npages, page)
            changed = np.any(old != new, axis=1)
            pages_written = int(changed.sum())
            full = False
        nbytes = pages_written * page + self.STATE_BYTES
        t0 = node.sim.now
        yield node.disk.write(nbytes)
        node.stats.charge("checkpoint", node.sim.now - t0)
        node.stats.count("checkpoints")
        node.stats.count("checkpoint_bytes", nbytes)
        self._last_image = image
        self.metas.append(
            CheckpointMeta(node.seal_count, node.sim.now, nbytes, pages_written, full)
        )
        self.snapshots[node.seal_count] = CheckpointSnapshot(
            node, node.seal_count, nbytes
        )
        if self.retention is not None:
            kept = sorted(self.snapshots)
            while len(kept) > self.retention:
                seal = kept.pop(0)
                del self.snapshots[seal]
                self.retired.append(seal)
            log = getattr(node.hooks, "log", None)
            if log is not None:
                # the log below the oldest retained checkpoint can never
                # be replayed again: reclaim those segments
                log.truncate_below(kept[0])

    # ------------------------------------------------------------------
    def latest_before(self, seal: int) -> Optional[CheckpointSnapshot]:
        """The most recent checkpoint taken at or before ``seal``."""
        candidates = [s for s in self.snapshots if s <= seal]
        if not candidates:
            return None
        return self.snapshots[max(candidates)]
