"""Heartbeat-based failure detection.

The paper begins recovery "after a failure is detected" without saying
how; this module supplies the standard answer.  A detector process on a
monitor node pings every peer each period; a node that misses
``misses_allowed`` consecutive heartbeats is declared failed, and the
detection time (crash-to-declaration latency) is recorded.  The
detection latency is the one recovery cost the paper's measurements
exclude, so the experiments here report it separately.

Heartbeats ride the same simulated network as protocol traffic, so a
busy NIC genuinely delays them; the suspicion threshold must absorb
that jitter, which the tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator

from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.events import Signal
from ..sim.network import NetMessage, Network

__all__ = ["Heartbeat", "FailureDetector"]


@dataclass
class Heartbeat:
    """Ping/ack payload (sequence number for matching)."""

    seq: int
    monitor: int

    @property
    def nbytes(self) -> int:
        return 16


class FailureDetector:
    """A ping/ack failure detector running on one monitor node.

    Usage: spawn :meth:`monitor_loop` on the simulator and
    :meth:`responder_loop` on every monitored node.  ``on_failure`` is a
    signal triggered with ``(node, detection_time)`` for the first
    detected failure; :attr:`suspected` accumulates every declaration.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        monitor: int,
        period_s: float = 5e-3,
        misses_allowed: int = 3,
        stop_after_first: bool = True,
    ):
        if period_s <= 0 or misses_allowed < 1:
            raise ConfigError("bad failure-detector parameters")
        self.sim = sim
        self.net = net
        self.monitor = monitor
        self.period_s = period_s
        self.misses_allowed = misses_allowed
        #: Shut the monitor (and its ack sink) down after the first
        #: declaration.  Without this a detector embedded in a finite
        #: simulation would reschedule its heartbeat timer forever and
        #: the run would never drain.
        self.stop_after_first = stop_after_first
        #: node -> virtual time of the failure declaration.
        self.suspected: Dict[int, float] = {}
        #: Triggered once, with (node, time), on the first declaration.
        self.on_failure = Signal("detector.failure")
        self._acked: Dict[int, int] = {}
        self._missed: Dict[int, int] = {}
        self._sink_proc = None

    # ------------------------------------------------------------------
    def monitor_loop(self) -> Generator[Any, Any, None]:
        """Ping every peer each period; declare silent peers failed.

        Acks are consumed by a dedicated sink process (spawned here), so
        the ping loop never leaves a stale mailbox waiter behind.  On a
        node that also runs a DSM server loop the sink's predicate keeps
        the two consumers from stealing each other's messages.
        """
        peers = [i for i in range(self.net.num_nodes) if i != self.monitor]
        for p in peers:
            self._acked[p] = -1
            self._missed[p] = 0
        self._sink_proc = self.sim.spawn(
            self._ack_sink(), name=f"hb-sink{self.monitor}"
        )
        seq = 0
        while True:
            for p in peers:
                if p in self.suspected:
                    continue
                if self._acked[p] < seq - 1:
                    self._missed[p] += 1
                else:
                    self._missed[p] = 0
                if self._missed[p] >= self.misses_allowed:
                    self.suspected[p] = self.sim.now
                    if not self.on_failure.triggered:
                        self.on_failure.trigger((p, self.sim.now))
                    continue
                yield from self.net.send(
                    NetMessage(self.monitor, p, "hb_ping",
                               Heartbeat(seq, self.monitor), 16)
                )
            if self.stop_after_first and self.suspected:
                self._sink_proc.kill()
                return
            yield self.period_s
            seq += 1

    def _ack_sink(self) -> Generator[Any, Any, None]:
        mbox = self.net.mailbox(self.monitor)
        while True:
            msg = yield mbox.get(lambda m: m.kind == "hb_ack")
            node = msg.payload.seq_from
            self._acked[node] = max(self._acked.get(node, -1), msg.payload.seq)

    # ------------------------------------------------------------------
    @staticmethod
    def responder_loop(net: Network, node: int) -> Generator[Any, Any, None]:
        """Answer pings (spawn on every monitored node; dies with it)."""
        mbox = net.mailbox(node)
        while True:
            msg = yield mbox.get(lambda m: m.kind == "hb_ping")
            ack = HeartbeatAck(msg.payload.seq, node)
            net.post(NetMessage(node, msg.payload.monitor, "hb_ack", ack, 16))


@dataclass
class HeartbeatAck:
    """Ack payload: echoes the ping sequence and names the responder."""

    seq: int
    seq_from: int

    @property
    def nbytes(self) -> int:
        return 16
