"""Replay-free failover: promote a home replica instead of re-executing.

The classic recovery path (:mod:`repro.core.recovery`) re-executes the
failed node's program against survivor logs.  With quorum-replicated
homes (:mod:`repro.core.replication`) the crashed node's *home-side*
state already exists on its followers, so recovery becomes **failover**:

1. **detect** -- a heartbeat :class:`~repro.core.detector.FailureDetector`
   on the promotion candidate declares the primary dead;
2. **promote** -- the surviving follower with the freshest mirror claims
   the group in a fencing round (``promote_req``/``promote_ack`` to
   every survivor); the group epoch is bumped so any in-flight mirror of
   the deposed primary is rejected on arrival, and duplicate promotion
   is refused;
3. **metadata replay** -- the mirror covers the primary's home state up
   to apply-event ``upto``; the victim's durable log is scanned
   sequentially from that point and only the *suffix of coherence
   metadata* (update-event records and home-write diff records) is
   replayed onto the mirror.  Home-write diffs travel inside the scanned
   records; update-event records name ``(writer, interval, part)`` and
   the corresponding diffs are re-fetched from the writers' own logs --
   the same write-availability CCL relies on for multi-failure recovery.

No page contents are ever replayed from a checkpoint and no application
code is re-executed: the recovery-time breakdown has **no**
``page_replay`` component, by construction.  The recovered mirror must
be bit-identical (contents *and* versions) to the crash-point snapshot
of the victim's home pages; losing every follower of a group is a
*diagnosed* :class:`~repro.errors.RecoveryError`, never silence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ClusterConfig
from ..dsm.interval import VectorClock
from ..dsm.messages import LogDiffReply, LogDiffRequest, PromoteRequest
from ..dsm.system import DsmSystem, RunResult
from ..errors import RecoveryError
from ..memory import LocalMemory
from ..sim.disk import Disk
from ..sim.engine import Simulator
from ..sim.network import NetMessage, Network
from ..sim.stats import NodeStats
from .detector import FailureDetector
from .failure import CrashProbe, FailureSnapshot
from .logging_base import make_hooks_factory
from .logrecords import OwnDiffLogRecord, UpdateEventLogRecord
from .replication import MirrorState, validate_replication
from .responder import FailedNodeResponder, SurvivorResponder
from .stablelog import StableLog

__all__ = [
    "FailoverResult",
    "choose_candidate",
    "compare_mirror",
    "mirror_at",
    "recover_via_failover",
    "run_failover_experiment",
]


@dataclass
class FailoverResult:
    """Outcome of one failover-recovery experiment."""

    app_name: str
    protocol: str
    failed_node: int
    #: Seal count of the crash-point snapshot the recovery targets.
    at_seal: int
    #: Follower promoted to primary for the victim's home group.
    promoted: int
    #: Group epoch after the fencing round.
    epoch: int
    replication: int
    #: Virtual seconds from failure declaration to recovered home state
    #: (promotion + metadata replay + diff refetch; detection excluded,
    #: reported separately like the classic experiments do).
    recovery_time: float
    #: Crash-to-declaration latency of the heartbeat detector.
    detection_time: float
    #: Time per phase; keys are exactly ``detection``, ``promotion``,
    #: ``meta_replay`` and ``diff_refetch`` -- there is no page replay.
    breakdown: Dict[str, float]
    #: Seal the promoted follower's mirror covered at the crash.
    mirror_seal: int
    #: Metadata log records replayed onto the mirror.
    replayed_events: int
    #: Diffs re-fetched from writers' logs for the replayed events.
    refetched_diffs: int
    verified: bool
    mismatches: List[str]
    replay_stats: NodeStats
    phase_a: RunResult = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        """Failover completed and reproduced the crash-point home state."""
        return self.verified and not self.mismatches


# ======================================================================
# pure helpers (no simulation)
# ======================================================================


def mirror_at(
    system_a: DsmSystem, primary: int, follower: int,
    at_time: Optional[float] = None,
) -> MirrorState:
    """The follower's mirror of ``primary`` as of a crash instant.

    ``at_time=None`` returns (a working copy of) the final mirror.  For
    an arbitrary instant the mirror is rebuilt from the follower's
    journal -- a mirror is a deterministic function of the initial image
    and the applied prefix, so the rebuild is exact.  Always returns a
    copy safe to mutate during recovery.
    """
    live = system_a.nodes[follower].replicator.mirrors[primary]
    st = MirrorState(primary, epoch=live.epoch)
    base = LocalMemory(system_a.space)
    n = system_a.config.num_nodes
    for p in live.frames:
        st.frames[p] = base.page_bytes(p).copy()
        st.versions[p] = VectorClock.zero(n)
    for seal, upto, t, entries in live.journal:
        if at_time is not None and t > at_time:
            break
        st.apply_entries(entries)
        st.seal, st.upto = seal, upto
    return st


def choose_candidate(
    system_a: DsmSystem, failed_node: int, dead: Sequence[int],
    at_time: Optional[float] = None,
) -> int:
    """Deterministic promotion choice: freshest mirror, ties to lowest rank.

    Raises a *diagnosed* :class:`RecoveryError` when the group has no
    surviving follower -- the quorum is lost and failover must refuse
    rather than fabricate state.
    """
    group = system_a.replica_groups.get(failed_node)
    if group is None:
        raise RecoveryError(
            f"node {failed_node} has no replica group (replication is off); "
            "failover recovery requires replication >= 2"
        )
    candidates = group.surviving_followers(dead)
    if not candidates:
        raise RecoveryError(
            f"home group of node {failed_node} lost every replica "
            f"(followers {list(group.followers)} all dead with "
            f"{sorted(set(dead))}); quorum lost -- failover refused, "
            "restore from the durable log via classic replay instead"
        )

    def freshness(f: int) -> Tuple[int, int, int]:
        m = mirror_at(system_a, failed_node, f, at_time)
        return (-m.seal, -m.upto, f)

    return min(candidates, key=freshness)


def _covered_suffix(
    plog: StableLog, upto: int, stop_at: int
) -> Tuple[List[Any], int, int]:
    """The victim's durable metadata suffix the mirror does not cover.

    Returns ``(records, scan_bytes, covered)``: the apply-event records
    (update events, and own-diff records carrying home-write diffs)
    numbered ``upto`` onward whose interval precedes the crash seal, the
    byte count of the sequential log scan that reads them (every record
    from the first replayed one to the end of the covered region -- a
    scan cannot skip the notice/fetch records in between), and the total
    number of covered apply-events in the durable log.
    """
    events: List[Any] = []
    positions: List[int] = []
    for i, rec in enumerate(plog.persistent_records):
        if isinstance(rec, UpdateEventLogRecord) or (
            isinstance(rec, OwnDiffLogRecord) and rec.home_diffs
        ):
            events.append(rec)
            positions.append(i)
    covered = [
        (rec, pos)
        for rec, pos in zip(events, positions)
        if rec.interval < stop_at
    ]
    suffix = covered[upto:]
    if not suffix:
        return [], 0, len(covered)
    first = suffix[0][1]
    scan_bytes = sum(
        rec.nbytes
        for rec in plog.persistent_records[first:]
        if rec.interval < stop_at
    )
    return [rec for rec, _pos in suffix], scan_bytes, len(covered)


def compare_mirror(
    mirror: MirrorState,
    snapshot: FailureSnapshot,
    home_pages: Sequence[int],
    page_size: int,
) -> List[str]:
    """Bit-exact check of the recovered mirror vs the crash snapshot.

    Failover re-homes the crashed node's *home* pages; its cached remote
    copies die with it (their owners re-fault them), so only home pages
    are compared -- contents and versions both.
    """
    mismatches: List[str] = []
    for p in home_pages:
        frame = mirror.frames.get(p)
        if frame is None:
            mismatches.append(f"page {p}: missing from the mirror")
            continue
        lo = p * page_size
        if not np.array_equal(frame, snapshot.memory[lo : lo + page_size]):
            mismatches.append(f"page {p}: contents differ")
        _state, ver = snapshot.page_states[p]
        if mirror.versions[p] != ver:
            mismatches.append(
                f"page {p}: version {mirror.versions[p]} != {ver}"
            )
    return mismatches


# ======================================================================
# the timed phase-B simulation
# ======================================================================


def _promote_responder(
    net: Network, node_id: int, replicator: Any
) -> Generator[Any, Any, None]:
    """Survivor side of the fencing round (spawned per survivor)."""
    from ..dsm.messages import PromoteAck

    mbox = net.mailbox(node_id)
    while True:
        msg = yield mbox.get(lambda m: m.kind == "promote_req")
        req = msg.payload
        ok = True
        if replicator is not None:
            ok = replicator.fence(req.primary, req.epoch)
        ack = PromoteAck(req.primary, node_id, req.epoch, ok)
        net.post(NetMessage(node_id, msg.src, "promote_ack", ack, ack.nbytes))


def recover_via_failover(
    config: ClusterConfig,
    system_a: DsmSystem,
    failed_node: int,
    plog: StableLog,
    stop_at: int,
    dead: Sequence[int] = (),
    at_time: Optional[float] = None,
    detector_period_s: float = 5e-3,
    misses_allowed: int = 3,
) -> Tuple[int, int, MirrorState, Dict[str, float], NodeStats, int, int]:
    """Run the timed failover simulation for one crashed home.

    Returns ``(promoted, epoch, recovered_mirror, breakdown, stats,
    replayed_events, refetched_diffs)``.  ``dead`` lists every node down
    at the crash (the victim plus any zone co-victims); ``at_time``
    selects the mirror as of an arbitrary crash instant (None = the
    final mirror, the seal-aligned experiments).  Raises a diagnosed
    :class:`RecoveryError` when the victim's group lost every follower.
    """
    dead = tuple(sorted(set(dead) | {failed_node}))
    promoted = choose_candidate(system_a, failed_node, dead, at_time)
    group = system_a.replica_groups[failed_node]
    mirror = mirror_at(system_a, failed_node, promoted, at_time)
    # the mirror can be *ahead* of stop_at when log flushes lag the
    # replication traffic at the crash instant: the recovered state is
    # then the (newer, still seal-consistent) mirror itself and there is
    # nothing to replay.  Behind stop_at, the durable metadata suffix
    # closes the gap.
    target_seal = max(stop_at, mirror.seal)
    suffix, scan_bytes, covered = _covered_suffix(
        plog, mirror.upto, target_seal
    )
    if mirror.seal < stop_at and covered < mirror.upto:
        # a lagging mirror whose durable log backs fewer apply-events
        # than the mirror already covers can only mean the log lost
        # records the quorum acknowledged -- diagnose, never guess
        raise RecoveryError(
            f"mirror of home {failed_node} claims {mirror.upto} "
            f"apply-events but the durable log backs only {covered} "
            f"before seal {target_seal}; the log lost records the "
            "quorum acknowledged"
        )

    sim_b = Simulator()
    net_b = Network(sim_b, config.network, config.num_nodes)
    disks_b = [
        Disk(sim_b, config.disk, f"rdisk{i}") for i in range(config.num_nodes)
    ]
    stats = NodeStats(promoted)
    survivors = [i for i in range(config.num_nodes) if i not in dead]
    ckpt_image = LocalMemory(system_a.space)
    responders: Dict[int, Any] = {}
    for node in system_a.nodes:
        if node.id == promoted:
            continue
        if node.id in dead:
            log = getattr(node.hooks, "log", None)
            if log is not None:
                responders[node.id] = FailedNodeResponder(
                    node, ckpt_image, log
                )
        else:
            responders[node.id] = SurvivorResponder(node, ckpt_image)
    responder_procs = [
        sim_b.spawn(r.loop(net_b, disks_b[r.id]), name=f"responder{r.id}")
        for r in responders.values()
    ]
    hb_procs = [
        sim_b.spawn(
            FailureDetector.responder_loop(net_b, s), name=f"hb{s}"
        )
        for s in survivors
        if s != promoted
    ]
    fence_procs = [
        sim_b.spawn(
            _promote_responder(
                net_b, s, getattr(system_a.nodes[s], "replicator", None)
            ),
            name=f"fence{s}",
        )
        for s in survivors
        if s != promoted
    ]
    detector = FailureDetector(
        sim_b, net_b, promoted,
        period_s=detector_period_s, misses_allowed=misses_allowed,
    )
    monitor_proc = sim_b.spawn(detector.monitor_loop(), name="hb-monitor")

    breakdown = {
        "detection": 0.0, "promotion": 0.0,
        "meta_replay": 0.0, "diff_refetch": 0.0,
    }
    counts = {"replayed": 0, "refetched": 0}
    done = {"ok": False}
    cpu = config.cpu

    def failover_main() -> Generator[Any, Any, None]:
        mbox = net_b.mailbox(promoted)
        # -- 1. detection ----------------------------------------------
        yield detector.on_failure
        breakdown["detection"] = sim_b.now
        stats.charge("detection", sim_b.now)
        # -- 2. promotion fencing round --------------------------------
        t0 = sim_b.now
        claim_epoch = group.epoch + 1
        fence_targets = [s for s in survivors if s != promoted]
        for s in fence_targets:
            req = PromoteRequest(failed_node, promoted, claim_epoch)
            yield from net_b.send(
                NetMessage(promoted, s, "promote_req", req, req.nbytes)
            )
        acks = []
        while len(acks) < len(fence_targets):
            msg = yield mbox.get(lambda m: m.kind == "promote_ack")
            acks.append(msg.payload)
        if not all(a.accepted for a in acks):
            deniers = [a.follower for a in acks if not a.accepted]
            raise RecoveryError(
                f"promotion of node {promoted} for home {failed_node} at "
                f"epoch {claim_epoch} was fenced by {deniers}: a newer "
                "epoch exists -- duplicate failover refused"
            )
        group.promote(promoted, dead)
        mirror.epoch = group.epoch
        breakdown["promotion"] = sim_b.now - t0
        stats.charge("promotion", sim_b.now - t0)
        # -- 3. metadata replay: scan the victim's durable log suffix --
        t0 = sim_b.now
        if scan_bytes:
            # the victim's rebooted disk serves a cold sequential scan,
            # then the metadata crosses the wire to the promoted node
            yield disks_b[failed_node].read_seq(scan_bytes)
            yield from net_b.send(
                NetMessage(failed_node, promoted, "logdiff_reply",
                           LogDiffReply([]), scan_bytes)
            )
            yield mbox.get(lambda m: m.kind == "logdiff_reply")
        breakdown["meta_replay"] = sim_b.now - t0
        stats.charge("meta_replay", sim_b.now - t0)
        # -- 4. re-fetch update-event diffs from the writers' logs -----
        t0 = sim_b.now
        wants: Dict[int, List[Tuple[int, int, int]]] = {}
        for rec in suffix:
            if isinstance(rec, UpdateEventLogRecord):
                for page in rec.pages:
                    wants.setdefault(rec.writer, []).append(
                        (page, rec.writer_index, rec.part)
                    )
        fetched: Dict[Tuple[int, int, int, int], Tuple[Any, VectorClock]] = {}
        outstanding = 0
        for writer, triples in sorted(wants.items()):
            if writer == promoted:
                # the promoted follower wrote some suffix events itself;
                # its own log is local and warm -- no network round trip
                own_log = getattr(system_a.nodes[promoted].hooks, "log", None)
                if own_log is None:
                    raise RecoveryError(
                        f"promoted node {promoted} keeps no log to serve "
                        "its own suffix diffs from"
                    )
                read_bytes = 0
                for page, idx, part in triples:
                    diff, vt = own_log.find_own_diff(page, idx, part)
                    fetched[(writer, idx, part, page)] = (diff.copy(), vt)
                    counts["refetched"] += 1
                    read_bytes += diff.nbytes
                if read_bytes:
                    yield disks_b[promoted].read_cached(read_bytes)
                continue
            if writer not in responders:
                raise RecoveryError(
                    f"update events name writer {writer} but no responder "
                    "serves its log; cannot re-fetch its diffs"
                )
            req = LogDiffRequest(promoted, wants=triples)
            yield from net_b.send(
                NetMessage(promoted, writer, "logdiff_req", req, req.nbytes)
            )
            outstanding += 1
        while outstanding:
            msg = yield mbox.get(lambda m: m.kind == "logdiff_reply")
            for diff, w, idx, part, vt in msg.payload.entries:
                fetched[(w, idx, part, diff.page)] = (diff, vt)
                counts["refetched"] += 1
            outstanding -= 1
        # apply the suffix in log-append (= home-apply) order
        apply_bytes = 0
        for rec in suffix:
            if isinstance(rec, OwnDiffLogRecord):
                apply_bytes += mirror.apply_entries(
                    [(failed_node, rec.vt_index, 0, rec.vt,
                      list(rec.home_diffs))]
                )
            else:
                diffs, vt = [], None
                for page in rec.pages:
                    key = (rec.writer, rec.writer_index, rec.part, page)
                    if key not in fetched:
                        raise RecoveryError(
                            f"writer {rec.writer} served no diff for page "
                            f"{page} interval {rec.writer_index} part "
                            f"{rec.part}; its log is incomplete"
                        )
                    d, vt = fetched[key]
                    diffs.append(d)
                apply_bytes += mirror.apply_entries(
                    [(rec.writer, rec.writer_index, rec.part, vt, diffs)]
                )
            counts["replayed"] += 1
        if apply_bytes:
            yield cpu.diff_apply_per_byte_s * apply_bytes
        mirror.seal, mirror.upto = target_seal, mirror.upto + len(suffix)
        breakdown["diff_refetch"] = sim_b.now - t0
        stats.charge("diff_refetch", sim_b.now - t0)
        done["ok"] = True
        monitor_proc.kill()
        for proc in responder_procs + hb_procs + fence_procs:
            proc.kill()

    sim_b.spawn(failover_main(), name=f"failover{promoted}")
    sim_b.run()
    if not done["ok"]:
        raise RecoveryError(
            f"failover of home {failed_node} onto node {promoted} stalled "
            "before the mirror was recovered"
        )
    system_a.nodes[promoted].replicator.failovers += 1
    return (
        promoted, group.epoch, mirror, breakdown, stats,
        counts["replayed"], counts["refetched"],
    )


# ======================================================================
# the experiment driver
# ======================================================================


def run_failover_experiment(
    app,
    config: Optional[ClusterConfig] = None,
    replication: int = 2,
    failed_node: int = 0,
    verify: bool = True,
    detector_period_s: float = 5e-3,
    misses_allowed: int = 3,
) -> FailoverResult:
    """Phase A (failure-free, replicated, probed) + timed failover.

    The victim crashes at its final interval seal, the paper's setting
    for the classic experiments, so the recovered mirror is checked
    against the maximum-work crash point.  Requires ``replication >= 2``
    -- with a single copy there is no replica to promote, which is a
    diagnosed error rather than a silent fallback to replay.
    """
    config = config or ClusterConfig.ultra5()
    validate_replication(replication, config.num_nodes)
    if replication < 2:
        raise RecoveryError(
            "failover recovery requires replication >= 2 (got "
            f"{replication}): with a single copy there is no replica to "
            "promote; use the classic replay schemes instead"
        )
    if not (0 <= failed_node < config.num_nodes):
        raise RecoveryError(
            f"failed_node {failed_node} is not a valid rank; the cluster "
            f"has nodes 0..{config.num_nodes - 1}"
        )

    system_a = DsmSystem(
        app, config, make_hooks_factory("failover"), replication=replication
    )
    probe = CrashProbe(failed_node)
    system_a.add_probe(probe)
    result_a = system_a.run()
    probe.finalize()
    snapshot = probe.snapshot
    if snapshot is None:
        raise RecoveryError(
            f"node {failed_node} never sealed an interval; nothing to recover"
        )
    plog = getattr(system_a.nodes[failed_node].hooks, "log")

    promoted, epoch, mirror, breakdown, stats, replayed, refetched = (
        recover_via_failover(
            config, system_a, failed_node, plog, snapshot.seal_count,
            detector_period_s=detector_period_s,
            misses_allowed=misses_allowed,
        )
    )

    mismatches: List[str] = []
    if verify:
        home_pages = [
            p for p, h in enumerate(system_a.homes) if h == failed_node
        ]
        mismatches = compare_mirror(
            mirror, snapshot, home_pages, config.page_size
        )
    mirror_seal = mirror_at(system_a, failed_node, promoted).seal
    return FailoverResult(
        app_name=getattr(app, "name", type(app).__name__),
        protocol="failover",
        failed_node=failed_node,
        at_seal=snapshot.seal_count,
        promoted=promoted,
        epoch=epoch,
        replication=replication,
        recovery_time=(
            breakdown["promotion"] + breakdown["meta_replay"]
            + breakdown["diff_refetch"]
        ),
        detection_time=breakdown["detection"],
        breakdown=dict(breakdown),
        mirror_seal=mirror_seal,
        replayed_events=replayed,
        refetched_diffs=refetched,
        verified=verify,
        mismatches=mismatches,
        replay_stats=stats,
        phase_a=result_a,
    )
