"""Failure specification and crash-point capture.

The paper's failure model (Section 3.2, Figure 1b): a node crashes "a
certain time after the volatile logs of this interval are flushed to
the local disk, but before the next checkpoint is created".  We model
the crash point as the completion of the node's ``at_seal``-th
interval-ending synchronisation operation, at which the just-sealed log
bundle -- including any update events that raced in during the seal --
is durable (:meth:`~repro.core.stablelog.StableLog.force_seal`).

Because recovery is measured in a separate replay simulation (phase B),
the failure-free run (phase A) is never actually aborted; the
:class:`CrashProbe` records a :class:`FailureSnapshot` of the victim's
memory image, page-table state, and vector clock at the crash point,
against which the recovered state is verified bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dsm.hlrc import HlrcNode
from ..dsm.interval import VectorClock
from ..memory.page import PageState

__all__ = ["FailureSpec", "FailureSnapshot", "CrashProbe"]


@dataclass(frozen=True)
class FailureSpec:
    """Which node crashes, and after how many sealed intervals."""

    node: int
    at_seal: int

    def __post_init__(self) -> None:
        if self.node < 0 or self.at_seal < 1:
            raise ValueError(f"bad failure spec: {self}")


class FailureSnapshot:
    """The victim's externally-visible state at the crash point."""

    def __init__(self, node: HlrcNode, seal_count: int):
        self.node_id = node.id
        self.seal_count = seal_count
        self.time = node.sim.now
        self.memory: np.ndarray = node.memory.snapshot()
        self.vt: VectorClock = node.vt
        self.interval_index = node.interval_index
        #: page -> (state, version) at the crash point.
        self.page_states: Dict[int, Tuple[PageState, Optional[VectorClock]]] = {}
        for p in range(node.pagetable.npages):
            e = node.pagetable.entry(p)
            self.page_states[p] = (e.state, e.version)


class CrashProbe:
    """A probe capturing the crash-point snapshot during phase A.

    With ``at_seal`` set, the snapshot is taken exactly once; with
    ``at_seal=None`` every seal overwrites the snapshot, so after the
    run it reflects the victim's *last* interval -- the default failure
    point of the recovery experiments (a crash near the end of the run,
    where recovery has the most to replay).
    """

    def __init__(self, node: int, at_seal: Optional[int] = None):
        self.node = node
        self.at_seal = at_seal
        self.snapshot: Optional[FailureSnapshot] = None

    def __call__(self, node: HlrcNode, seal_count: int) -> None:
        if node.id != self.node:
            return
        if self.at_seal is not None and seal_count != self.at_seal:
            return
        log = getattr(node.hooks, "log", None)
        if log is not None:
            log.force_seal()
        self.snapshot = FailureSnapshot(node, seal_count)
