"""Failure specification and crash-point capture.

The paper's failure model (Section 3.2, Figure 1b): a node crashes "a
certain time after the volatile logs of this interval are flushed to
the local disk, but before the next checkpoint is created".  We model
the crash point as the completion of the node's ``at_seal``-th
interval-ending synchronisation operation, at which the just-sealed log
bundle -- including any update events that raced in during the seal --
is durable (:meth:`~repro.core.stablelog.StableLog.force_seal`).

Because recovery is measured in a separate replay simulation (phase B),
the failure-free run (phase A) is never actually aborted; the
:class:`CrashProbe` records a :class:`FailureSnapshot` of the victim's
memory image, page-table state, and vector clock at the crash point,
against which the recovered state is verified bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dsm.hlrc import HlrcNode
from ..dsm.interval import VectorClock
from ..memory.page import PageState

__all__ = ["FailureSpec", "FailureSnapshot", "CrashProbe"]


@dataclass(frozen=True)
class FailureSpec:
    """Which node crashes, and after how many sealed intervals."""

    node: int
    at_seal: int

    def __post_init__(self) -> None:
        if self.node < 0 or self.at_seal < 1:
            raise ValueError(f"bad failure spec: {self}")

    def validate(self, num_nodes: int) -> None:
        """Fail fast on a victim outside the cluster.

        Without this check a bad ``node`` only surfaces after a full
        phase-A run, as a generic "never reached seal" recovery error.
        """
        if not (0 <= self.node < num_nodes):
            raise ValueError(
                f"failure spec names node {self.node}, but the cluster has "
                f"only nodes 0..{num_nodes - 1}"
            )


class FailureSnapshot:
    """The victim's externally-visible state at the crash point."""

    def __init__(self, node: HlrcNode, seal_count: int):
        self.node_id = node.id
        self.seal_count = seal_count
        self.time = node.sim.now
        self.memory: np.ndarray = node.memory.snapshot()
        self.vt: VectorClock = node.vt
        self.interval_index = node.interval_index
        #: page -> (state, version) at the crash point.
        self.page_states: Dict[int, Tuple[PageState, Optional[VectorClock]]] = {}
        for p in range(node.pagetable.npages):
            e = node.pagetable.entry(p)
            self.page_states[p] = (e.state, e.version)


class CrashProbe:
    """A probe capturing the crash-point snapshot during phase A.

    With ``at_seal`` set, the snapshot is taken exactly once; with
    ``at_seal=None`` every seal overwrites the snapshot, so after the
    run it reflects the victim's *last* interval -- the default failure
    point of the recovery experiments (a crash near the end of the run,
    where recovery has the most to replay).  ``capture_all=True``
    additionally retains every seal's snapshot in :attr:`snapshots`,
    which lets one phase-A run serve many crash instants (the chaos
    suite's amortisation).

    Observing is side-effect-free.  The paper's crash-point seal -- the
    volatile tail of the crash interval is considered flushed -- is
    applied exactly once by :meth:`finalize`, after the run, and only
    to the records that were volatile at the chosen crash point.
    Earlier revisions force-sealed inside the probe, which with
    ``at_seal=None`` zero-cost-persisted *every* interval's tail and
    biased the victim's flush/log-size statistics.
    """

    def __init__(
        self,
        node: int,
        at_seal: Optional[int] = None,
        capture_all: bool = False,
    ):
        self.node = node
        self.at_seal = at_seal
        self.capture_all = capture_all
        self.snapshot: Optional[FailureSnapshot] = None
        #: seal_count -> snapshot at that seal (``capture_all`` mode).
        self.snapshots: Dict[int, FailureSnapshot] = {}
        self._log = None
        self._volatile_ids: Tuple[int, ...] = ()
        self._finalized = False

    def __call__(self, node: HlrcNode, seal_count: int) -> None:
        if node.id != self.node:
            return
        if self.capture_all:
            self.snapshots[seal_count] = FailureSnapshot(node, seal_count)
        if self.at_seal is not None and seal_count != self.at_seal:
            return
        self.snapshot = FailureSnapshot(node, seal_count)
        self._log = getattr(node.hooks, "log", None)
        if self._log is not None:
            # remember the crash interval's volatile tail by identity;
            # finalize() seals whatever of it a later natural flush has
            # not already persisted
            self._volatile_ids = tuple(id(r) for r in self._log._volatile)

    def finalize(self) -> None:
        """Apply the crash point's seal effect, once, after phase A.

        Records appended *after* the crash point stay volatile -- a
        crashed node never wrote them -- and records the tail shared
        with a completed natural flush are already persistent, in which
        case this is a no-op.
        """
        if self._finalized or self._log is None or self.snapshot is None:
            return
        self._finalized = True
        ids = set(self._volatile_ids)
        chosen = [r for r in self._log._volatile if id(r) in ids]
        if chosen:
            self._log.seal_records(chosen)
