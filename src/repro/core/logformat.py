"""On-disk framing for :class:`~repro.core.stablelog.StableLog` records.

Every log record is serialized as a *frame*::

    u8  type tag | u8 flags | u16 window | u32 interval
    u32 payload length | u32 CRC32(payload)
    payload bytes

and frames are grouped into per-flush *segments*::

    u32 magic | u32 segment seq | u32 record count | u32 reserved
    frame*

The frame header is the integrity unit: each payload carries its own
CRC32, so a latent bit flip quarantines one record (and, because
replay needs a causally complete prefix, everything after it) rather
than the whole segment.  The length prefix makes frames
self-delimiting, which is what lets salvage decode the longest valid
prefix of a torn segment at byte granularity.

Byte accounting everywhere in the simulator (``bytes_flushed``,
Table-2 log sizes, recovery read charges) is derived from this
encoding via ``LogRecord.nbytes`` -- :func:`encode_record` asserts the
two agree, so the sizes the harness reports are the sizes a real disk
would see, headers and checksums included.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

import numpy as np

from ..dsm.interval import IntervalRecord, VectorClock
from ..errors import LogFormatError
from ..memory.diff import (
    DIFF_HEADER_BYTES,
    RUN_HEADER_BYTES,
    Diff,
    decode_diff,
    encode_diff,
)
from .logrecords import (
    FRAME_HEADER_BYTES,
    FetchLogRecord,
    IncomingDiffLogRecord,
    LogRecord,
    ModeSwitchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
)

__all__ = [
    "FRAME_HEADER_BYTES",
    "SEGMENT_HEADER_BYTES",
    "SEGMENT_MAGIC",
    "TYPE_TAGS",
    "encode_record",
    "encode_record_into",
    "decode_record",
    "encode_segment",
    "decode_segment",
]

#: type u8 | flags u8 | window u16 | interval u32 | payload_len u32 | crc u32
_FRAME = struct.Struct("<BBHIII")
assert _FRAME.size == FRAME_HEADER_BYTES
#: The header minus the trailing CRC word (patched in after the fact).
_FRAME12 = struct.Struct("<BBHII")
_FRAME_BLANK = bytes(FRAME_HEADER_BYTES)

#: magic u32 | seq u32 | nrecords u32 | reserved u32
_SEGHDR = struct.Struct("<IIII")
SEGMENT_HEADER_BYTES = _SEGHDR.size
SEGMENT_MAGIC = 0x53454731  # "SEG1"

TYPE_TAGS = {
    NoticeLogRecord: 1,
    FetchLogRecord: 2,
    PageCopyLogRecord: 3,
    UpdateEventLogRecord: 4,
    IncomingDiffLogRecord: 5,
    OwnDiffLogRecord: 6,
    ModeSwitchLogRecord: 7,
}
_BY_TAG = {tag: cls for cls, tag in TYPE_TAGS.items()}

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_NONE_VT = 0xFFFFFFFF


# ----------------------------------------------------------------------
# field codecs
# ----------------------------------------------------------------------
def _enc_vt(out: bytearray, vt: Optional[VectorClock]) -> None:
    """``u32 count`` (0xFFFFFFFF = None) + ``count`` u32 components."""
    if vt is None:
        out += _U32.pack(_NONE_VT)
        return
    out += _U32.pack(len(vt))
    out += struct.pack(f"<{len(vt)}I", *vt.as_tuple())


def _dec_vt(buf: bytes, off: int) -> Tuple[Optional[VectorClock], int]:
    (count,) = _U32.unpack_from(buf, off)
    off += 4
    if count == _NONE_VT:
        return None, off
    vals = struct.unpack_from(f"<{count}I", buf, off)
    return VectorClock(vals), off + 4 * count


def _enc_diff(out: bytearray, d: Diff) -> None:
    # encode_diff returns a packed uint8 ndarray; appending its .data
    # memoryview copies once into ``out`` (no .tobytes() intermediate;
    # a bare ``out += ndarray`` would dispatch to numpy broadcasting).
    out += encode_diff(d).data


def _dec_diff(buf: bytes, off: int) -> Tuple[Diff, int]:
    """Decode one self-delimiting packed diff starting at ``off``."""
    if len(buf) - off < DIFF_HEADER_BYTES:
        raise LogFormatError("truncated diff header")
    _page, wc, rc, _flags = struct.unpack_from("<IIII", buf, off)
    size = DIFF_HEADER_BYTES + RUN_HEADER_BYTES * rc + 4 * wc
    if len(buf) - off < size:
        raise LogFormatError("truncated diff body")
    # .copy(): decode_diff keeps zero-copy views into its input, but the
    # frame buffer is transient
    arr = np.frombuffer(buf, dtype=np.uint8, count=size, offset=off).copy()
    return decode_diff(arr), off + size


# ----------------------------------------------------------------------
# payload codecs, one per record type
# ----------------------------------------------------------------------
def _payload_notice(out: bytearray, r: NoticeLogRecord) -> None:
    out += _U32.pack(len(r.records))
    for ir in r.records:
        out += struct.pack("<iiI", ir.node, ir.index, len(ir.pages))
        _enc_vt(out, ir.vt)
        out += struct.pack(f"<{len(ir.pages)}I", *ir.pages)


def _parse_notice(rec: NoticeLogRecord, buf: bytes) -> None:
    (count,) = _U32.unpack_from(buf, 0)
    off = 4
    for _ in range(count):
        node, index, npages = struct.unpack_from("<iiI", buf, off)
        off += 12
        vt, off = _dec_vt(buf, off)
        pages = struct.unpack_from(f"<{npages}I", buf, off)
        off += 4 * npages
        assert vt is not None
        rec.records.append(IntervalRecord(node, index, vt, tuple(pages)))


def _payload_fetch(out: bytearray, r: FetchLogRecord) -> None:
    out += _I32.pack(r.page)
    _enc_vt(out, r.version)


def _parse_fetch(rec: FetchLogRecord, buf: bytes) -> None:
    (rec.page,) = _I32.unpack_from(buf, 0)
    rec.version, _ = _dec_vt(buf, 4)


def _payload_pagecopy(out: bytearray, r: PageCopyLogRecord) -> None:
    out += _I32.pack(r.page)
    _enc_vt(out, r.version)
    if r.contents is None:
        out += _U32.pack(0)
    else:
        # page image appended via its memoryview: one copy into the
        # frame, no intermediate bytes object
        out += _U32.pack(len(r.contents))
        out += memoryview(r.contents)


def _parse_pagecopy(rec: PageCopyLogRecord, buf: bytes) -> None:
    (rec.page,) = _I32.unpack_from(buf, 0)
    rec.version, off = _dec_vt(buf, 4)
    (n,) = _U32.unpack_from(buf, off)
    off += 4
    if n:
        rec.contents = np.frombuffer(buf, np.uint8, count=n, offset=off).copy()


def _payload_event(out: bytearray, r: UpdateEventLogRecord) -> None:
    out += struct.pack("<iiiI", r.writer, r.writer_index, r.part, len(r.pages))
    out += struct.pack(f"<{len(r.pages)}I", *r.pages)


def _parse_event(rec: UpdateEventLogRecord, buf: bytes) -> None:
    rec.writer, rec.writer_index, rec.part, npages = struct.unpack_from(
        "<iiiI", buf, 0
    )
    rec.pages = tuple(struct.unpack_from(f"<{npages}I", buf, 16))


def _payload_incoming(out: bytearray, r: IncomingDiffLogRecord) -> None:
    out += struct.pack("<iiI", r.writer, r.writer_index, len(r.diffs))
    _enc_vt(out, r.vt)
    for d in r.diffs:
        _enc_diff(out, d)


def _parse_incoming(rec: IncomingDiffLogRecord, buf: bytes) -> None:
    rec.writer, rec.writer_index, ndiffs = struct.unpack_from("<iiI", buf, 0)
    rec.vt, off = _dec_vt(buf, 12)
    for _ in range(ndiffs):
        d, off = _dec_diff(buf, off)
        rec.diffs.append(d)


def _payload_owndiff(out: bytearray, r: OwnDiffLogRecord) -> None:
    out += struct.pack(
        "<iIII", r.vt_index, len(r.diffs), len(r.home_diffs), len(r.early)
    )
    _enc_vt(out, r.vt)
    for d in r.diffs:
        _enc_diff(out, d)
    for d in r.home_diffs:
        _enc_diff(out, d)
    for part, d, evt in r.early:
        out += _I32.pack(part)
        _enc_diff(out, d)
        _enc_vt(out, evt)


def _parse_owndiff(rec: OwnDiffLogRecord, buf: bytes) -> None:
    rec.vt_index, nd, nh, ne = struct.unpack_from("<iIII", buf, 0)
    rec.vt, off = _dec_vt(buf, 16)
    for _ in range(nd):
        d, off = _dec_diff(buf, off)
        rec.diffs.append(d)
    for _ in range(nh):
        d, off = _dec_diff(buf, off)
        rec.home_diffs.append(d)
    for _ in range(ne):
        (part,) = _I32.unpack_from(buf, off)
        off += 4
        d, off = _dec_diff(buf, off)
        evt, off = _dec_vt(buf, off)
        assert evt is not None
        rec.early.append((part, d, evt))


#: Wire codes for the adaptive protocol's logging modes ("" marks the
#: absent previous mode of the bind-time record).
_MODE_CODES = {"": 0, "ml": 1, "ccl": 2}
_MODE_NAMES = {code: name for name, code in _MODE_CODES.items()}
_MODESWITCH = struct.Struct("<BBHdd")


def _payload_modeswitch(out: bytearray, r: ModeSwitchLogRecord) -> None:
    out += _MODESWITCH.pack(
        _MODE_CODES[r.mode],
        _MODE_CODES[r.prev_mode],
        0,
        r.est_replay_ml,
        r.est_replay_ccl,
    )


def _parse_modeswitch(rec: ModeSwitchLogRecord, buf: bytes) -> None:
    mode, prev, _pad, rec.est_replay_ml, rec.est_replay_ccl = (
        _MODESWITCH.unpack_from(buf, 0)
    )
    if mode not in _MODE_NAMES or prev not in _MODE_NAMES:
        raise LogFormatError(
            f"mode-switch record names unknown mode code {mode}/{prev}"
        )
    rec.mode = _MODE_NAMES[mode]
    rec.prev_mode = _MODE_NAMES[prev]


_ENCODERS = {
    NoticeLogRecord: _payload_notice,
    FetchLogRecord: _payload_fetch,
    PageCopyLogRecord: _payload_pagecopy,
    UpdateEventLogRecord: _payload_event,
    IncomingDiffLogRecord: _payload_incoming,
    OwnDiffLogRecord: _payload_owndiff,
    ModeSwitchLogRecord: _payload_modeswitch,
}
_PARSERS = {
    1: _parse_notice,
    2: _parse_fetch,
    3: _parse_pagecopy,
    4: _parse_event,
    5: _parse_incoming,
    6: _parse_owndiff,
    7: _parse_modeswitch,
}


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_record_into(out: bytearray, rec: LogRecord) -> None:
    """Append one framed record to ``out`` with no intermediate joins.

    The payload is written directly into ``out`` (page images and
    packed diffs copy once, through the buffer protocol); the CRC is
    then computed over memoryviews of the in-place header prefix and
    payload and patched into the reserved header slot.

    The CRC covers the header prefix *and* the payload, so a bit flip
    anywhere in the frame (a retagged type, a shifted interval, a
    damaged diff word) is detected rather than silently replayed.
    """
    cls = type(rec)
    tag = TYPE_TAGS[cls]
    assert rec.window < 0x10000, f"window tag {rec.window} overflows u16"
    hdr = len(out)
    out += _FRAME_BLANK
    start = hdr + FRAME_HEADER_BYTES
    _ENCODERS[cls](out, rec)
    plen = len(out) - start
    assert plen == rec.nbytes - FRAME_HEADER_BYTES, (
        f"{cls.__name__}: encoded {plen} payload bytes but "
        f"nbytes promises {rec.nbytes - FRAME_HEADER_BYTES}"
    )
    _FRAME12.pack_into(out, hdr, tag, 0, rec.window, rec.interval, plen)
    view = memoryview(out)
    crc = zlib.crc32(view[start:], zlib.crc32(view[hdr:hdr + 12])) & 0xFFFFFFFF
    view.release()
    _U32.pack_into(out, hdr + 12, crc)


def encode_record(rec: LogRecord) -> bytes:
    """Serialize one record as a framed byte string."""
    out = bytearray()
    encode_record_into(out, rec)
    return bytes(out)


def decode_record(buf: bytes, off: int = 0) -> Tuple[LogRecord, int]:
    """Decode one frame at ``off``; returns ``(record, next_offset)``.

    Raises :class:`~repro.errors.LogFormatError` on a short frame, an
    unknown type tag, or a CRC mismatch.
    """
    remaining = len(buf) - off
    if remaining < FRAME_HEADER_BYTES:
        raise LogFormatError(
            f"truncated frame header: {remaining} bytes at offset {off}"
        )
    tag, _flags, window, interval, plen, crc = _FRAME.unpack_from(buf, off)
    if tag not in _PARSERS:
        raise LogFormatError(f"unknown record type tag {tag} at offset {off}")
    if plen > remaining - FRAME_HEADER_BYTES:
        raise LogFormatError(
            f"frame payload length {plen} exceeds remaining "
            f"{remaining - FRAME_HEADER_BYTES} bytes at offset {off}"
        )
    start = off + FRAME_HEADER_BYTES
    view = memoryview(buf)
    payload = view[start:start + plen]
    prefix_crc = zlib.crc32(view[off:off + 12])
    if zlib.crc32(payload, prefix_crc) & 0xFFFFFFFF != crc:
        raise LogFormatError(
            f"CRC mismatch in type-{tag} frame at offset {off}"
        )
    rec = _BY_TAG[tag](interval=interval, window=window)
    _PARSERS[tag](rec, payload)
    end = start + plen
    if rec.nbytes != end - off:
        raise LogFormatError(
            f"frame at offset {off} decoded to {end - off} bytes but the "
            f"record accounts for {rec.nbytes}"
        )
    return rec, end


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------
def encode_segment(seq: int, records: List[LogRecord]) -> bytes:
    """Serialize one per-flush segment (header + framed records).

    Accumulates the whole segment in one growable bytearray -- the
    flush path performs no per-record bytes joins.
    """
    out = bytearray(_SEGHDR.pack(SEGMENT_MAGIC, seq, len(records), 0))
    for r in records:
        encode_record_into(out, r)
    return bytes(out)


def decode_segment(
    data: bytes,
) -> Tuple[List[LogRecord], int, Optional[str]]:
    """Decode the longest valid prefix of a segment's frames.

    Returns ``(records, consumed_bytes, error)`` where ``error`` is
    ``None`` only if the header was sound and every declared frame
    decoded cleanly.  A torn or corrupt tail yields the records decoded
    before the damage -- exactly what the salvage scan keeps.
    """
    if len(data) < SEGMENT_HEADER_BYTES:
        return [], 0, f"truncated segment header: {len(data)} bytes"
    magic, seq, nrecords, _reserved = _SEGHDR.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        return [], 0, f"bad segment magic {magic:#010x} (seq field {seq})"
    records: List[LogRecord] = []
    off = SEGMENT_HEADER_BYTES
    for i in range(nrecords):
        try:
            rec, off = decode_record(data, off)
        except LogFormatError as exc:
            return records, off, f"frame {i}/{nrecords} of seq {seq}: {exc}"
        records.append(rec)
    if off != len(data):
        return records, off, (
            f"segment seq {seq}: {len(data) - off} trailing bytes after "
            f"{nrecords} frames"
        )
    return records, off, None
