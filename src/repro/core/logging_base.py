"""Logging-protocol registry and factories.

Re-exports the hook interface from the DSM layer (where it lives to
keep the dependency graph acyclic) and provides the name-based factory
the harness and the recovery driver use.  Every surface that offers a
protocol choice (CLI flags, chaos matrices, recovery dispatch) derives
it from :data:`PROTOCOL_NAMES` / :data:`RECOVERY_PROTOCOL_NAMES` here,
so adding a protocol cannot silently miss one of them.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..dsm.logginghooks import LoggingHooks, NoLogging
from ..errors import ConfigError

__all__ = [
    "LoggingHooks",
    "NoLogging",
    "PROTOCOL_NAMES",
    "RECOVERY_PROTOCOL_NAMES",
    "make_hooks",
    "make_hooks_factory",
]

#: The three protocols of the evaluation (paper Section 4) plus the
#: adaptive hybrid that switches between ML and CCL per interval and
#: the failover scheme (CCL logging under quorum-replicated homes).
PROTOCOL_NAMES = ("none", "ml", "ccl", "adaptive", "failover")

#: The subset whose logs a crashed node can be replayed from.
RECOVERY_PROTOCOL_NAMES = ("ml", "ccl", "adaptive", "failover")


def make_hooks(
    name: str, recovery_budget: Optional[float] = None
) -> LoggingHooks:
    """Instantiate a logging protocol by name.

    ``recovery_budget`` (virtual seconds) only applies to the adaptive
    protocol; passing it with a static protocol is a configuration
    error rather than a silently ignored knob.
    """
    if recovery_budget is not None and name != "adaptive":
        raise ConfigError(
            f"recovery_budget only applies to the adaptive protocol, "
            f"not {name!r}"
        )
    if name == "none":
        return NoLogging()
    if name == "ml":
        from .ml import MessageLogging

        return MessageLogging()
    if name == "ccl":
        from .ccl import CoherenceCentricLogging

        return CoherenceCentricLogging()
    if name == "adaptive":
        from .adaptive import AdaptiveLogging

        return AdaptiveLogging(recovery_budget=recovery_budget)
    if name == "failover":
        from .replication import FailoverLogging

        return FailoverLogging()
    raise ConfigError(f"unknown logging protocol {name!r}; know {PROTOCOL_NAMES}")


def make_hooks_factory(
    name: str, recovery_budget: Optional[float] = None
) -> Callable[[int], LoggingHooks]:
    """A per-node factory for :class:`~repro.dsm.system.DsmSystem`."""
    if name not in PROTOCOL_NAMES:
        raise ConfigError(
            f"unknown logging protocol {name!r}; know {PROTOCOL_NAMES}"
        )
    if recovery_budget is not None and name != "adaptive":
        raise ConfigError(
            f"recovery_budget only applies to the adaptive protocol, "
            f"not {name!r}"
        )
    return lambda _node_id: make_hooks(name, recovery_budget=recovery_budget)
