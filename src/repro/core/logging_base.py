"""Logging-protocol registry and factories.

Re-exports the hook interface from the DSM layer (where it lives to
keep the dependency graph acyclic) and provides the name-based factory
the harness and the recovery driver use.
"""

from __future__ import annotations

from typing import Callable

from ..dsm.logginghooks import LoggingHooks, NoLogging
from ..errors import ConfigError

__all__ = [
    "LoggingHooks",
    "NoLogging",
    "PROTOCOL_NAMES",
    "make_hooks",
    "make_hooks_factory",
]

#: The three protocols of the evaluation (paper Section 4).
PROTOCOL_NAMES = ("none", "ml", "ccl")


def make_hooks(name: str) -> LoggingHooks:
    """Instantiate a logging protocol by name."""
    if name == "none":
        return NoLogging()
    if name == "ml":
        from .ml import MessageLogging

        return MessageLogging()
    if name == "ccl":
        from .ccl import CoherenceCentricLogging

        return CoherenceCentricLogging()
    raise ConfigError(f"unknown logging protocol {name!r}; know {PROTOCOL_NAMES}")


def make_hooks_factory(name: str) -> Callable[[int], LoggingHooks]:
    """A per-node factory for :class:`~repro.dsm.system.DsmSystem`."""
    make_hooks(name)  # validate eagerly
    return lambda _node_id: make_hooks(name)
