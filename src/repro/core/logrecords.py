"""Typed log records and their byte-exact sizes.

Both logging protocols append these records to a node's
:class:`~repro.core.stablelog.StableLog`.  Every record carries the
*bundle index* -- the node-local interval counter at the time the
logged event happened -- plus, where replay ordering matters inside an
interval, the *window tag* (how many lock acquires the interval had
completed when the event occurred).  Recovery replays bundle ``i`` at
the start of replay-interval ``i`` and window ``m`` records at the
``m``-th acquire, reproducing the failure-free schedule.

Sizes follow the encodings of Section 3 -- notices encode as interval
records, ML's page-copy records carry a full page image, diff records
carry the run-length-encoded diff bytes -- plus the on-disk framing of
:mod:`repro.core.logformat`: every record pays a 16-byte frame header
(type tag, flags, window, interval, payload length, payload CRC32) and
variable-width fields carry explicit counts.  ``nbytes`` is the exact
framed size; :func:`~repro.core.logformat.encode_record` asserts the
two stay in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..dsm.interval import IntervalRecord, VectorClock
from ..memory.diff import Diff

__all__ = [
    "LogRecord",
    "NoticeLogRecord",
    "FetchLogRecord",
    "PageCopyLogRecord",
    "UpdateEventLogRecord",
    "IncomingDiffLogRecord",
    "OwnDiffLogRecord",
    "ModeSwitchLogRecord",
]

#: Frame header bytes per record: type tag (1), flags (1), window (2),
#: interval (4), payload length (4), payload CRC32 (4).
FRAME_HEADER_BYTES = 16


def _vt_nbytes(vt) -> int:
    """Encoded size of an optional vector clock: u32 count + components."""
    return 4 if vt is None else 4 + vt.nbytes


@dataclass
class LogRecord:
    """Base: every record knows its bundle index and window tag."""

    interval: int
    window: int = 0

    @property
    def nbytes(self) -> int:  # pragma: no cover - overridden
        return FRAME_HEADER_BYTES


@dataclass
class NoticeLogRecord(LogRecord):
    """Write-invalidation notices received with a grant / barrier release.

    Logged by **both** protocols (they are the skeleton of replay).
    """

    records: List[IntervalRecord] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        # u32 record count; per record: (node, index, page count) metadata
        # + length-prefixed vector + u32 per notice page
        return FRAME_HEADER_BYTES + 4 + sum(
            IntervalRecord.META_BYTES + _vt_nbytes(r.vt) + 4 * len(r.pages)
            for r in self.records
        )


@dataclass
class FetchLogRecord(LogRecord):
    """CCL: *metadata only* for a fetched page -- id and fetch-time version.

    Recovery prefetches the page and reconstructs exactly this version;
    the page contents themselves are deliberately not logged (they are
    reconstructible), which is the heart of CCL's log-size advantage.
    """

    page: int = -1
    version: Optional[VectorClock] = None

    @property
    def nbytes(self) -> int:
        return FRAME_HEADER_BYTES + 4 + _vt_nbytes(self.version)


@dataclass
class PageCopyLogRecord(LogRecord):
    """ML: the full contents of a fetched page (what makes ML logs huge)."""

    page: int = -1
    contents: Optional[np.ndarray] = None
    version: Optional[VectorClock] = None

    @property
    def nbytes(self) -> int:
        # i32 page + vector + u32 content length + contents
        n = FRAME_HEADER_BYTES + 8 + _vt_nbytes(self.version)
        if self.contents is not None:
            n += len(self.contents)
        return n


@dataclass
class UpdateEventLogRecord(LogRecord):
    """CCL: the *event* of incoming updates -- 12 bytes per page, no contents.

    ``(writer, writer_index, part)`` identifies the writer's logged diff
    batch recovery must fetch; ``pages`` lists the home pages the batch
    touched.
    """

    writer: int = -1
    writer_index: int = -1
    part: int = 0
    pages: Tuple[int, ...] = ()

    @property
    def nbytes(self) -> int:
        # (writer, writer_index, part, page count) + u32 per page
        return FRAME_HEADER_BYTES + 16 + 4 * len(self.pages)


@dataclass
class IncomingDiffLogRecord(LogRecord):
    """ML: contents of a received diff batch (applied to home copies)."""

    writer: int = -1
    writer_index: int = -1
    vt: Optional[VectorClock] = None
    diffs: List[Diff] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        # (writer, writer_index, diff count) + vector + packed diffs
        return (
            FRAME_HEADER_BYTES + 12 + _vt_nbytes(self.vt)
            + sum(d.nbytes for d in self.diffs)
        )


@dataclass
class OwnDiffLogRecord(LogRecord):
    """CCL: the diffs this node itself produced at an interval end.

    Includes the diffs flushed to remote homes *and* -- a conservative
    extension over the paper -- diffs of the node's writes to its own
    home pages, so that a surviving home can serve its own modifications
    during a peer's recovery instead of rolling back and re-executing
    (the paper's stated worst case).  ``vt_index`` is the writer-side
    interval number referenced by update-event records.
    """

    vt_index: int = -1
    vt: Optional[VectorClock] = None
    diffs: List[Diff] = field(default_factory=list)
    home_diffs: List[Diff] = field(default_factory=list)
    #: Early (mid-interval) flushes: ``(part, diff, vt_at_flush)``.
    early: List[Tuple[int, Diff, VectorClock]] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        # (vt_index, diff/home/early counts) + vector + packed diffs;
        # early entries add an i32 part tag and their flush-time vector
        return (
            FRAME_HEADER_BYTES
            + 16
            + _vt_nbytes(self.vt)
            + sum(d.nbytes for d in self.diffs)
            + sum(d.nbytes for d in self.home_diffs)
            + sum(4 + d.nbytes + _vt_nbytes(evt) for _p, d, evt in self.early)
        )

    def find(self, page: int, part: int = 0):
        """The ``(diff, vt)`` this interval's flush ``part`` produced for
        ``page``, if any (part 0 = the end-of-interval flush)."""
        if part == 0:
            for d in self.diffs:
                if d.page == page:
                    return d, self.vt
            for d in self.home_diffs:
                if d.page == page:
                    return d, self.vt
            return None
        for p, d, evt in self.early:
            if p == part and d.page == page:
                return d, evt
        return None


@dataclass
class ModeSwitchLogRecord(LogRecord):
    """Adaptive logging: the logging mode in effect from ``interval`` on.

    Appended by the adaptive protocol whenever its cost model flips
    between CCL and ML mode (and once at bind time, so every log opens
    with its starting mode).  Replay reads these records first and
    dispatches each interval segment to the matching replay engine.
    The two replay-time estimates that drove the decision are logged
    too -- they make post-mortem analysis of a switch schedule possible
    without rerunning the cost model.
    """

    mode: str = "ccl"
    prev_mode: str = ""
    est_replay_ml: float = 0.0
    est_replay_ccl: float = 0.0

    @property
    def nbytes(self) -> int:
        # u8 mode + u8 prev mode + u16 pad, then two f64 estimates
        return FRAME_HEADER_BYTES + 4 + 16
