"""Traditional message logging (ML) -- the paper's baseline (Section 3.1).

ML follows the piecewise-deterministic model literally: every received
coherence message is logged **with its contents** in volatile memory --

* up-to-date page copies fetched from homes after faults,
* diff batches arriving at this node's home pages,
* write-invalidation notices piggybacked on grants/releases --

and the volatile log is flushed to stable storage synchronously at the
next synchronisation point, *before* any synchronisation message is
sent.  The flush sits fully on the critical path, and the logged page
copies make the log roughly an order of magnitude larger than CCL's,
which is exactly the overhead the evaluation quantifies.
"""

from __future__ import annotations

from typing import Any, Generator, List

import numpy as np

from ..dsm.interval import IntervalRecord, VectorClock
from ..dsm.logginghooks import LoggingHooks
from ..dsm.messages import DiffBatch
from .stablelog import StableLog
from .logrecords import (
    IncomingDiffLogRecord,
    NoticeLogRecord,
    PageCopyLogRecord,
)

__all__ = ["MessageLogging"]


class MessageLogging(LoggingHooks):
    """Receiver-based message logging with sync-point flushes."""

    name = "ml"
    flush_at_sync_entry = True
    wants_home_diffs = False

    def bind(self, node) -> None:
        super().bind(node)
        self.log = StableLog(node.disk, node_id=node.id,
                             faults=getattr(node.disk, "fault_plan", None))

    # ------------------------------------------------------------------
    def on_notices_received(
        self, records: List[IntervalRecord], window: int
    ) -> None:
        if records:
            self.log.append(
                NoticeLogRecord(self.node.interval_index, window, list(records))
            )

    def on_page_fetched(
        self, page: int, contents: np.ndarray, version: VectorClock, window: int
    ) -> None:
        self.log.append(
            PageCopyLogRecord(
                self.node.interval_index, window, page, contents.copy(), version
            )
        )

    def on_update_received(self, batch: DiffBatch) -> None:
        self.log.append(
            IncomingDiffLogRecord(
                self.node.interval_index,
                0,
                batch.writer,
                batch.interval_index,
                batch.vt,
                list(batch.diffs),
            )
        )

    # ------------------------------------------------------------------
    def sync_entry_flush(self) -> Generator[Any, Any, None]:
        spent = yield from self.log.flush_sync()
        if spent:
            self.node.stats.charge("log_flush", spent)

    def log_summary(self) -> dict:
        return self.log.summary()
