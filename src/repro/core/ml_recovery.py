"""ML recovery: replay entirely from the local log (paper Section 3.1).

"Recovery starts from the most recent checkpoint and generates the
execution by replaying the logged data from nonvolatile storage at each
synchronization point and at each memory miss."

The defining costs, reproduced here:

* a disk read at every synchronisation boundary for the notices and
  incoming-diff contents of the interval;
* a disk read at **every memory miss** to load the logged page copy --
  the "memory miss idle time" the paper charges against ML-recovery;
* no network traffic at all (everything was logged with contents).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List

from ..errors import RecoveryError
from ..memory.diff import apply_diff
from ..memory.page import PageState
from .logrecords import (
    IncomingDiffLogRecord,
    NoticeLogRecord,
    PageCopyLogRecord,
)
from .recovery import ReplayNode

__all__ = ["MlReplayNode"]


class MlReplayNode(ReplayNode):
    """Replay engine for traditional message logging."""

    protocol = "ml"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._page_queues: Dict[int, Deque[PageCopyLogRecord]] = {}

    # ------------------------------------------------------------------
    def _boundary_read(self) -> Generator[Any, Any, None]:
        """One disk read for the boundary records of the new interval."""
        i = self.interval_index
        nbytes = sum(
            r.nbytes
            for r in self.plog.select(NoticeLogRecord, interval=i, window=0)
        ) + sum(
            r.nbytes for r in self.plog.select(IncomingDiffLogRecord, interval=i)
        )
        yield from self._disk_read("log_read", nbytes)
        # stage this interval's logged page copies for fault-time reads
        self._page_queues = {}
        for rec in self.plog.select(PageCopyLogRecord, interval=i):
            self._page_queues.setdefault(rec.page, deque()).append(rec)

    def _apply_boundary_updates(self) -> Generator[Any, Any, None]:
        """Apply logged incoming diff contents to home copies."""
        records = self.plog.select(
            IncomingDiffLogRecord, interval=self.interval_index
        )
        cpu = self.cfg.cpu
        apply_cost = 0.0
        for rec in records:
            for d in rec.diffs:
                entry = self.pagetable.entry(d.page)
                if entry.home != self.id:
                    raise RecoveryError(
                        f"logged incoming diff for non-home page {d.page}"
                    )
                apply_diff(d, self.memory.page_bytes(d.page))
                assert rec.vt is not None
                entry.version = entry.version.merge(rec.vt)
                self.stats.count("replay_diffs_applied")
            apply_cost += cpu.diff_apply_per_byte_s * sum(
                4 * d.word_count for d in rec.diffs
            )
        yield from self._spend("diff", apply_cost)

    def _window_read(self, window: int, notices: List[NoticeLogRecord]
                     ) -> Generator[Any, Any, None]:
        """Mid-interval acquires pay their own disk read (window > 0)."""
        if window > 0:
            nbytes = sum(r.nbytes for r in notices)
            yield from self._disk_read("log_read", nbytes)

    def _prefetch_window(self, window: int) -> Generator[Any, Any, None]:
        """ML never prefetches; misses are served lazily at fault time."""
        return
        yield  # pragma: no cover - generator marker

    def _replay_fault(self, page: int) -> Generator[Any, Any, None]:
        """A memory miss: read the logged page copy from disk."""
        queue = self._page_queues.get(page)
        if not queue:
            raise RecoveryError(
                f"ML replay fault on page {page} with no logged copy "
                f"(interval {self.interval_index})"
            )
        rec = queue.popleft()
        yield from self._spend("fault", self.cfg.cpu.page_fault_s)
        yield from self._disk_read("miss_read", rec.nbytes)
        assert rec.contents is not None
        self.memory.page_bytes(page)[:] = rec.contents
        entry = self.pagetable.entry(page)
        entry.state = PageState.CLEAN
        entry.version = rec.version
        self.stats.count("replay_faults")
