"""Crash recovery: replay engine, orchestration, and verification.

Recovery re-executes the failed node's program deterministically from
its most recent checkpoint (the initial state in the paper's
experiments), consuming logged data instead of performing live
synchronisation (paper Figures 2-3, ``in_recovery`` branches):

* locks and barriers are local -- no manager traffic, no waiting on
  peers (a large part of recovery's speedup over re-execution);
* write-invalidation notices come from the local log, replayed at the
  same in-interval positions they originally arrived at;
* home copies are brought forward with logged update data;
* remote copies are revalidated from logged information -- ML installs
  the logged page contents at each memory miss, CCL prefetches and
  reconstructs every page at each interval start.

The experiment driver :func:`run_recovery_experiment` runs two
simulations.  **Phase A** executes the application failure-free under
the chosen logging protocol, with a :class:`~repro.core.failure.CrashProbe`
capturing the victim's state at the crash point.  **Phase B** replays
the victim in a fresh simulation against
:class:`~repro.core.responder.SurvivorResponder` services built from the
survivors' phase-A state, measures the replay's virtual duration, and
verifies that the recovered memory image, page states, versions, and
vector clock match the crash-point snapshot exactly.

A note on in-flight messages: a diff acknowledged by the victim in the
instant between its last flush and the crash would be absent from the
log.  We adopt the paper's crash point ("a certain time after the
volatile logs of this interval are flushed") by force-sealing the
volatile tail at the probe, i.e. the crash is assumed to follow a
quiescent flush.  A production system would add a writer-driven
re-delivery pass (writers hold their own diffs in the CCL log), which
is exactly why CCL logs outgoing diffs durably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig
from ..dsm.api import Dsm
from ..dsm.interval import IntervalRecord, VectorClock
from ..dsm.system import DsmSystem, RunResult
from ..errors import RecoveryError
from ..memory import LocalMemory, PageState, PageTable
from ..memory.diff import Diff
from ..sim.disk import Disk
from ..sim.engine import Simulator
from ..sim.events import Signal
from ..sim.network import NetMessage, Network
from ..sim.stats import NodeStats
from .checkpoint import Checkpointer, CheckpointSnapshot
from .failure import CrashProbe, FailureSnapshot
from .logging_base import RECOVERY_PROTOCOL_NAMES, make_hooks_factory
from .logrecords import NoticeLogRecord
from .responder import FailedNodeResponder, SurvivorResponder
from .stablelog import StableLog

__all__ = [
    "ReplayNode",
    "replay_node_class",
    "RecoveryResult",
    "MultiRecoveryResult",
    "replay_failed_node",
    "run_recovery_experiment",
    "run_multi_recovery_experiment",
    "compare_state",
]


def replay_node_class(protocol: str):
    """Explicit protocol-name → replay-class dispatch.

    Raises :class:`~repro.errors.RecoveryError` on unknown names -- the
    old ``ml-else-ccl`` fallback silently replayed any typo with the
    CCL engine.
    """
    from .adaptive_recovery import AdaptiveReplayNode
    from .ccl_recovery import CclReplayNode
    from .ml_recovery import MlReplayNode

    class FailoverReplayNode(CclReplayNode):
        """Classic replay over a ``failover``-protocol log.

        The failover scheme's log format is CCL's (plus content-free
        home-write records, which apply as no-ops), so when failover
        itself is impossible -- quorum lost, or no replication -- the
        victim can still be replayed the classic way from its durable
        log.  A distinct class keeps protocol names honest in results.
        """

        protocol = "failover"

    classes = {
        "ml": MlReplayNode,
        "ccl": CclReplayNode,
        "adaptive": AdaptiveReplayNode,
        "failover": FailoverReplayNode,
    }
    if protocol not in classes:
        raise RecoveryError(
            f"no replay engine for protocol {protocol!r}; "
            f"know {RECOVERY_PROTOCOL_NAMES}"
        )
    return classes[protocol]


class ReplayNode:
    """Base recovery-mode node; protocol specifics live in subclasses.

    Presents the same surface as :class:`~repro.dsm.hlrc.HlrcNode` to
    the :class:`~repro.dsm.api.Dsm` facade, so unmodified application
    code drives the replay.
    """

    protocol = "base"

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        disk: Disk,
        config: ClusterConfig,
        space,
        homes: List[int],
        node_id: int,
        plog: StableLog,
        stop_at_seal: int,
        responders: Dict[int, SurvivorResponder],
        free_until_seal: int = 0,
        checkpoint: Optional[CheckpointSnapshot] = None,
    ):
        self.sim = sim
        self.net = net
        self.disk = disk
        self.cfg = config
        self.id = node_id
        self.memory = LocalMemory(space)
        self.pagetable = PageTable(
            node_id, space.npages, homes, pool=space.buffer_pool
        )
        for p in self.pagetable.home_pages():
            self.pagetable.entry(p).version = VectorClock.zero(config.num_nodes)
        self.vt = VectorClock.zero(config.num_nodes)
        self.interval_index = 0
        self.acq_seq = 0
        self.seal_count = 0
        self.plog = plog
        self.stop_at = stop_at_seal
        self.responders = responders
        self.free_until = free_until_seal
        self.checkpoint = checkpoint
        #: Truncation makes pre-checkpoint intervals unqueryable, so the
        #: usual zero-cost fast-forward (which still *reads* the log)
        #: would trip the watermark guards.  Restore mode instead skips
        #: the truncated intervals outright and installs the checkpoint
        #: image verbatim when the replay reaches its seal.
        self.restore_mode = (
            checkpoint is not None and plog.truncated_below > 0
        )
        self.stats = NodeStats(node_id)
        #: Triggered with the virtual completion time when replay
        #: reaches the crash point.
        self.done = Signal(f"replay{node_id}.done")
        self._halt = Signal(f"replay{node_id}.halt")  # never triggers

    # ------------------------------------------------------------------
    @property
    def timed(self) -> bool:
        """False while fast-forwarding to the checkpoint (zero cost)."""
        return self.seal_count >= self.free_until

    @property
    def restoring(self) -> bool:
        """True while skipping truncated intervals before the restore."""
        return self.restore_mode and self.seal_count < self.free_until

    def _spend(self, category: str, seconds: float) -> Generator[Any, Any, None]:
        if self.timed and seconds > 0:
            self.stats.charge(category, seconds)
            yield seconds

    def _disk_read(self, category: str, nbytes: int) -> Generator[Any, Any, None]:
        """A sequential log-scan read (replay consumes the log in order)."""
        if self.timed and nbytes > 0:
            t0 = self.sim.now
            yield self.disk.read_seq(nbytes)
            self.stats.charge(category, self.sim.now - t0)
            self.stats.count("log_reads")
            self.stats.count("log_read_bytes", nbytes)

    # ------------------------------------------------------------------
    # Dsm-facing surface
    # ------------------------------------------------------------------
    def compute(self, flops: float) -> Generator[Any, Any, None]:
        """Re-execute application work (full cost in timed mode)."""
        yield from self._spend("compute", self.cfg.cpu.compute_time(flops))

    def idle(self, seconds: float) -> Generator[Any, Any, None]:
        """Re-execute an idle phase."""
        yield from self._spend("compute", seconds)

    def acquire(self, lock_id: int) -> Generator[Any, Any, None]:
        """Recovery acquire: local, fed from the logged notices."""
        yield from self._spend("sync", self.cfg.cpu.sync_overhead_s)
        self.acq_seq += 1
        yield from self._process_window(self.acq_seq)
        self.stats.count("lock_acquires")

    def release(self, lock_id: int) -> Generator[Any, Any, None]:
        """Recovery release: just closes the interval (Figure 2)."""
        yield from self._seal_interval()
        self.stats.count("lock_releases")

    def barrier(self, barrier_id: int = 0) -> Generator[Any, Any, None]:
        """Recovery barrier: closes the interval, no waiting (Figure 3)."""
        yield from self._seal_interval()
        self.stats.count("barriers")

    def ensure_read(self, pages) -> Generator[Any, Any, None]:
        if self.restoring:
            return
        for p in pages:
            entry = self.pagetable.entry(p)
            if entry.state is PageState.INVALID and entry.home != self.id:
                yield from self._replay_fault(p)

    def ensure_write(self, pages) -> Generator[Any, Any, None]:
        if self.restoring:
            return
        cpu = self.cfg.cpu
        for p in pages:
            entry = self.pagetable.entry(p)
            if entry.home == self.id:
                self.pagetable.mark_dirty(p)
                continue
            if entry.state is PageState.INVALID:
                yield from self._replay_fault(p)
            if entry.state is PageState.CLEAN:
                # twins are still created for pages written in the next
                # interval (Figure 2's in_recovery acquire branch)
                yield from self._spend(
                    "diff", cpu.twin_copy_per_byte_s * self.cfg.page_size
                )
                self.pagetable.make_twin(p, self.memory.page_bytes(p))
                entry.state = PageState.DIRTY
            self.pagetable.mark_dirty(p)

    # ------------------------------------------------------------------
    # replay skeleton
    # ------------------------------------------------------------------
    def start(self) -> Generator[Any, Any, None]:
        """Process the first interval's logged data before the app runs."""
        yield from self._begin_interval()

    def _seal_interval(self) -> Generator[Any, Any, None]:
        yield from self._spend("sync", self.cfg.cpu.sync_overhead_s)
        dirty = self.pagetable.take_dirty()
        if dirty and not self.restoring:
            new_vt = self.vt.tick(self.id)
            for p in dirty:
                entry = self.pagetable.entry(p)
                if entry.home == self.id:
                    entry.version = entry.version.merge(new_vt)
                elif entry.state is PageState.INVALID:
                    # early-flushed mid-interval (notice hit a dirty
                    # page) and not refetched: mirrors phase A exactly
                    continue
                else:
                    self.pagetable.drop_twin(p)
                    entry.state = PageState.CLEAN
                    entry.version = (
                        entry.version.merge(new_vt) if entry.version else new_vt
                    )
            self.vt = new_vt
        self.interval_index += 1
        self.acq_seq = 0
        self.seal_count += 1
        if (
            self.checkpoint is not None
            and self.seal_count == self.free_until
        ):
            if self.restore_mode:
                # fast-forward could not touch the truncated log, so the
                # checkpoint image is installed verbatim here
                self._restore_checkpoint(self.checkpoint)
            # timed replay begins here: charge the checkpoint restore read
            t0 = self.sim.now
            yield self.disk.read(self.checkpoint.nbytes)
            self.stats.charge("ckpt_restore", self.sim.now - t0)
        if self.seal_count >= self.stop_at:
            self.done.trigger(self.sim.now)
            yield self._halt  # block forever; the controller reaps us
        yield from self._begin_interval()

    def _restore_checkpoint(self, snap: CheckpointSnapshot) -> None:
        """Install a checkpoint image verbatim (truncated-log replay)."""
        self.memory.buffer[:] = snap.memory
        self.vt = snap.vt
        self.interval_index = snap.interval_index
        for p, (state, version) in snap.page_states.items():
            entry = self.pagetable.entry(p)
            entry.version = version
            if state is PageState.DIRTY and entry.home != self.id:
                # checkpoints land on seal boundaries, so dirty pages
                # are rare -- but a restored one needs its twin back
                self.pagetable.make_twin(p, self.memory.page_bytes(p))
            entry.state = state
            if state is PageState.DIRTY:
                self.pagetable.mark_dirty(p)

    def _begin_interval(self) -> Generator[Any, Any, None]:
        if self.restoring:
            return
        yield from self._boundary_read()
        yield from self._apply_boundary_updates()
        yield from self._process_window(0)

    def _process_window(self, window: int) -> Generator[Any, Any, None]:
        if self.restoring:
            return
        notices = self.plog.select(
            NoticeLogRecord, interval=self.interval_index, window=window
        )
        yield from self._window_read(window, notices)
        for rec in notices:
            self._apply_notices(rec.records)
        yield from self._prefetch_window(window)

    def _apply_notices(self, records: List[IntervalRecord]) -> None:
        for r in records:
            if self.vt.covers_interval(r.node, r.index):
                continue
            if r.node != self.id:
                for p in r.pages:
                    entry = self.pagetable.entry(p)
                    if entry.home == self.id:
                        continue
                    if entry.state is PageState.INVALID:
                        continue
                    if entry.version is not None and entry.version.dominates(r.vt):
                        continue
                    self.pagetable.invalidate(p)
            self.vt = self.vt.merge(r.vt)

    # ------------------------------------------------------------------
    # diff gathering shared by home updates and page reconstruction
    # ------------------------------------------------------------------
    def _gather_diffs(
        self,
        wants_by_writer: Dict[int, List[Tuple[int, int, int]]],
        ranges_by_writer: Optional[Dict[int, List[Tuple[int, int, int]]]] = None,
    ) -> Generator[Any, Any, List[Tuple[Diff, int, int, int, VectorClock]]]:
        """Fetch logged diffs from writers (or our own log), batched.

        ``wants_by_writer`` maps a writer to exact ``(page, interval,
        part)`` triples; ``ranges_by_writer`` to ``(page, lo, hi)``
        interval-range queries (delta reconstruction).  One request per
        writer carries both.
        """
        from ..dsm.messages import LogDiffRequest

        ranges_by_writer = ranges_by_writer or {}
        entries: List[Tuple[Diff, int, int, int, VectorClock]] = []
        reply_sigs = []
        for writer in sorted(set(wants_by_writer) | set(ranges_by_writer)):
            wants = wants_by_writer.get(writer, [])
            ranges = ranges_by_writer.get(writer, [])
            if not wants and not ranges:
                continue
            if writer == self.id:
                # our own earlier diffs live in the log's diff-data
                # stream, which boundary scans skip: pull them now
                nbytes = 0
                for page, idx, part in wants:
                    d, vt = self.plog.find_own_diff(page, idx, part)
                    entries.append((d, writer, idx, part, vt))
                    nbytes += d.nbytes
                for page, lo, hi in ranges:
                    for d, idx, part, vt in self.plog.find_own_diffs_in_range(
                        page, lo, hi
                    ):
                        entries.append((d, writer, idx, part, vt))
                        nbytes += d.nbytes
                yield from self._disk_read("log_read", nbytes)
            elif not self.timed:
                reply, _rb = self.responders[writer].serve_logdiff(
                    LogDiffRequest(self.id, wants, ranges)
                )
                entries.extend(reply.entries)
            else:
                req = LogDiffRequest(self.id, wants, ranges)
                yield from self.net.send(
                    NetMessage(self.id, writer, "logdiff_req", req, req.nbytes)
                )
                reply_sigs.append(
                    self.net.mailbox(self.id).get(
                        lambda m, w=writer: m.kind == "logdiff_reply" and m.src == w
                    )
                )
        for sig in reply_sigs:
            t0 = self.sim.now
            msg = yield sig
            self.stats.charge("prefetch", self.sim.now - t0)
            entries.extend(msg.payload.entries)
        return entries

    @staticmethod
    def causal_sort(entries: List[Tuple[Diff, int, int, int, VectorClock]]):
        """Order diff entries along a linear extension of happens-before.

        Sorting by (vt.total, writer, interval, part) is a valid linear
        extension: vt totals strictly grow along happens-before, and
        within one writer interval the early flushes (part >= 1)
        happened before the end-of-interval flush only when their vt
        total is lower -- ties are broken so that a later part applies
        last, matching the original write order.
        """
        return sorted(entries, key=lambda e: (e[4].total, e[1], e[2], -e[3]))

    # ------------------------------------------------------------------
    # protocol-specific pieces
    # ------------------------------------------------------------------
    def _boundary_read(self) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def _apply_boundary_updates(self) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def _window_read(self, window: int, notices) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def _prefetch_window(self, window: int) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def _replay_fault(self, page: int) -> Generator[Any, Any, None]:
        raise NotImplementedError


# ======================================================================
# experiment driver
# ======================================================================


@dataclass
class RecoveryResult:
    """Outcome of one recovery experiment."""

    app_name: str
    protocol: str
    failed_node: int
    at_seal: int
    recovery_time: float
    verified: bool
    mismatches: List[str]
    replay_stats: NodeStats
    phase_a: RunResult = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        """Recovery completed and reproduced the crash-point state."""
        return self.verified and not self.mismatches


def compare_state(
    replay: ReplayNode, snapshot: FailureSnapshot, page_size: int
) -> List[str]:
    """Bit-exact comparison of recovered state vs the crash snapshot."""
    mismatches: List[str] = []
    if replay.vt != snapshot.vt:
        mismatches.append(f"vt: {replay.vt} != {snapshot.vt}")
    if replay.interval_index != snapshot.interval_index:
        mismatches.append(
            f"interval_index: {replay.interval_index} != {snapshot.interval_index}"
        )
    for p, (s_state, s_ver) in snapshot.page_states.items():
        entry = replay.pagetable.entry(p)
        if entry.state is not s_state:
            mismatches.append(f"page {p}: state {entry.state} != {s_state}")
            continue
        if s_state is PageState.INVALID and entry.home != replay.id:
            continue  # dead frames carry no meaning
        lo = p * page_size
        if not np.array_equal(
            replay.memory.buffer[lo : lo + page_size],
            snapshot.memory[lo : lo + page_size],
        ):
            mismatches.append(f"page {p}: contents differ")
        if s_ver != entry.version:
            mismatches.append(f"page {p}: version {entry.version} != {s_ver}")
    return mismatches


def replay_failed_node(
    app,
    config: ClusterConfig,
    protocol: str,
    system_a: DsmSystem,
    failed_node: int,
    plog: StableLog,
    stop_at: int,
    free_until: int = 0,
    checkpoint: Optional[CheckpointSnapshot] = None,
    salvage=None,
    dead: Tuple[int, ...] = (),
) -> Tuple[ReplayNode, float]:
    """Phase B: replay one victim in a fresh simulation, to ``stop_at`` seals.

    ``plog`` is the log the replay consumes -- the victim's full
    persistent log in the classic seal-aligned experiments, or a
    :meth:`~repro.core.stablelog.StableLog.durable_view` (possibly
    salvaged) at an arbitrary crash instant in the chaos suite.  When a
    :class:`~repro.core.salvage.SalvageReport` is supplied, the bytes
    its CRC walk read are charged to the replay as a sequential scan
    before any interval is processed -- salvage is part of recovery
    time.  ``dead`` lists nodes down alongside the victim (a zone
    kill): they answer from their logs via
    :class:`~repro.core.responder.FailedNodeResponder` instead of live
    state, with the multi-recovery simplification that co-victims serve
    peers from their full phase-A logs.  Returns the replay node (for
    state verification) and the replay's virtual duration.
    """
    if stop_at < 1:
        raise RecoveryError(f"replay needs at least one seal, got {stop_at}")
    # recovery assumes static homes: the responders and the replay node
    # are both built from the construction-time home map.  If homes
    # migrated during phase A (hlrc-migrate), page ownership in the live
    # pagetables has drifted and replay would misdirect reconstruction
    # requests -- diagnose that here instead of surfacing a KeyError
    # deep inside a responder.
    live_homes = [
        system_a.nodes[0].pagetable.entry(p).home
        for p in range(system_a.space.npages)
    ]
    if live_homes != list(system_a.homes):
        moved = [
            p
            for p, (a, b) in enumerate(zip(system_a.homes, live_homes))
            if a != b
        ]
        involving = [
            p
            for p in moved
            if live_homes[p] == failed_node or system_a.homes[p] == failed_node
        ]
        raise RecoveryError(
            f"home map drifted during the run: {len(moved)} page(s) "
            f"migrated (e.g. {moved[:6]}), {len(involving)} involving the "
            f"failed node {failed_node}; the paper's recovery protocol "
            "assumes static homes, so replay after home migration is "
            "refused rather than silently misdirected"
        )
    sim_b = Simulator()
    net_b = Network(sim_b, config.network, config.num_nodes)
    disks_b = [
        Disk(sim_b, config.disk, f"rdisk{i}") for i in range(config.num_nodes)
    ]
    ckpt_image = LocalMemory(system_a.space)
    dead_peers = set(dead) - {failed_node}
    responders: Dict[int, SurvivorResponder] = {}
    for node in system_a.nodes:
        if node.id == failed_node:
            continue
        if node.id in dead_peers:
            peer_log = getattr(node.hooks, "log", None)
            if peer_log is None:
                raise RecoveryError(
                    f"co-victim {node.id} crashed alongside node "
                    f"{failed_node} but keeps no log to answer replay "
                    "requests from"
                )
            responders[node.id] = FailedNodeResponder(
                node, ckpt_image, peer_log
            )
        else:
            responders[node.id] = SurvivorResponder(node, ckpt_image)

    node_cls = replay_node_class(protocol)
    replay = node_cls(
        sim_b,
        net_b,
        disks_b[failed_node],
        config,
        system_a.space,
        system_a.homes,
        failed_node,
        plog,
        stop_at,
        responders,
        free_until_seal=free_until,
        checkpoint=checkpoint,
    )

    responder_procs = [
        sim_b.spawn(r.loop(net_b, disks_b[r.id]), name=f"responder{r.id}")
        for r in responders.values()
    ]

    def replay_main() -> Generator[Any, Any, None]:
        if salvage is not None and salvage.scan_bytes:
            t0 = sim_b.now
            yield disks_b[failed_node].read_seq(salvage.scan_bytes)
            replay.stats.charge("salvage_scan", sim_b.now - t0)
        yield from replay.start()
        dsm = Dsm(replay, failed_node, config.num_nodes)
        yield from app.program(dsm)

    main = sim_b.spawn(replay_main(), name=f"replay{failed_node}")

    def controller() -> Generator[Any, Any, None]:
        yield replay.done
        main.kill()
        for proc in responder_procs:
            proc.kill()

    sim_b.spawn(controller(), name="recovery-controller")
    sim_b.run()
    if not replay.done.triggered:
        raise RecoveryError("replay never reached the crash point")
    return replay, float(replay.done.value)


def run_recovery_experiment(
    app,
    config: Optional[ClusterConfig] = None,
    protocol: str = "ccl",
    failed_node: int = 0,
    at_seal: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_mode: str = "seals",
    retention: Optional[int] = None,
    verify: bool = True,
    recovery_budget: Optional[float] = None,
) -> RecoveryResult:
    """Run phase A (failure-free + probe) and phase B (timed replay).

    ``at_seal=None`` crashes the victim at its final interval (the
    paper's setting: maximum work to recover).  ``checkpoint_every``
    enables periodic checkpoints -- independent per-node
    (``checkpoint_mode="seals"``, the paper's default) or coordinated at
    barrier episodes (``"barriers"``, the paper's noted extension);
    replay then starts timed execution at the latest checkpoint before
    the crash.  ``retention`` bounds how many checkpoints each node
    keeps; retiring old ones truncates the log below the oldest retained
    seal, so replay runs in *restore mode* (the checkpoint image is
    installed verbatim instead of fast-forwarded to).
    """
    if protocol not in RECOVERY_PROTOCOL_NAMES:
        raise RecoveryError(f"recovery requires a logging protocol, got {protocol!r}")
    config = config or ClusterConfig.ultra5()
    if not (0 <= failed_node < config.num_nodes):
        # fail fast: without this check a bad victim rank only surfaces
        # after a full phase-A run, as "never reached seal"
        raise RecoveryError(
            f"failed_node {failed_node} is not a valid rank; the cluster "
            f"has nodes 0..{config.num_nodes - 1}"
        )

    # ---------------- phase A: failure-free run with probe -------------
    system_a = DsmSystem(
        app, config, make_hooks_factory(protocol, recovery_budget=recovery_budget)
    )
    probe = CrashProbe(failed_node, at_seal)
    system_a.add_probe(probe)
    checkpointers: Dict[int, Checkpointer] = {}
    if checkpoint_every:
        for node in system_a.nodes:
            checkpointers[node.id] = Checkpointer(
                checkpoint_every, on=checkpoint_mode, retention=retention
            )
            node.checkpointer = checkpointers[node.id]
    result_a = system_a.run()
    probe.finalize()
    snapshot = probe.snapshot
    if snapshot is None:
        raise RecoveryError(
            f"node {failed_node} never reached seal {at_seal}; cannot crash there"
        )
    at_seal = snapshot.seal_count

    # ---------------- phase B: timed replay ----------------------------
    plog = getattr(system_a.nodes[failed_node].hooks, "log")
    free_until = 0
    ckpt_snapshot: Optional[CheckpointSnapshot] = None
    if checkpoint_every and failed_node in checkpointers:
        ckpt_snapshot = checkpointers[failed_node].latest_before(at_seal - 1)
        if ckpt_snapshot is not None:
            free_until = ckpt_snapshot.seal

    replay, recovery_time = replay_failed_node(
        app,
        config,
        protocol,
        system_a,
        failed_node,
        plog,
        at_seal,
        free_until=free_until,
        checkpoint=ckpt_snapshot,
    )

    mismatches: List[str] = []
    if verify:
        mismatches = compare_state(replay, snapshot, config.page_size)
    return RecoveryResult(
        app_name=getattr(app, "name", type(app).__name__),
        protocol=protocol,
        failed_node=failed_node,
        at_seal=at_seal,
        recovery_time=recovery_time,
        verified=verify,
        mismatches=mismatches,
        replay_stats=replay.stats,
        phase_a=result_a,
    )


# ======================================================================
# multi-failure recovery (beyond the paper)
# ======================================================================


@dataclass
class MultiRecoveryResult:
    """Outcome of a simultaneous multi-node failure recovery.

    The paper's protocol is evaluated for single failures, but CCL's
    decision to make every node log its *own outgoing diffs* durably is
    exactly what multi-failure recovery needs: a crashed peer's memory
    is gone, yet its disk can still serve the diffs and histories other
    victims' replays require (:class:`~repro.core.responder.FailedNodeResponder`).
    """

    app_name: str
    protocol: str
    failed_nodes: Tuple[int, ...]
    at_seals: Dict[int, int]
    #: Per-victim replay completion times (virtual seconds).
    recovery_times: Dict[int, float]
    mismatches: Dict[int, List[str]]
    phase_a: RunResult = field(repr=False, default=None)
    #: Per-victim checkpoint seal replay started timed from (0 = none).
    free_untils: Dict[int, int] = field(default_factory=dict)
    #: Per-victim salvage reports (arbitrary-instant crashes only).
    salvage: Dict[int, Any] = field(default_factory=dict)

    @property
    def recovery_time(self) -> float:
        """Wall recovery time: the victims replay concurrently."""
        return max(self.recovery_times.values())

    @property
    def ok(self) -> bool:
        """Every victim reached its crash point with bit-exact state."""
        return all(not m for m in self.mismatches.values())


def run_multi_recovery_experiment(
    app,
    config: Optional[ClusterConfig] = None,
    protocol: str = "ccl",
    failed_nodes: Tuple[int, ...] = (0, 1),
    at_time: Optional[float] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_mode: str = "seals",
    retention: Optional[int] = None,
    disk_fault_plan=None,
    verify: bool = True,
    recovery_budget: Optional[float] = None,
) -> MultiRecoveryResult:
    """Crash several nodes at their final intervals and recover them all.

    Victims replay **concurrently** in one simulation: each consumes its
    own log; survivors serve reconstruction data from live state; the
    victims serve *each other* from their surviving logs.  ML victims
    replay purely locally, so ML supports multiple failures trivially;
    CCL needs the failed-node responders -- which only exist because CCL
    writers log their outgoing diffs durably.

    ``at_time`` crashes *all* victims at one arbitrary virtual instant:
    each victim's log is truncated to its crash-time durable view, run
    through the salvage scan when ``disk_fault_plan`` is active, and
    replayed to its own recoverable seal (victims may stop at different
    seals).  ``checkpoint_every``/``retention`` add periodic checkpoints
    with bounded retention; a victim whose salvaged log no longer covers
    its replay window falls back to an earlier retained checkpoint via
    :func:`~repro.core.salvage.plan_recovery`.  Simplification: victim
    responders serve peers from their *full* phase-A logs -- peer-served
    data is not subject to this victim's salvage cut.
    """
    from .salvage import SalvageReport, plan_recovery, salvage_log

    if protocol not in RECOVERY_PROTOCOL_NAMES:
        raise RecoveryError(f"recovery requires a logging protocol, got {protocol!r}")
    if len(set(failed_nodes)) != len(failed_nodes) or not failed_nodes:
        raise RecoveryError(f"bad failed-node set: {failed_nodes}")
    config = config or ClusterConfig.ultra5()
    for f in failed_nodes:
        if not (0 <= f < config.num_nodes):
            raise RecoveryError(
                f"failed node {f} is not a valid rank; the cluster has "
                f"nodes 0..{config.num_nodes - 1}"
            )
    if len(failed_nodes) >= config.num_nodes:
        raise RecoveryError("at least one node must survive")

    # ---------------- phase A: failure-free run with one probe each ----
    use_instant = at_time is not None
    system_a = DsmSystem(
        app, config, make_hooks_factory(protocol, recovery_budget=recovery_budget),
        disk_fault_plan=disk_fault_plan,
    )
    probes = {f: CrashProbe(f, capture_all=use_instant) for f in failed_nodes}
    for probe in probes.values():
        system_a.add_probe(probe)
    checkpointers: Dict[int, Checkpointer] = {}
    if checkpoint_every:
        for node in system_a.nodes:
            checkpointers[node.id] = Checkpointer(
                checkpoint_every, on=checkpoint_mode, retention=retention
            )
            node.checkpointer = checkpointers[node.id]
    result_a = system_a.run()

    # ---------------- per-victim recovery plan -------------------------
    snapshots: Dict[int, FailureSnapshot] = {}
    stop_ats: Dict[int, int] = {}
    free_untils: Dict[int, int] = {}
    ckpt_snaps: Dict[int, Optional[CheckpointSnapshot]] = {}
    plogs: Dict[int, StableLog] = {}
    salvage_reports: Dict[int, Any] = {}
    for f, probe in probes.items():
        probe.finalize()
        full = getattr(system_a.nodes[f].hooks, "log")
        ckpt = checkpointers.get(f)
        if not use_instant:
            if probe.snapshot is None:
                raise RecoveryError(f"node {f} never sealed an interval")
            stop_ats[f] = probe.snapshot.seal_count
            snapshots[f] = probe.snapshot
            plogs[f] = full
            free_untils[f], ckpt_snaps[f] = 0, None
            if ckpt is not None:
                snap = ckpt.latest_before(stop_ats[f] - 1)
                if snap is not None:
                    free_untils[f], ckpt_snaps[f] = snap.seal, snap
            continue
        seals_done = sum(
            1 for s in probe.snapshots.values() if s.time <= at_time
        )
        view = full.durable_view(at_time)
        if disk_fault_plan is not None and disk_fault_plan.active:
            view, report = salvage_log(view)
        else:
            report = SalvageReport(
                f, salvaged_count=len(view.persistent_records)
            )
        salvage_reports[f] = report
        stop_at, free_until, snap = plan_recovery(
            full, report, seals_done, ckpt
        )
        if stop_at < 1:
            raise RecoveryError(
                f"victim {f}: nothing recoverable at t={at_time!r} "
                f"({report.describe()})"
            )
        stop_ats[f], free_untils[f], ckpt_snaps[f] = stop_at, free_until, snap
        snapshots[f] = probe.snapshots[stop_at]
        plogs[f] = view

    # ---------------- phase B: concurrent replays ----------------------
    sim_b = Simulator()
    net_b = Network(sim_b, config.network, config.num_nodes)
    disks_b = [
        Disk(sim_b, config.disk, f"rdisk{i}") for i in range(config.num_nodes)
    ]
    ckpt_image = LocalMemory(system_a.space)
    responders: Dict[int, SurvivorResponder] = {}
    for node in system_a.nodes:
        if node.id in snapshots:
            responders[node.id] = FailedNodeResponder(
                node, ckpt_image, getattr(node.hooks, "log")
            )
        else:
            responders[node.id] = SurvivorResponder(node, ckpt_image)

    node_cls = replay_node_class(protocol)
    replays: Dict[int, ReplayNode] = {}
    for f in failed_nodes:
        peer_responders = {i: r for i, r in responders.items() if i != f}
        replays[f] = node_cls(
            sim_b,
            net_b,
            disks_b[f],
            config,
            system_a.space,
            system_a.homes,
            f,
            plogs[f],
            stop_ats[f],
            peer_responders,
            free_until_seal=free_untils[f],
            checkpoint=ckpt_snaps[f],
        )

    responder_procs = [
        sim_b.spawn(r.loop(net_b, disks_b[r.id]), name=f"responder{r.id}")
        for r in responders.values()
    ]

    def replay_main(f: int) -> Generator[Any, Any, None]:
        report = salvage_reports.get(f)
        if report is not None and report.scan_bytes:
            t0 = sim_b.now
            yield disks_b[f].read_seq(report.scan_bytes)
            replays[f].stats.charge("salvage_scan", sim_b.now - t0)
        yield from replays[f].start()
        dsm = Dsm(replays[f], f, config.num_nodes)
        yield from app.program(dsm)

    mains = {f: sim_b.spawn(replay_main(f), name=f"replay{f}") for f in failed_nodes}

    def controller() -> Generator[Any, Any, None]:
        from ..sim.events import AllOf as _AllOf

        yield _AllOf([replays[f].done for f in failed_nodes])
        for proc in mains.values():
            proc.kill()
        for proc in responder_procs:
            proc.kill()

    sim_b.spawn(controller(), name="multi-recovery-controller")
    sim_b.run()

    recovery_times: Dict[int, float] = {}
    mismatches: Dict[int, List[str]] = {}
    for f in failed_nodes:
        if not replays[f].done.triggered:
            raise RecoveryError(f"victim {f} never reached its crash point")
        recovery_times[f] = float(replays[f].done.value)
        mismatches[f] = (
            compare_state(replays[f], snapshots[f], config.page_size)
            if verify
            else []
        )
    return MultiRecoveryResult(
        app_name=getattr(app, "name", type(app).__name__),
        protocol=protocol,
        failed_nodes=tuple(failed_nodes),
        at_seals={f: stop_ats[f] for f in failed_nodes},
        recovery_times=recovery_times,
        mismatches=mismatches,
        phase_a=result_a,
        free_untils=dict(free_untils),
        salvage=dict(salvage_reports),
    )
