"""Quorum-replicated homes: replica groups, mirrors, and epoch fencing.

Every node is the *primary* home for the pages the home map assigns it.
With a replication factor ``k >= 2`` each primary gets a
:class:`ReplicaGroup` of ``k - 1`` *follower* nodes (chosen
deterministically, preferring distinct fault domains) that mirror the
primary's sealed home-side page state:

* during an interval the primary accumulates every update it applies to
  its home pages -- incoming :class:`~repro.dsm.messages.DiffBatch`
  applications and its own end-of-interval home-write diffs -- as
  *mirror entries* in home-apply order;
* at each interval seal it ships the accumulated entries to its
  followers in one :class:`~repro.dsm.messages.ReplicaUpdate`,
  piggybacked on the seal's existing flush traffic, and requires a
  **quorum** (majority of the group, primary included) of acknowledged
  copies before the *next* seal may complete -- the same one-in-flight
  pipelining the double-buffered log flush uses, so in the failure-free
  case the acks land in the shadow of the next interval's computation;
* each entry bumps a running *apply-event counter* whose value rides
  along as ``upto``.  The counter counts exactly the events CCL logs
  durably (one ``UpdateEventLogRecord`` per applied batch, one
  ``OwnDiffLogRecord`` with home diffs per sealing interval), in log
  append order -- so a promoted follower can line its mirror up against
  the primary's durable log and replay only the *metadata suffix* the
  mirror has not yet covered.  No page contents are ever replayed from
  the log: that is the replay-free failover of
  :mod:`repro.core.failover_recovery`.

**Epoch fencing**: every group carries an epoch, bumped by promotion.
Followers remember the highest epoch they have acknowledged per
primary and reject mirrors from lower epochs, so a stale primary's
in-flight updates can never corrupt a promoted replica.  Promotion is
deterministic (the surviving follower with the freshest acked mirror,
ties to the lowest rank) and refuses to run twice for one failure.

With ``replication=1`` (the default) no replicator is attached anywhere
and every code path is byte-identical to the unreplicated protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig
from ..dsm.interval import VectorClock
from ..dsm.messages import ReplicaAck, ReplicaUpdate
from ..errors import ConfigError, RecoveryError
from ..memory import apply_diff
from ..memory.diff import Diff
from ..sim.events import Signal
from .ccl import CoherenceCentricLogging

__all__ = [
    "ReplicaGroup",
    "Replicator",
    "MirrorState",
    "FailoverLogging",
    "ZoneFaultSpec",
    "plan_groups",
    "validate_replication",
]

#: One mirror entry: ``(writer, interval_index, part, vt, diffs)`` --
#: exactly the identity a logged update event carries, plus contents.
MirrorEntry = Tuple[int, int, int, VectorClock, List[Diff]]


def validate_replication(replication: int, num_nodes: int) -> None:
    """Fail fast on impossible replication factors."""
    if replication < 1:
        raise ConfigError(
            f"replication factor must be >= 1, got {replication}"
        )
    if replication > num_nodes:
        raise ConfigError(
            f"replication factor {replication} exceeds the cluster of "
            f"{num_nodes} node(s)"
        )


@dataclass(frozen=True)
class ZoneFaultSpec:
    """Declared zone-scoped faults, validated before anything runs.

    The :class:`~repro.core.failure.FailureSpec` pattern applied to
    fault domains: construct, :meth:`validate` against the cluster
    config, and only then let the chaos driver expand the spec into a
    concrete :class:`~repro.sim.faults.FaultPlan` schedule.
    """

    #: Kill every node in this zone at one seeded instant.
    zone_kill: Optional[int] = None
    #: Partition these two zones from each other for a seeded window.
    zone_partition: Optional[Tuple[int, int]] = None

    def validate(self, config: ClusterConfig) -> None:
        zones = sorted(set(config.zones)) if config.zones is not None else [0]
        for z in filter(
            lambda z: z is not None,
            (self.zone_kill, *(self.zone_partition or ())),
        ):
            if z not in zones:
                raise ConfigError(
                    f"unknown zone {z}; the cluster has zones {zones}"
                )
        if self.zone_partition is not None:
            a, b = self.zone_partition
            if a == b:
                raise ConfigError(
                    f"zone-partition sides must differ, got ({a}, {b})"
                )
        if self.zone_kill is not None:
            victims = config.nodes_in_zone(self.zone_kill)
            if len(victims) >= config.num_nodes:
                raise ConfigError(
                    f"zone-kill {self.zone_kill} would kill every node; "
                    "at least one zone must survive"
                )

    @property
    def any(self) -> bool:
        return self.zone_kill is not None or self.zone_partition is not None


class ReplicaGroup:
    """The replica set of one primary home, with its fencing epoch."""

    def __init__(self, primary: int, followers: Tuple[int, ...]):
        if primary in followers:
            raise ConfigError(
                f"node {primary} cannot follow its own home group"
            )
        self.primary = primary
        self.followers = followers
        #: Fencing epoch; bumped by :meth:`promote`.
        self.epoch = 0
        #: The follower promoted for the current epoch (None while the
        #: original primary is alive).
        self.promoted: Optional[int] = None

    @property
    def size(self) -> int:
        return 1 + len(self.followers)

    @property
    def quorum(self) -> int:
        """Majority of the group, primary included."""
        return self.size // 2 + 1

    @property
    def acks_needed(self) -> int:
        """Follower acks per mirror (the primary's copy counts itself)."""
        return self.quorum - 1

    def surviving_followers(self, dead) -> List[int]:
        dead = set(dead)
        return [f for f in self.followers if f not in dead]

    def promote(self, candidate: int, dead) -> int:
        """Fence the old primary and install ``candidate``; returns the
        new epoch.  Deterministic, and refuses duplicate promotion."""
        if self.promoted is not None:
            raise RecoveryError(
                f"home group of node {self.primary} already promoted "
                f"node {self.promoted} at epoch {self.epoch}; duplicate "
                f"promotion refused"
            )
        if candidate not in self.followers:
            raise RecoveryError(
                f"node {candidate} is not a follower of home "
                f"{self.primary} (followers: {list(self.followers)})"
            )
        if candidate in set(dead):
            raise RecoveryError(
                f"cannot promote dead follower {candidate} for home "
                f"{self.primary}"
            )
        self.epoch += 1
        self.promoted = candidate
        return self.epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicaGroup primary={self.primary} "
            f"followers={list(self.followers)} epoch={self.epoch}>"
        )


def plan_groups(
    num_nodes: int,
    replication: int,
    zones: Optional[Tuple[int, ...]] = None,
) -> Dict[int, ReplicaGroup]:
    """Deterministic replica placement for every primary.

    Followers are taken from the ring ``primary+1, primary+2, ...``,
    preferring nodes in fault domains the group does not cover yet, so a
    zone kill leaves every group a surviving replica whenever the
    cluster spans enough zones.  Placement depends only on
    ``(num_nodes, replication, zones)``.
    """
    validate_replication(replication, num_nodes)
    zone_of = (lambda i: zones[i]) if zones is not None else (lambda i: 0)
    groups: Dict[int, ReplicaGroup] = {}
    for p in range(num_nodes):
        ring = [(p + d) % num_nodes for d in range(1, num_nodes)]
        covered = {zone_of(p)}
        followers: List[int] = []
        # first pass: one follower per uncovered zone, ring order
        for f in ring:
            if len(followers) == replication - 1:
                break
            if zone_of(f) not in covered:
                covered.add(zone_of(f))
                followers.append(f)
        # second pass: fill the remainder in ring order
        for f in ring:
            if len(followers) == replication - 1:
                break
            if f not in followers:
                followers.append(f)
        groups[p] = ReplicaGroup(p, tuple(followers))
    return groups


@dataclass
class MirrorState:
    """A follower's mirror of one primary's home-side page state."""

    primary: int
    #: Highest primary epoch this follower has accepted or acked.
    epoch: int = 0
    #: Primary seal count the mirror corresponds to.
    seal: int = 0
    #: Primary apply-event count the mirror covers.
    upto: int = 0
    #: Mirrored page frames (page -> uint8 array).
    frames: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Mirrored page versions (page -> VectorClock).
    versions: Dict[int, VectorClock] = field(default_factory=dict)
    #: Mirror updates accepted / rejected by epoch fencing.
    accepted: int = 0
    rejected: int = 0
    #: Applied mirrors in arrival order: ``(seal, upto, time, entries)``.
    #: Retained so the failover driver can reconstruct the mirror as of
    #: any crash instant (the entries are the same :class:`Diff` objects
    #: the primaries' logs retain, so this costs references, not copies).
    journal: List[Tuple[int, int, float, List[MirrorEntry]]] = field(
        default_factory=list
    )

    def apply_entries(self, entries: List[MirrorEntry]) -> int:
        """Apply mirror entries in home-apply order; returns diff bytes."""
        nbytes = 0
        for _writer, _idx, _part, vt, diffs in entries:
            for d in diffs:
                frame = self.frames.get(d.page)
                if frame is None:
                    raise RecoveryError(
                        f"mirror of home {self.primary} has no base frame "
                        f"for page {d.page}"
                    )
                apply_diff(d, frame)
                self.versions[d.page] = self.versions[d.page].merge(vt)
                nbytes += d.nbytes
        return nbytes


class Replicator:
    """Per-node replication endpoint (primary *and* follower sides).

    Attached to a node only when the system runs with ``replication >=
    2``; a ``None`` replicator keeps the node on the exact unreplicated
    code path.
    """

    def __init__(self, group: ReplicaGroup):
        #: The group this node is primary of.
        self.group = group
        self.node: Any = None
        # -- primary side ---------------------------------------------
        self._pending: List[MirrorEntry] = []
        #: Running apply-event counter (see module docstring).
        self.applied_seq = 0
        self._await_sig: Optional[Signal] = None
        self._await_seal = -1
        self._ack_count = 0
        self._sent_at = 0.0
        #: True once a follower rejected a mirror by epoch (stale primary).
        self.fenced = False
        # -- follower side --------------------------------------------
        #: primary id -> mirror of that primary's home pages.
        self.mirrors: Dict[int, MirrorState] = {}
        # -- statistics ------------------------------------------------
        self.mirrors_sent = 0
        self.mirror_bytes = 0
        self.quorum_waits: List[float] = []
        self.quorum_stall_s = 0.0
        #: Promotions applied onto this node (it became a primary).
        self.failovers = 0

    def bind(self, node: Any) -> None:
        self.node = node

    # -- follower-side wiring -------------------------------------------
    def init_follower(
        self,
        primary: int,
        pages,
        base_memory,
        num_nodes: int,
    ) -> None:
        """Adopt the initial image of ``primary``'s home pages.

        Called at system construction, before anything runs, when every
        node's memory still holds the pristine shared image -- so the
        mirror base equals the primary's initial home-page state.
        """
        st = MirrorState(primary)
        for p in pages:
            st.frames[p] = base_memory.page_bytes(p).copy()
            st.versions[p] = VectorClock.zero(num_nodes)
        self.mirrors[primary] = st

    def apply_update(self, upd: ReplicaUpdate, now: float = 0.0) -> bool:
        """Follower side: apply one mirror, or reject it by epoch."""
        st = self.mirrors.get(upd.primary)
        if st is None:
            raise RecoveryError(
                f"node {self.node.id if self.node else '?'} is not a "
                f"follower of home {upd.primary}"
            )
        if upd.epoch < st.epoch:
            st.rejected += 1
            return False
        st.epoch = upd.epoch
        st.apply_entries(upd.entries)
        st.seal = upd.seal
        st.upto = upd.upto
        st.accepted += 1
        st.journal.append((upd.seal, upd.upto, now, upd.entries))
        return True

    def fence(self, primary: int, epoch: int) -> bool:
        """Raise the epoch floor for ``primary`` (promotion side effect).

        After fencing at ``epoch``, mirrors from lower epochs are
        rejected.  Returns False when this follower has already seen a
        higher epoch (the claim is stale).
        """
        st = self.mirrors.get(primary)
        if st is None:
            return True  # not a follower; nothing to fence
        if epoch < st.epoch:
            return False
        st.epoch = epoch
        return True

    # -- primary side: entry accumulation --------------------------------
    def record_update(self, batch: Any) -> None:
        """One incoming diff batch was applied to this node's home pages."""
        self.applied_seq += 1
        self._pending.append(
            (batch.writer, batch.interval_index, batch.part, batch.vt,
             list(batch.diffs))
        )

    def record_home_writes(
        self, home_diffs: List[Diff], vt_index: int, vt: VectorClock
    ) -> None:
        """This node's own sealed home-write diffs (part 0 of ``vt_index``)."""
        self.applied_seq += 1
        self._pending.append(
            (self.group.primary, vt_index, 0, vt, list(home_diffs))
        )

    # -- primary side: the seal-time mirror -------------------------------
    def seal_mirror(self, node: Any) -> Generator[Any, Any, None]:
        """Ship the pending mirror at an interval seal.

        The pending entries (and the apply-event counter) are captured
        **synchronously**, at the same instant the seal's failure probe
        snapshots the node -- the caller runs this right after
        ``_fire_probes()`` with no yield in between -- so mirror ``s``
        is bit-identical to the home state the seal-``s`` probe sees.
        Only then does the generator absorb backpressure from the
        previous mirror (quorum acks outstanding) and post the new
        :class:`ReplicaUpdate` to every follower; updates applied during
        those yields land in the *next* seal's capture, matching the
        probe exclusion.
        """
        entries, self._pending = self._pending, []
        seal, upto = node.seal_count, self.applied_seq
        if self._await_sig is not None and not self._await_sig.triggered:
            t0 = node.sim.now
            yield self._await_sig
            dt = node.sim.now - t0
            node.stats.charge("replica_wait", dt)
            self.quorum_stall_s += dt
        if not self.group.followers:
            return
        upd = ReplicaUpdate(node.id, self.group.epoch, seal, upto, entries)
        self._await_seal = seal
        self._ack_count = 0
        self._await_sig = (
            Signal(f"n{node.id}.quorum.{seal}")
            if self.group.acks_needed > 0
            else None
        )
        self._sent_at = node.sim.now
        for f in self.group.followers:
            yield from node._send(f, "replica_update", upd)
            self.mirror_bytes += upd.nbytes
        self.mirrors_sent += 1
        node.stats.count("mirrors_sent")

    def on_ack(self, ack: ReplicaAck, now: float) -> None:
        """Primary side: count one follower ack toward the quorum."""
        if not ack.accepted:
            # a follower fenced us out: a newer epoch exists somewhere.
            # The stale primary must not count the rejection as a copy.
            self.fenced = True
            return
        if ack.epoch != self.group.epoch or ack.seal != self._await_seal:
            return  # stale or duplicate ack
        self._ack_count += 1
        if (
            self._ack_count == self.group.acks_needed
            and self._await_sig is not None
            and not self._await_sig.triggered
        ):
            self.quorum_waits.append(now - self._sent_at)
            self._await_sig.trigger(ack)

    # ---------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Per-node replication statistics for :class:`RunResult`."""
        mirrored = {
            p: {"seal": st.seal, "upto": st.upto,
                "accepted": st.accepted, "rejected": st.rejected}
            for p, st in sorted(self.mirrors.items())
        }
        return {
            "node": self.group.primary if self.node is None else self.node.id,
            "followers": list(self.group.followers),
            "epoch": self.group.epoch,
            "mirrors_sent": self.mirrors_sent,
            "mirror_bytes": self.mirror_bytes,
            "quorum_waits": list(self.quorum_waits),
            "quorum_stall_s": self.quorum_stall_s,
            "failovers": self.failovers,
            "fenced": self.fenced,
            "mirrors": mirrored,
        }


class FailoverLogging(CoherenceCentricLogging):
    """CCL logging under quorum-replicated homes.

    The log format is exactly CCL's -- the point of the replication
    layer is that recovery stops *reading page contents* from it.  A
    separate protocol name keeps the recovery registry honest: the
    ``failover`` scheme dispatches to
    :mod:`repro.core.failover_recovery`, while ``ccl`` keeps its replay
    semantics untouched.

    The one behavioural difference: content-free home writes (a dirty
    home page whose twin diff comes out empty) are logged and mirrored
    as *empty* diffs.  CCL elides them -- replay re-executes the writes,
    so only the histories must stay consistent -- but failover
    reconstructs home state from the mirror plus the log's metadata
    suffix without re-executing anything, so every version merge on a
    home page must be backed by a (possibly empty) logged entry.
    """

    name = "failover"
    log_empty_home_diffs = True
