"""Surviving-node recovery responders.

During recovery only the failed node re-executes; survivors merely
*serve* three kinds of requests out of state they already hold:

* ``recon_req`` -- a page **as of** a given version.  If the survivor's
  frozen home copy is exactly the needed version it ships it directly
  (one round trip, like a normal fault); otherwise it ships its
  checkpointed image of the page together with the page's update
  history filtered to the needed version, and the recovering node
  gathers the corresponding diffs from writer logs and rebuilds the
  exact version (Section 3.2's remote-copy reconstruction).
* ``logdiff_req`` -- logged diffs by ``(page, writer interval)``, read
  from the survivor's stable log (a real disk read on the survivor).
* Responders never initiate traffic, matching the paper's observation
  that recovery enjoys "lighter traffic over the network".

The serving logic is pure (:meth:`serve_recon`, :meth:`serve_logdiff`)
so checkpoint fast-forward can invoke it without simulated cost; the
:meth:`loop` generator wraps it with network/disk timing for timed
replay.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from ..dsm.hlrc import HlrcNode
from ..dsm.interval import VectorClock
from ..dsm.messages import (
    LogDiffReply,
    LogDiffRequest,
    ReconPage,
    ReconReply,
    ReconRequest,
)
from ..errors import RecoveryError
from ..memory import LocalMemory
from ..sim.disk import Disk
from ..sim.network import NetMessage, Network

__all__ = ["SurvivorResponder", "FailedNodeResponder"]


class SurvivorResponder:
    """One survivor's recovery service, built from its phase-A state."""

    def __init__(self, node: HlrcNode, checkpoint_memory: LocalMemory):
        self.id = node.id
        self.page_size = node.cfg.page_size
        self.log = getattr(node.hooks, "log", None)
        self.home_events = node.home_events
        self.final_memory = node.memory
        self.final_versions: Dict[int, VectorClock] = {
            p: node.pagetable.entry(p).version for p in node.pagetable.home_pages()
        }
        #: The survivor's most recent checkpoint image of its home pages
        #: (the initial image in the paper's no-intermediate-checkpoint
        #: experiments).
        self.checkpoint_memory = checkpoint_memory
        self.requests_served = 0

    # ------------------------------------------------------------------
    # pure serving logic (no simulated cost)
    # ------------------------------------------------------------------
    def serve_recon(self, req: ReconRequest) -> ReconReply:
        """Answer a batched page-as-of-version request."""
        items: List[ReconPage] = []
        for page, needed_vt, have_vt in req.wants:
            if page not in self.final_versions:
                raise RecoveryError(
                    f"recon for page {page} sent to non-home survivor {self.id}"
                )
            self.requests_served += 1
            frozen = self.final_versions[page]
            if needed_vt.dominates(frozen):
                # no updates beyond the needed version: ship the live copy
                items.append(
                    ReconPage(
                        page,
                        direct=self.final_memory.page_bytes(page).copy(),
                        version=frozen,
                    )
                )
                continue
            if have_vt is not None:
                # delta rebuild: the requester's stale frame is exactly
                # the page at `have`; ship only the (have, needed] events
                history = [
                    (writer, idx, part)
                    for (writer, idx, part, vt) in self.home_events.get(page, [])
                    if needed_vt.dominates(vt) and not have_vt.dominates(vt)
                ]
                items.append(ReconPage(page, delta=True, history=history))
                continue
            history = [
                (writer, idx, part)
                for (writer, idx, part, vt) in self.home_events.get(page, [])
                if needed_vt.dominates(vt)
            ]
            items.append(
                ReconPage(
                    page,
                    checkpoint=self.checkpoint_memory.page_bytes(page).copy(),
                    history=history,
                )
            )
        return ReconReply(self.id, items)

    def serve_logdiff(self, req: LogDiffRequest) -> Tuple[LogDiffReply, int]:
        """Answer a logged-diff request; returns (reply, disk bytes read)."""
        if self.log is None:
            raise RecoveryError(f"survivor {self.id} has no stable log")
        self.requests_served += 1
        entries = []
        read_bytes = 0
        for page, idx, part in req.wants:
            diff, vt = self.log.find_own_diff(page, idx, part)
            entries.append((diff.copy(), self.id, idx, part, vt))
            read_bytes += diff.nbytes
        for page, lo, hi in req.ranges:
            for diff, idx, part, vt in self.log.find_own_diffs_in_range(
                page, lo, hi
            ):
                entries.append((diff.copy(), self.id, idx, part, vt))
                read_bytes += diff.nbytes
        return LogDiffReply(entries), read_bytes

    # ------------------------------------------------------------------
    # timed service loop (phase-B simulation)
    # ------------------------------------------------------------------
    def loop(self, net: Network, disk: Disk) -> Generator[Any, Any, None]:
        """Serve requests forever with network/disk costs (killed at end).

        The receive predicate matters: in multi-failure recovery a node
        can be both a replaying victim and a responder for its peers,
        so the responder must only consume *request* messages and leave
        replies for the replay engine.
        """
        mbox = net.mailbox(self.id)
        is_request = lambda m: m.kind in ("recon_req", "logdiff_req")  # noqa: E731
        while True:
            msg: NetMessage = yield mbox.get(is_request)
            if msg.kind == "recon_req":
                reply = self.serve_recon(msg.payload)
                net.post(NetMessage(self.id, msg.src, "recon_reply", reply,
                                    reply.nbytes))
            else:
                reply, read_bytes = self.serve_logdiff(msg.payload)
                yield self._log_read(disk, read_bytes)
                net.post(NetMessage(self.id, msg.src, "logdiff_reply", reply,
                                    reply.nbytes))

    def _log_read(self, disk: Disk, nbytes: int):
        """A survivor's own log is still warm in its buffer cache."""
        return disk.read_cached(nbytes)


class FailedNodeResponder(SurvivorResponder):
    """Recovery service of a node that itself crashed.

    Multi-failure recovery: a crashed node's *memory* is gone, but its
    stable log survives, and CCL made it log its own outgoing (and
    home-write) diffs durably -- so its disk can still serve everything
    a peer's recovery needs:

    * ``logdiff`` queries read straight from the log (cold cache: the
      node rebooted);
    * ``recon`` queries cannot use the frozen-copy fast path or the
      in-memory update-event table; instead the page's update history
      is re-derived from the log's event records and home-write diff
      records.  Event records carry no vector timestamps, so the reply
      history is *unfiltered* and the requester filters fetched diffs
      against its needed version (client-side filtering is always sound
      -- every diff travels with its timestamp).
    """

    def __init__(self, node, checkpoint_memory: LocalMemory, log):
        # note: deliberately NOT calling super().__init__ -- the frozen
        # memory/state of `node` must not be touched (it is "lost")
        self.id = node.id
        self.page_size = node.cfg.page_size
        self.log = log
        self.home_pages = set(node.pagetable.home_pages())
        self.checkpoint_memory = checkpoint_memory
        self.requests_served = 0

    def serve_recon(self, req: ReconRequest) -> ReconReply:
        items: List[ReconPage] = []
        for page, _needed_vt, have_vt in req.wants:
            if page not in self.home_pages:
                raise RecoveryError(
                    f"recon for page {page} sent to non-home node {self.id}"
                )
            self.requests_served += 1
            history = list(self.log.event_history(page))
            history += [
                (self.id, idx, part)
                for idx, part in self.log.home_diff_history(page)
            ]
            if have_vt is not None:
                # delta onto the requester's stale frame: ship the
                # unfiltered history; the requester applies only diffs
                # in (have, needed]
                items.append(ReconPage(page, delta=True, history=history))
            else:
                items.append(
                    ReconPage(
                        page,
                        checkpoint=self.checkpoint_memory.page_bytes(page).copy(),
                        history=history,
                    )
                )
        return ReconReply(self.id, items)

    def _log_read(self, disk: Disk, nbytes: int):
        """A rebooted node's log is cold: pay the sequential-scan price."""
        return disk.read_seq(nbytes)
