"""Salvage scan and recovery planning over an imperfect on-disk log.

Recovery under a :class:`~repro.sim.faults.DiskFaultPlan` cannot trust
the crash-instant log: a flush in flight at the crash may have left a
*torn tail* (a byte prefix of its segment), and latent bit rot may have
flipped bits inside segments that were durable long before the crash.

:func:`salvage_log` walks the durable view's segments in order,
validates every frame CRC, and keeps the **longest valid prefix** of
the record sequence: replay needs a causally complete prefix, so the
first corrupt frame quarantines itself and everything after it.  A torn
tail is decoded frame-by-frame from the surviving bytes and appended --
torn-tail records are fully framed, so a crash mid-flush recovers every
record whose frame fits in the surviving prefix.

:func:`plan_recovery` then decides how far replay can go (the salvaged
log bounds the replayable seal exactly like durability marks do) and
which checkpoint to start from -- falling back to an *earlier* retained
checkpoint when quarantine or truncation leaves the log unable to cover
the replay window, or raising a diagnosed
:class:`~repro.errors.RecoveryError` naming the corrupt segment when no
retained checkpoint can bridge the damage.  Diagnosed failure is the
contract: recovery is bit-exact or it refuses loudly, never silently
wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import RecoveryError
from .checkpoint import Checkpointer, CheckpointSnapshot
from .logformat import decode_segment
from .stablelog import StableLog

__all__ = ["SalvageReport", "salvage_log", "plan_recovery"]


@dataclass
class SalvageReport:
    """What the salvage scan found in one node's crash-instant log."""

    node: int
    segments_scanned: int = 0
    #: Records kept: always a prefix of the original append sequence.
    salvaged_count: int = 0
    records_quarantined: int = 0
    #: Segment seq whose flush was in flight at the crash, if a byte
    #: prefix of it survived and yielded records.
    torn_segment: Optional[int] = None
    torn_records_recovered: int = 0
    #: Segment seq of the first CRC/decode failure, if any.
    corrupt_segment: Optional[int] = None
    #: Interval tag of the first quarantined record (replay bound).
    corrupt_interval: Optional[int] = None
    #: Bytes the CRC walk read (charged to the recovery breakdown).
    scan_bytes: int = 0
    detail: str = ""

    @property
    def clean(self) -> bool:
        """No corruption found (a torn tail alone still counts as clean:
        losing in-flight data is within the ideal crash model)."""
        return self.corrupt_segment is None

    def describe(self) -> str:
        parts = [
            f"node {self.node}: scanned {self.segments_scanned} segments "
            f"({self.scan_bytes} bytes), kept {self.salvaged_count} records"
        ]
        if self.torn_segment is not None:
            parts.append(
                f"torn segment {self.torn_segment}: recovered "
                f"{self.torn_records_recovered} records from the tail"
            )
        if self.corrupt_segment is not None:
            parts.append(
                f"corrupt segment {self.corrupt_segment} (interval "
                f"{self.corrupt_interval}): quarantined "
                f"{self.records_quarantined} records -- {self.detail}"
            )
        return "; ".join(parts)


def salvage_log(view: StableLog) -> Tuple[StableLog, SalvageReport]:
    """Scan a crash-instant durable view; return the trusted log.

    ``view`` comes from :meth:`StableLog.durable_view` and carries the
    crash's torn tail (if any) plus the fault plan whose pure per-
    segment draws decide latent bit rot.  The returned log holds the
    longest valid record prefix (torn-tail records included when
    nothing earlier is corrupt); the report says what was kept, what
    was quarantined, and how many bytes the scan read.
    """
    plan = view.faults
    report = SalvageReport(node=view.node_id)
    full = view.persistent_records
    valid_count = len(full)

    # ---- CRC walk over the durable segments, in issue order ----------
    for seg in view._segments:
        if seg.gc:
            continue
        report.segments_scanned += 1
        report.scan_bytes += seg.nbytes
        flip = (
            plan.bitrot_flip(view.node_id, seg.seq, seg.nbytes)
            if plan is not None and plan.active
            else None
        )
        if flip is None:
            # pristine by construction: the segment's bytes are exactly
            # encode_segment output, whose round-trip the format tests
            # pin, so the walk is charged but need not be re-executed
            continue
        data = bytearray(seg.encoded())
        off, mask = flip
        data[off] ^= mask
        recs, _consumed, err = decode_segment(bytes(data))
        if err is None and len(recs) == seg.count:
            continue  # the flip hit semantic dead space (e.g. reserved)
        cut = seg.start + len(recs)
        if cut < valid_count:
            valid_count = cut
            report.corrupt_segment = seg.seq
            report.detail = err or "record count mismatch"
            report.corrupt_interval = full[cut].interval
            break  # later segments are beyond the quarantine cut anyway

    # ---- torn tail: decode the surviving byte prefix -----------------
    tail_records = []
    torn = view._torn
    if torn is not None and valid_count == len(full):
        seg, surviving = torn
        report.scan_bytes += surviving
        recs, _consumed, _err = decode_segment(seg.encoded()[:surviving])
        tail_records = seg.records[: len(recs)]
        if tail_records:
            report.torn_segment = seg.seq
            report.torn_records_recovered = len(tail_records)

    # ---- assemble the trusted log ------------------------------------
    out = StableLog(view.disk, node_id=view.node_id, faults=view.faults)
    out.truncated_below = view.truncated_below
    out._retire(list(full[:valid_count]))
    if tail_records:
        out._retire(list(tail_records))
    mark_time = view._flush_marks[-1][1] if view._flush_marks else 0.0
    out._flush_marks.append((len(out.persistent_records), mark_time))
    report.salvaged_count = valid_count + len(tail_records)
    report.records_quarantined = len(full) - valid_count
    return out, report


def plan_recovery(
    full_log: StableLog,
    report: SalvageReport,
    seals_done: int,
    checkpointer: Optional[Checkpointer] = None,
) -> Tuple[int, int, Optional[CheckpointSnapshot]]:
    """Decide ``(stop_at, free_until, checkpoint)`` for one victim.

    ``full_log`` is the victim's complete phase-A log (used only to
    find the first interval the salvaged prefix does not cover);
    ``seals_done`` is how many intervals the victim had sealed at the
    crash.  Replay stops at the earlier of the two bounds.  With a
    checkpointer, the latest retained snapshot strictly below the stop
    seal is selected -- which *is* the fall-back-one-checkpoint rule
    when quarantine lowered the stop seal.  Raises a diagnosed
    :class:`RecoveryError` when truncation or corruption leaves no way
    to cover the window.
    """
    lost = full_log.first_lost_from(report.salvaged_count)
    stop_at = seals_done if lost is None else min(seals_done, lost)
    watermark = full_log.truncated_below

    def _diagnosis(reason: str) -> RecoveryError:
        where = (
            f"corrupt segment {report.corrupt_segment} "
            f"(interval {report.corrupt_interval})"
            if report.corrupt_segment is not None
            else f"truncation watermark {watermark}"
        )
        return RecoveryError(
            f"node {report.node}: {reason}; {where}; {report.describe()}"
        )

    if stop_at < 1:
        if watermark > 0:
            raise _diagnosis(
                "salvaged log covers no interval and early segments were "
                "reclaimed by checkpoint truncation"
            )
        # nothing durable to replay: restart from the initial state
        return 0, 0, None

    snapshot: Optional[CheckpointSnapshot] = None
    free_until = 0
    if checkpointer is not None:
        snapshot = checkpointer.latest_before(stop_at - 1)
        if snapshot is not None and snapshot.seal < watermark:
            snapshot = None
        if snapshot is not None:
            free_until = snapshot.seal
    if watermark > 0 and snapshot is None:
        raise _diagnosis(
            f"no retained checkpoint at or below seal {stop_at - 1} can "
            f"anchor replay over the truncated log"
        )
    return stop_at, free_until, snapshot
