"""The stable-storage log: volatile buffer + flush accounting + queries.

A :class:`StableLog` separates three concerns:

* **buffering** -- protocol hooks append typed records to the volatile
  buffer as coherence events occur;
* **flushing** -- :meth:`flush_sync` (ML: synchronous, on the caller's
  critical path) and :meth:`flush_async` (CCL: returns the disk signal
  so the caller can overlap it with communication) move the buffer to
  the persistent log while charging the disk model and tallying the
  flush statistics the paper's Table 2 reports;
* **querying** -- recovery reads records back by bundle index, window
  tag, and type, and looks up a writer's logged diffs by
  ``(page, interval)``.

Persistence is *segmented*: every flush writes one
:class:`LogSegment` in the framed on-disk format of
:mod:`repro.core.logformat` (16-byte segment header + CRC-framed
records), and all byte accounting is derived from that encoding.  A
:class:`~repro.sim.faults.DiskFaultPlan` attached at construction makes
the flush path retry transient write errors with backoff and makes
:meth:`durable_view` expose torn tails -- the byte-granularity prefix
of an in-flight segment a crash leaves behind -- for the salvage scan
(:mod:`repro.core.salvage`) to decode.

Checkpoint-driven truncation (:meth:`truncate_below`) garbage-collects
segments entirely below a durable checkpoint's seal, tracking reclaimed
and live log bytes.  Truncated intervals become unqueryable (guarded
with clean errors); replay must then start from the checkpoint rather
than fast-forwarding from interval 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple, Type, TypeVar

from ..errors import LoggingProtocolError, StorageFaultError
from ..memory.diff import Diff
from ..dsm.interval import VectorClock
from ..sim.disk import Disk
from ..sim.events import Signal
from ..sim.faults import DiskFaultPlan
from .logformat import SEGMENT_HEADER_BYTES, encode_segment
from .logrecords import LogRecord, OwnDiffLogRecord

__all__ = ["StableLog", "LogSegment"]

R = TypeVar("R", bound=LogRecord)


@dataclass
class LogSegment:
    """One per-flush unit of the on-disk log.

    ``start``/``count`` locate the segment's records inside the
    persistent append sequence; ``nbytes`` is the exact framed size
    (segment header + framed records).  ``durable_time`` stays ``None``
    until the disk write completes -- a crash in between makes this the
    *torn candidate*.  ``sealed`` marks zero-cost injector seals;
    ``gc`` marks segments reclaimed by checkpoint-driven truncation.
    """

    seq: int
    start: int
    count: int
    nbytes: int
    interval_lo: int
    interval_hi: int
    issue_time: float
    durable_time: Optional[float] = None
    sealed: bool = False
    gc: bool = False
    records: List[LogRecord] = field(default_factory=list)
    _encoded: Optional[bytes] = field(default=None, repr=False)

    def encoded(self) -> bytes:
        """The segment's exact on-disk bytes (lazily built, cached)."""
        if self._encoded is None:
            self._encoded = encode_segment(self.seq, self.records)
        return self._encoded


class StableLog:
    """One node's log of coherence-recovery data."""

    def __init__(self, disk: Disk, node_id: int = 0,
                 faults: Optional[DiskFaultPlan] = None):
        self.disk = disk
        self.node_id = node_id
        #: Disk fault plan; ``None`` or an inert plan leaves the flush
        #: path byte-identical to the fault-free model.
        self.faults = faults
        self._volatile: List[LogRecord] = []
        #: Running framed size of ``_volatile`` (kept in lockstep so
        #: ``volatile_bytes`` is O(1) on the per-record append path).
        self._volatile_nbytes = 0
        self._persistent: List[LogRecord] = []
        #: Per-flush segments in issue order (includes gc'd ones).
        self._segments: List[LogSegment] = []
        self._next_seq = 0
        #: interval -> persistent records, so replay's per-interval
        #: queries stay O(bundle) instead of O(log) (long runs replay
        #: tens of thousands of intervals).
        self._by_interval: dict[int, List[LogRecord]] = {}
        #: vt_index -> own-diff records, for O(1) writer-side diff lookups.
        self._own_by_vtidx: dict[int, List[OwnDiffLogRecord]] = {}
        #: Durability marks: ``(persistent_count, completion_time)`` per
        #: finished flush, in completion order (the disk is FIFO).  A
        #: crash at time T leaves exactly the longest prefix whose mark
        #: time is <= T on disk -- a flush still in flight at T is lost.
        self._flush_marks: List[Tuple[int, float]] = []
        self.num_flushes = 0
        self.bytes_flushed = 0
        self.volatile_peak_bytes = 0
        self.flush_retries = 0
        #: Intervals below this are truncated: their segments are
        #: reclaimed and their index entries dropped (queries raise).
        self.truncated_below = 0
        self.reclaimed_bytes = 0
        #: Torn tail exposed by :meth:`durable_view` for the salvage
        #: scan: ``(in-flight segment, surviving byte-prefix length)``.
        self._torn: Optional[Tuple[LogSegment, int]] = None

    # ------------------------------------------------------------------
    # buffering
    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> None:
        """Buffer a record in volatile memory."""
        self._volatile.append(record)
        vb = self._volatile_nbytes + record.nbytes
        self._volatile_nbytes = vb
        if vb > self.volatile_peak_bytes:
            self.volatile_peak_bytes = vb

    @property
    def volatile_bytes(self) -> int:
        """Framed bytes currently awaiting a flush.

        A running counter: summing the buffer on every append made the
        hot logging path O(buffer) per record (quadratic per interval).
        """
        return self._volatile_nbytes

    @property
    def persistent_records(self) -> List[LogRecord]:
        """All flushed records, in append order."""
        return self._persistent

    @property
    def all_records(self) -> List[LogRecord]:
        """Persistent followed by still-volatile records, in append order.

        The recoverability auditor reads a *survivor's* log, for which
        volatile records are as good as flushed (survivors do not
        crash); actual recovery paths use :attr:`persistent_records`.
        """
        return self._persistent + self._volatile

    @property
    def live_log_bytes(self) -> int:
        """On-disk bytes not yet reclaimed by truncation."""
        return sum(s.nbytes for s in self._segments if not s.gc)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush_sync(self) -> Generator[Any, Any, float]:
        """Write the volatile buffer to disk, blocking the caller.

        Returns the seconds spent waiting (0.0 when the buffer was
        empty, in which case no disk operation is issued).
        """
        nbytes = self.volatile_bytes
        if nbytes == 0:
            return 0.0
        sig = self._begin_flush(nbytes)
        t0 = self.disk.sim.now
        yield sig
        return self.disk.sim.now - t0

    def flush_async(self) -> Optional[Signal]:
        """Issue the flush and return its completion signal (or None).

        Records become queryable immediately; durability timing is the
        signal.  This is the primitive CCL overlaps with the diff-flush
        round trip.
        """
        nbytes = self.volatile_bytes
        if nbytes == 0:
            return None
        return self._begin_flush(nbytes)

    def force_seal(self) -> int:
        """Move the volatile buffer to the persistent log with no disk cost.

        Used only by the failure injector to model the paper's crash
        point -- "a certain time after the volatile logs of this
        interval are flushed" -- at which any just-arrived update events
        have also reached the disk.  Returns the number of records moved.
        """
        records = self._volatile
        n = len(records)
        if n:
            self._new_segment(records, sealed=True)
        self._retire(records)
        self._flush_marks.append((len(self._persistent), self.disk.sim.now))
        return n

    def seal_records(self, records: List[LogRecord]) -> int:
        """Persist specific still-volatile records with no disk cost.

        The crash-point variant of :meth:`force_seal` used by the
        failure injector: it seals exactly the records that were
        volatile *at the crash point* (necessarily a prefix of the
        buffer -- flushes drain it whole), leaving records appended
        afterwards volatile, so a deferred seal reproduces the state a
        seal at the crash instant would have left.  Returns the number
        of records moved.
        """
        ids = {id(r) for r in records}
        sealed = [r for r in self._volatile if id(r) in ids]
        if not sealed:
            return 0
        remaining = [r for r in self._volatile if id(r) not in ids]
        self._new_segment(sealed, sealed=True)
        self._retire(sealed)
        self._volatile = remaining
        self._volatile_nbytes = sum(r.nbytes for r in remaining)
        self._flush_marks.append((len(self._persistent), self.disk.sim.now))
        return len(sealed)

    def _new_segment(self, records: List[LogRecord],
                     sealed: bool = False) -> LogSegment:
        """Build the segment for records about to retire (not yet moved)."""
        now = self.disk.sim.now
        seg = LogSegment(
            seq=self._next_seq,
            start=len(self._persistent),
            count=len(records),
            nbytes=SEGMENT_HEADER_BYTES + sum(r.nbytes for r in records),
            interval_lo=min(r.interval for r in records),
            interval_hi=max(r.interval for r in records),
            issue_time=now,
            durable_time=now if sealed else None,
            sealed=sealed,
            records=list(records),
        )
        self._next_seq += 1
        self._segments.append(seg)
        return seg

    def _retire(self, records: List[LogRecord]) -> None:
        self._persistent.extend(records)
        for r in records:
            if r.interval >= self.truncated_below:
                self._by_interval.setdefault(r.interval, []).append(r)
            if isinstance(r, OwnDiffLogRecord):
                if r.vt_index >= self.truncated_below:
                    self._own_by_vtidx.setdefault(r.vt_index, []).append(r)
        if records is self._volatile:
            self._volatile = []
            self._volatile_nbytes = 0
        else:
            records.clear()

    def _begin_flush(self, nbytes: int) -> Signal:
        seg = self._new_segment(self._volatile)
        self.num_flushes += 1
        # byte accounting is the on-disk size: segment header included
        self.bytes_flushed += seg.nbytes
        self._retire(self._volatile)
        count = len(self._persistent)
        f = self.faults.faults_for(self.node_id) if (
            self.faults is not None and self.faults.active
        ) else None
        if f is None or not f.write_error:
            # fault-free path: one write, durable at its completion; a
            # crash before that instant loses the whole flush (unless a
            # torn tail survives -- see durable_view)
            sig = self.disk.write(seg.nbytes)
            sig.add_callback(
                lambda _v, s=seg, c=count: self._mark_durable(s, c)
            )
            return sig
        done = Signal(f"log{self.node_id}.flush{seg.seq}")
        self.disk.sim.spawn(
            self._flush_with_retries(seg, count, f, done),
            name=f"log{self.node_id}.flush{seg.seq}",
        )
        return done

    def _flush_with_retries(self, seg: LogSegment, count: int, f,
                            done: Signal):
        """Flush driver under a write-error fault schedule.

        Each attempt pays the full disk write; a transient error costs
        an additional backoff (scaled by attempt) before the retry.
        Exhausting ``max_retries`` is a permanent storage failure.
        """
        attempt = 0
        while True:
            failed = self.faults.write_fails(self.node_id)
            yield self.disk.write(seg.nbytes)
            if not failed:
                break
            attempt += 1
            self.flush_retries += 1
            if attempt > f.max_retries:
                raise StorageFaultError(
                    f"node {self.node_id}: flush of segment {seg.seq} "
                    f"({seg.nbytes} bytes) failed {attempt} times"
                )
            yield f.retry_backoff_s * attempt
        self._mark_durable(seg, count)
        done.trigger(self.disk.sim.now)

    def _mark_durable(self, seg: LogSegment, count: int) -> None:
        seg.durable_time = self.disk.sim.now
        self._flush_marks.append((count, seg.durable_time))

    # ------------------------------------------------------------------
    # checkpoint-driven truncation
    # ------------------------------------------------------------------
    def truncate_below(self, interval: int) -> int:
        """Reclaim segments entirely below ``interval`` (a durable
        checkpoint's seal).

        Marks qualifying durable segments garbage, drops the index
        entries of truncated intervals, and raises the truncation
        watermark: queries below it raise cleanly instead of returning
        partial data.  The flat persistent sequence is kept (durability
        marks are count-based); replay must start from the checkpoint.
        Returns the bytes reclaimed by this call.
        """
        if interval <= self.truncated_below:
            return 0
        freed = 0
        for seg in self._segments:
            if seg.gc or seg.durable_time is None:
                continue
            if seg.interval_hi < interval:
                seg.gc = True
                freed += seg.nbytes
        self.reclaimed_bytes += freed
        for i in [i for i in self._by_interval if i < interval]:
            del self._by_interval[i]
        for i in [i for i in self._own_by_vtidx if i < interval]:
            del self._own_by_vtidx[i]
        self.truncated_below = interval
        return freed

    # ------------------------------------------------------------------
    # durability queries (the arbitrary-instant crash model)
    # ------------------------------------------------------------------
    def durable_count(self, at_time: float) -> int:
        """Records guaranteed on disk at virtual time ``at_time``.

        The durable set is always a prefix of append order: flushes
        retire the whole buffer FIFO and the disk serves FIFO, so marks
        are monotone in both fields.
        """
        count = 0
        for c, t in self._flush_marks:
            if t <= at_time and c > count:
                # not simply the last qualifying mark: a zero-cost seal
                # can certify records while an earlier flush is still in
                # flight, so counts need not be monotone in mark order
                count = c
        return count

    def first_lost_from(self, count: int) -> Optional[int]:
        """Interval tag of the earliest record beyond a durable prefix
        of ``count`` records (``None`` if nothing is lost).

        Interval tags are appended monotonically (hooks tag records
        with the node's current ``interval_index``), so every bundle
        *below* the returned tag is fully durable -- that is the
        highest seal count recovery can replay to.
        """
        rest = self._persistent[count:] + self._volatile
        if not rest:
            return None
        return min(r.interval for r in rest)

    def first_lost_interval(self, at_time: float) -> Optional[int]:
        """Interval tag of the earliest record lost by a crash at
        ``at_time`` (``None`` if every appended record was durable)."""
        return self.first_lost_from(self.durable_count(at_time))

    def durable_view(self, at_time: float) -> "StableLog":
        """A log holding exactly what a crash at ``at_time`` leaves on disk.

        The view shares the disk (recovery charges its reads there) but
        owns its own record lists; flush statistics start at zero, as a
        recovering node would observe.  Under a
        :class:`~repro.sim.faults.DiskFaultPlan` the view also exposes
        the *torn tail*: if a flush was in flight at ``at_time`` and
        the plan's pure per-segment draw says a byte prefix survived,
        ``_torn`` names the segment and the surviving length for the
        salvage scan to decode.  Latent bit rot is *not* materialised
        here -- it lives in the shared segment objects' fault draws and
        is discovered (or not) by salvage's CRC walk.
        """
        view = StableLog(self.disk, node_id=self.node_id, faults=self.faults)
        view.truncated_below = self.truncated_below
        n = self.durable_count(at_time)
        view._retire(list(self._persistent[:n]))
        view._flush_marks.append((len(view._persistent), at_time))
        # durable segments are those fully inside the durable prefix
        # (a zero-cost seal can certify an in-flight flush's records,
        # so membership is by record range, not by durable_time)
        view._segments = [
            s for s in self._segments if s.start + s.count <= n
        ]
        view._next_seq = self._next_seq
        view.reclaimed_bytes = sum(s.nbytes for s in view._segments if s.gc)
        if self.faults is not None and self.faults.active:
            for seg in self._segments:
                if (seg.start == n and not seg.sealed
                        and seg.issue_time <= at_time
                        and (seg.durable_time is None
                             or seg.durable_time > at_time)):
                    surviving = self.faults.torn_bytes(
                        self.node_id, seg.seq, seg.nbytes
                    )
                    if surviving is not None:
                        view._torn = (seg, surviving)
                    break
        return view

    # ------------------------------------------------------------------
    # recovery queries (operate on the persistent log)
    # ------------------------------------------------------------------
    def _check_live(self, interval: int) -> None:
        if interval < self.truncated_below:
            raise LoggingProtocolError(
                f"node {self.node_id}: interval {interval} was truncated "
                f"(watermark {self.truncated_below}); recovery must start "
                f"from a checkpoint at or above the watermark"
            )

    def bundle(self, interval: int) -> List[LogRecord]:
        """All persistent records of one bundle, in append order."""
        self._check_live(interval)
        return list(self._by_interval.get(interval, []))

    def bundle_bytes(self, interval: int) -> int:
        """Encoded size of one bundle (the batched recovery read)."""
        return sum(r.nbytes for r in self.bundle(interval))

    def select(
        self,
        rtype: Type[R],
        interval: Optional[int] = None,
        window: Optional[int] = None,
    ) -> List[R]:
        """Persistent records of a given type, optionally filtered."""
        if interval is not None:
            self._check_live(interval)
            pool = self._by_interval.get(interval, [])
        else:
            pool = self._persistent
        out: List[R] = []
        for r in pool:
            if not isinstance(r, rtype):
                continue
            if r.interval < self.truncated_below:
                continue
            if window is not None and r.window != window:
                continue
            out.append(r)
        return out

    def find_own_diff(
        self, page: int, vt_index: int, part: int = 0
    ) -> Tuple[Diff, VectorClock]:
        """Look up the diff this node logged for ``(page, interval, part)``.

        Serves :class:`~repro.dsm.messages.LogDiffRequest` during a
        peer's recovery.  Raises if the entry is absent, which would
        indicate a protocol bug (update events always reference diffs
        their writers logged before the event became observable) -- or,
        with a distinct message, that truncation reclaimed it.
        """
        self._check_live(vt_index)
        for r in self._own_by_vtidx.get(vt_index, []):
            found = r.find(page, part)
            if found is not None:
                d, vt = found
                assert vt is not None
                return d, vt
        raise LoggingProtocolError(
            f"no logged diff for page {page} at writer interval "
            f"{vt_index} part {part}"
        )

    def find_own_diffs_in_range(
        self, page: int, lo_index: int, hi_index: int
    ) -> List[Tuple[Diff, int, int, VectorClock]]:
        """All logged diffs for ``page`` with vt index in [lo, hi].

        Returns ``(diff, vt_index, part, vt)`` tuples across end-of-
        interval, home-write, and early flushes.  Used by delta
        reconstruction's per-writer range queries; an empty result is
        legal (the writer may not have touched the page in that span).
        Truncated indices below the watermark simply contribute nothing
        (delta reconstruction never reaches below a restored
        checkpoint's version cut).
        """
        out: List[Tuple[Diff, int, int, VectorClock]] = []
        for idx in range(lo_index, hi_index + 1):
            for r in self._own_by_vtidx.get(idx, []):
                assert r.vt is not None
                for d in r.diffs:
                    if d.page == page:
                        out.append((d, r.vt_index, 0, r.vt))
                for d in r.home_diffs:
                    if d.page == page:
                        out.append((d, r.vt_index, 0, r.vt))
                for part, d, evt in r.early:
                    if d.page == page:
                        out.append((d, r.vt_index, part, evt))
        return out

    def home_diff_history(self, page: int) -> List[Tuple[int, int]]:
        """All ``(vt_index, part)`` home-write diffs logged for ``page``.

        Lets a *failed* home's recovery responder enumerate its own
        modifications to a page from the log alone (its in-memory
        update-event history died with it).
        """
        out: List[Tuple[int, int]] = []
        for r in self._persistent:
            if isinstance(r, OwnDiffLogRecord):
                if r.vt_index < self.truncated_below:
                    continue
                for d in r.home_diffs:
                    if d.page == page:
                        out.append((r.vt_index, 0))
        return out

    def event_history(self, page: int) -> List[Tuple[int, int, int]]:
        """All ``(writer, vt_index, part)`` update events logged for ``page``.

        The log-derived replacement for a failed home's in-memory
        ``home_events`` table; entries carry no vector timestamps (event
        records are framed metadata only), so requesters must filter
        fetched diffs against their needed version client-side.
        """
        from .logrecords import UpdateEventLogRecord

        out: List[Tuple[int, int, int]] = []
        for r in self._persistent:
            if isinstance(r, UpdateEventLogRecord) and page in r.pages:
                if r.interval < self.truncated_below:
                    continue
                out.append((r.writer, r.writer_index, r.part))
        return out

    def summary(self) -> dict:
        """Flush statistics for the harness (Table 2 inputs)."""
        return {
            "flushes": self.num_flushes,
            "bytes_flushed": self.bytes_flushed,
            "records": len(self._persistent) + len(self._volatile),
            "volatile_peak_bytes": self.volatile_peak_bytes,
            "segments": len(self._segments),
            "live_log_bytes": self.live_log_bytes,
            "reclaimed_bytes": self.reclaimed_bytes,
            "flush_retries": self.flush_retries,
        }
