"""The stable-storage log: volatile buffer + flush accounting + queries.

A :class:`StableLog` separates three concerns:

* **buffering** -- protocol hooks append typed records to the volatile
  buffer as coherence events occur;
* **flushing** -- :meth:`flush_sync` (ML: synchronous, on the caller's
  critical path) and :meth:`flush_async` (CCL: returns the disk signal
  so the caller can overlap it with communication) move the buffer to
  the persistent log while charging the disk model and tallying the
  flush statistics the paper's Table 2 reports;
* **querying** -- recovery reads records back by bundle index, window
  tag, and type, and looks up a writer's logged diffs by
  ``(page, interval)``.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple, Type, TypeVar

from ..errors import LoggingProtocolError
from ..memory.diff import Diff
from ..dsm.interval import VectorClock
from ..sim.disk import Disk
from ..sim.events import Signal
from .logrecords import LogRecord, OwnDiffLogRecord

__all__ = ["StableLog"]

R = TypeVar("R", bound=LogRecord)


class StableLog:
    """One node's log of coherence-recovery data."""

    def __init__(self, disk: Disk):
        self.disk = disk
        self._volatile: List[LogRecord] = []
        self._persistent: List[LogRecord] = []
        #: interval -> persistent records, so replay's per-interval
        #: queries stay O(bundle) instead of O(log) (long runs replay
        #: tens of thousands of intervals).
        self._by_interval: dict[int, List[LogRecord]] = {}
        #: vt_index -> own-diff records, for O(1) writer-side diff lookups.
        self._own_by_vtidx: dict[int, List[OwnDiffLogRecord]] = {}
        #: Durability marks: ``(persistent_count, completion_time)`` per
        #: finished flush, in completion order (the disk is FIFO).  A
        #: crash at time T leaves exactly the longest prefix whose mark
        #: time is <= T on disk -- a flush still in flight at T is lost.
        self._flush_marks: List[Tuple[int, float]] = []
        self.num_flushes = 0
        self.bytes_flushed = 0
        self.volatile_peak_bytes = 0

    # ------------------------------------------------------------------
    # buffering
    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> None:
        """Buffer a record in volatile memory."""
        self._volatile.append(record)
        vb = self.volatile_bytes
        if vb > self.volatile_peak_bytes:
            self.volatile_peak_bytes = vb

    @property
    def volatile_bytes(self) -> int:
        """Bytes currently awaiting a flush."""
        return sum(r.nbytes for r in self._volatile)

    @property
    def persistent_records(self) -> List[LogRecord]:
        """All flushed records, in append order."""
        return self._persistent

    @property
    def all_records(self) -> List[LogRecord]:
        """Persistent followed by still-volatile records, in append order.

        The recoverability auditor reads a *survivor's* log, for which
        volatile records are as good as flushed (survivors do not
        crash); actual recovery paths use :attr:`persistent_records`.
        """
        return self._persistent + self._volatile

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush_sync(self) -> Generator[Any, Any, float]:
        """Write the volatile buffer to disk, blocking the caller.

        Returns the seconds spent waiting (0.0 when the buffer was
        empty, in which case no disk operation is issued).
        """
        nbytes = self.volatile_bytes
        if nbytes == 0:
            return 0.0
        sig = self._begin_flush(nbytes)
        t0 = self.disk.sim.now
        yield sig
        return self.disk.sim.now - t0

    def flush_async(self) -> Optional[Signal]:
        """Issue the flush and return its completion signal (or None).

        Records become queryable immediately; durability timing is the
        signal.  This is the primitive CCL overlaps with the diff-flush
        round trip.
        """
        nbytes = self.volatile_bytes
        if nbytes == 0:
            return None
        return self._begin_flush(nbytes)

    def force_seal(self) -> int:
        """Move the volatile buffer to the persistent log with no disk cost.

        Used only by the failure injector to model the paper's crash
        point -- "a certain time after the volatile logs of this
        interval are flushed" -- at which any just-arrived update events
        have also reached the disk.  Returns the number of records moved.
        """
        n = len(self._volatile)
        self._retire(self._volatile)
        self._flush_marks.append((len(self._persistent), self.disk.sim.now))
        return n

    def seal_records(self, records: List[LogRecord]) -> int:
        """Persist specific still-volatile records with no disk cost.

        The crash-point variant of :meth:`force_seal` used by the
        failure injector: it seals exactly the records that were
        volatile *at the crash point* (necessarily a prefix of the
        buffer -- flushes drain it whole), leaving records appended
        afterwards volatile, so a deferred seal reproduces the state a
        seal at the crash instant would have left.  Returns the number
        of records moved.
        """
        ids = {id(r) for r in records}
        sealed = [r for r in self._volatile if id(r) in ids]
        if not sealed:
            return 0
        remaining = [r for r in self._volatile if id(r) not in ids]
        self._retire(sealed)
        self._volatile = remaining
        self._flush_marks.append((len(self._persistent), self.disk.sim.now))
        return len(sealed)

    def _retire(self, records: List[LogRecord]) -> None:
        self._persistent.extend(records)
        for r in records:
            self._by_interval.setdefault(r.interval, []).append(r)
            if isinstance(r, OwnDiffLogRecord):
                self._own_by_vtidx.setdefault(r.vt_index, []).append(r)
        if records is self._volatile:
            self._volatile = []
        else:
            records.clear()

    def _begin_flush(self, nbytes: int) -> Signal:
        self.num_flushes += 1
        self.bytes_flushed += nbytes
        self._retire(self._volatile)
        sig = self.disk.write(nbytes)
        count = len(self._persistent)
        # the prefix becomes durable when the disk write completes; a
        # crash before that instant loses the whole flush
        sig.add_callback(
            lambda _v, c=count: self._flush_marks.append((c, self.disk.sim.now))
        )
        return sig

    # ------------------------------------------------------------------
    # durability queries (the arbitrary-instant crash model)
    # ------------------------------------------------------------------
    def durable_count(self, at_time: float) -> int:
        """Records guaranteed on disk at virtual time ``at_time``.

        The durable set is always a prefix of append order: flushes
        retire the whole buffer FIFO and the disk serves FIFO, so marks
        are monotone in both fields.
        """
        count = 0
        for c, t in self._flush_marks:
            if t <= at_time and c > count:
                # not simply the last qualifying mark: a zero-cost seal
                # can certify records while an earlier flush is still in
                # flight, so counts need not be monotone in mark order
                count = c
        return count

    def first_lost_interval(self, at_time: float) -> Optional[int]:
        """Interval tag of the earliest record lost by a crash at ``at_time``.

        ``None`` means every appended record was durable.  Interval tags
        are appended monotonically (hooks tag records with the node's
        current ``interval_index``), so every bundle *below* the
        returned tag is fully durable -- that is the highest seal count
        recovery can replay to.
        """
        rest = self._persistent[self.durable_count(at_time):] + self._volatile
        if not rest:
            return None
        return min(r.interval for r in rest)

    def durable_view(self, at_time: float) -> "StableLog":
        """A log holding exactly what a crash at ``at_time`` leaves on disk.

        The view shares the disk (recovery charges its reads there) but
        owns its own record lists; flush statistics start at zero, as a
        recovering node would observe.
        """
        view = StableLog(self.disk)
        view._retire(list(self._persistent[: self.durable_count(at_time)]))
        view._flush_marks.append((len(view._persistent), at_time))
        return view

    # ------------------------------------------------------------------
    # recovery queries (operate on the persistent log)
    # ------------------------------------------------------------------
    def bundle(self, interval: int) -> List[LogRecord]:
        """All persistent records of one bundle, in append order."""
        return list(self._by_interval.get(interval, []))

    def bundle_bytes(self, interval: int) -> int:
        """Encoded size of one bundle (the batched recovery read)."""
        return sum(r.nbytes for r in self.bundle(interval))

    def select(
        self,
        rtype: Type[R],
        interval: Optional[int] = None,
        window: Optional[int] = None,
    ) -> List[R]:
        """Persistent records of a given type, optionally filtered."""
        pool = (
            self._by_interval.get(interval, [])
            if interval is not None
            else self._persistent
        )
        out: List[R] = []
        for r in pool:
            if not isinstance(r, rtype):
                continue
            if window is not None and r.window != window:
                continue
            out.append(r)
        return out

    def find_own_diff(
        self, page: int, vt_index: int, part: int = 0
    ) -> Tuple[Diff, VectorClock]:
        """Look up the diff this node logged for ``(page, interval, part)``.

        Serves :class:`~repro.dsm.messages.LogDiffRequest` during a
        peer's recovery.  Raises if the entry is absent, which would
        indicate a protocol bug (update events always reference diffs
        their writers logged before the event became observable).
        """
        for r in self._own_by_vtidx.get(vt_index, []):
            found = r.find(page, part)
            if found is not None:
                d, vt = found
                assert vt is not None
                return d, vt
        raise LoggingProtocolError(
            f"no logged diff for page {page} at writer interval "
            f"{vt_index} part {part}"
        )

    def find_own_diffs_in_range(
        self, page: int, lo_index: int, hi_index: int
    ) -> List[Tuple[Diff, int, int, VectorClock]]:
        """All logged diffs for ``page`` with vt index in [lo, hi].

        Returns ``(diff, vt_index, part, vt)`` tuples across end-of-
        interval, home-write, and early flushes.  Used by delta
        reconstruction's per-writer range queries; an empty result is
        legal (the writer may not have touched the page in that span).
        """
        out: List[Tuple[Diff, int, int, VectorClock]] = []
        for idx in range(lo_index, hi_index + 1):
            for r in self._own_by_vtidx.get(idx, []):
                assert r.vt is not None
                for d in r.diffs:
                    if d.page == page:
                        out.append((d, r.vt_index, 0, r.vt))
                for d in r.home_diffs:
                    if d.page == page:
                        out.append((d, r.vt_index, 0, r.vt))
                for part, d, evt in r.early:
                    if d.page == page:
                        out.append((d, r.vt_index, part, evt))
        return out

    def home_diff_history(self, page: int) -> List[Tuple[int, int]]:
        """All ``(vt_index, part)`` home-write diffs logged for ``page``.

        Lets a *failed* home's recovery responder enumerate its own
        modifications to a page from the log alone (its in-memory
        update-event history died with it).
        """
        out: List[Tuple[int, int]] = []
        for r in self._persistent:
            if isinstance(r, OwnDiffLogRecord):
                for d in r.home_diffs:
                    if d.page == page:
                        out.append((r.vt_index, 0))
        return out

    def event_history(self, page: int) -> List[Tuple[int, int, int]]:
        """All ``(writer, vt_index, part)`` update events logged for ``page``.

        The log-derived replacement for a failed home's in-memory
        ``home_events`` table; entries carry no vector timestamps (event
        records are 12 bytes), so requesters must filter fetched diffs
        against their needed version client-side.
        """
        from .logrecords import UpdateEventLogRecord

        out: List[Tuple[int, int, int]] = []
        for r in self._persistent:
            if isinstance(r, UpdateEventLogRecord) and page in r.pages:
                out.append((r.writer, r.writer_index, r.part))
        return out

    def summary(self) -> dict:
        """Flush statistics for the harness (Table 2 inputs)."""
        return {
            "flushes": self.num_flushes,
            "bytes_flushed": self.bytes_flushed,
            "records": len(self._persistent) + len(self._volatile),
            "volatile_peak_bytes": self.volatile_peak_bytes,
        }
