"""Home-based software distributed shared memory (HLRC).

The substrate the paper's logging/recovery protocols sit on: vector
clocks and interval records (:mod:`repro.dsm.interval`), home assignment
(:mod:`repro.dsm.home`), protocol messages (:mod:`repro.dsm.messages`),
lock and barrier managers, the HLRC coherence engine
(:mod:`repro.dsm.hlrc`), the application API (:mod:`repro.dsm.api`), and
the system assembler (:mod:`repro.dsm.system`).
"""

from .interval import IntervalRecord, IntervalTable, VectorClock
from .home import (
    POLICIES,
    block_homes,
    explicit_homes,
    first_page_homes,
    round_robin_homes,
)
from .logginghooks import LoggingHooks, NoLogging
from .hlrc import HlrcNode
from .lrc import LrcNode
from .migration import MigratingHlrcNode
from .api import Dsm
from .system import DsmSystem, RunResult

__all__ = [
    "VectorClock",
    "IntervalRecord",
    "IntervalTable",
    "POLICIES",
    "round_robin_homes",
    "block_homes",
    "first_page_homes",
    "explicit_homes",
    "LoggingHooks",
    "NoLogging",
    "HlrcNode",
    "LrcNode",
    "MigratingHlrcNode",
    "Dsm",
    "DsmSystem",
    "RunResult",
]
