"""The application-facing DSM handle.

Application programs are SPMD generators ``program(dsm)`` receiving one
:class:`Dsm` per rank.  Shared data is declared up front on the
:class:`~repro.memory.addrspace.SharedAddressSpace`; at run time the
handle exposes NumPy views plus *access annotations* that stand in for
the virtual-memory traps of a real SDSM:

* ``yield from dsm.read(name, lo, hi)`` -- make flat elements
  ``[lo, hi)`` readable (fault in invalid pages);
* ``yield from dsm.write(name, lo, hi)`` -- make them writable (fetch +
  twin as needed, mark pages dirty);
* then operate on ``dsm.arr(name)`` directly with NumPy.

Synchronisation (``acquire``/``release``/``barrier``) and compute-cost
charging (``compute``) round out the API.  The same handle works
unchanged over a normal HLRC node and a recovery-mode replay node, which
is what lets recovery re-execute unmodified application code.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable

import numpy as np

from ..errors import ApplicationError
from ..memory import SharedArray

__all__ = ["Dsm"]


class Dsm:
    """Per-rank facade over a protocol node."""

    def __init__(self, node: Any, rank: int, nprocs: int):
        self._node = node
        self.rank = rank
        self.nprocs = nprocs
        self._arrays: Dict[str, SharedArray] = {}
        for var in node.memory.space.variables:
            self._arrays[var.name] = SharedArray(node.memory, var)

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def arr(self, name: str) -> np.ndarray:
        """The local NumPy view of a shared variable."""
        return self._shared(name).array

    def read(self, name: str, lo: int = 0, hi: int | None = None
             ) -> Generator[Any, Any, None]:
        """Annotate a read of flat elements ``[lo, hi)`` of ``name``."""
        sa = self._shared(name)
        hi = sa.flat_size if hi is None else hi
        yield from self._node.ensure_read(sa.pages_for_elements(lo, hi))

    def write(self, name: str, lo: int = 0, hi: int | None = None
              ) -> Generator[Any, Any, None]:
        """Annotate a write of flat elements ``[lo, hi)`` of ``name``."""
        sa = self._shared(name)
        hi = sa.flat_size if hi is None else hi
        yield from self._node.ensure_write(sa.pages_for_elements(lo, hi))

    def read_pages(self, pages: Iterable[int]) -> Generator[Any, Any, None]:
        """Page-level read annotation (for tests and custom layouts)."""
        yield from self._node.ensure_read(pages)

    def write_pages(self, pages: Iterable[int]) -> Generator[Any, Any, None]:
        """Page-level write annotation (for tests and custom layouts)."""
        yield from self._node.ensure_write(pages)

    def pages_of(self, name: str, lo: int = 0, hi: int | None = None) -> range:
        """Pages covering flat elements ``[lo, hi)`` of ``name``."""
        sa = self._shared(name)
        hi = sa.flat_size if hi is None else hi
        return sa.pages_for_elements(lo, hi)

    # ------------------------------------------------------------------
    # synchronisation and time
    # ------------------------------------------------------------------
    def acquire(self, lock_id: int) -> Generator[Any, Any, None]:
        """Acquire a global lock (blocking)."""
        yield from self._node.acquire(lock_id)

    def release(self, lock_id: int) -> Generator[Any, Any, None]:
        """Release a global lock (closes the current interval)."""
        yield from self._node.release(lock_id)

    def barrier(self, barrier_id: int = 0) -> Generator[Any, Any, None]:
        """Global barrier (closes the current interval)."""
        yield from self._node.barrier(barrier_id)

    def compute(self, flops: float) -> Generator[Any, Any, None]:
        """Charge application compute work to the simulated clock."""
        yield from self._node.compute(flops)

    # ------------------------------------------------------------------
    def _shared(self, name: str) -> SharedArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise ApplicationError(f"unknown shared variable {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Dsm rank={self.rank}/{self.nprocs}>"
