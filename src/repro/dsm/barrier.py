"""Manager-side barrier state.

Barriers are managed by node 0 (the paper's "barrier manager").  Each
episode collects one check-in per node -- carrying the node's vector
timestamp and its new interval records -- and completes when all have
arrived.  The manager then sends each node a tailored release containing
exactly the records that node lacks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SynchronizationError
from ..obs.latency import LatencyRecorder
from ..sim.events import Signal
from ..sim.trace import Ev
from .interval import VectorClock

__all__ = ["BarrierState"]

#: Manager-side event observer: ``fn(event_name, detail_dict)``.
BarrierEventFn = Callable[[str, dict], None]


class BarrierState:
    """Episode bookkeeping for the barrier manager.

    A fast worker that has no work between two barriers can check in
    for episode ``E+1`` while the manager is still broadcasting episode
    ``E``'s releases, so check-ins carry an episode number and arrivals
    one episode ahead are queued until :meth:`next_episode`.

    With a ``clock`` and a ``gather`` recorder the manager measures each
    episode's *gather skew* -- first check-in to all-in -- into a
    streaming latency histogram for the phase reports.
    """

    def __init__(
        self,
        num_nodes: int,
        on_event: Optional[BarrierEventFn] = None,
        clock: Optional[Callable[[], float]] = None,
        gather: Optional[LatencyRecorder] = None,
    ):
        self.num_nodes = num_nodes
        self.episode = 0
        self._arrived: Dict[int, VectorClock] = {}
        self._pending: Dict[int, VectorClock] = {}
        self._all_in = Signal("barrier.all_in")
        #: Optional trace emitter (the coherence sanitizer's hook).
        self.on_event = on_event
        #: Virtual clock for gather-skew measurement (``lambda: sim.now``).
        self.clock = clock
        #: Gather-skew latency histogram (first check-in to all-in).
        self.gather = gather
        self._first_checkin: Optional[float] = None

    def _emit(self, event: str, detail: dict) -> None:
        if self.on_event is not None:
            self.on_event(event, detail)

    def checkin(self, node: int, vt: VectorClock, episode: int) -> Signal:
        """Record an arrival for ``episode``; returns the completion signal
        of the *current* episode."""
        if episode == self.episode + 1:
            if node in self._pending:
                raise SynchronizationError(
                    f"node {node} checked in twice for future episode {episode}"
                )
            self._pending[node] = vt
            return self._all_in
        if episode != self.episode:
            raise SynchronizationError(
                f"node {node} checked in for episode {episode}; current is "
                f"{self.episode} (a node can be at most one episode ahead)"
            )
        if node in self._arrived:
            raise SynchronizationError(
                f"node {node} checked in twice for barrier episode {self.episode}"
            )
        self._arrived[node] = vt
        if self.clock is not None and self._first_checkin is None:
            self._first_checkin = self.clock()
        self._emit(Ev.BARRIER_CHECKIN, {"node": node, "episode": self.episode,
                                        "vt": list(vt.as_tuple())})
        sig = self._all_in
        if len(self._arrived) == self.num_nodes:
            if self.clock is not None and self._first_checkin is not None:
                if self.gather is not None:
                    self.gather.observe(self.clock() - self._first_checkin)
                self._first_checkin = None
            self._emit(Ev.BARRIER_ALL_IN, {"episode": self.episode})
            sig.trigger(self.episode)
        return sig

    @property
    def complete(self) -> bool:
        """Whether every node has checked in for the current episode."""
        return len(self._arrived) == self.num_nodes

    def participant_vts(self) -> List[Tuple[int, VectorClock]]:
        """All ``(node, vt)`` arrivals of the completed episode."""
        if not self.complete:
            raise SynchronizationError("barrier episode not complete")
        return sorted(self._arrived.items())

    def next_episode(self) -> None:
        """Advance, replaying any early arrivals for the new episode."""
        if not self.complete:
            raise SynchronizationError("cannot advance an incomplete episode")
        self.episode += 1
        self._arrived.clear()
        self._all_in = Signal(f"barrier.all_in.{self.episode}")
        pending, self._pending = self._pending, {}
        for node, vt in pending.items():
            self.checkin(node, vt, self.episode)
