"""Home-based lazy release consistency (HLRC).

One :class:`HlrcNode` per simulated workstation.  The node owns the
local memory image, page table, interval/vector-clock state, and the
protocol endpoints:

* a **server loop** (spawned by the system) that fields asynchronous
  requests -- page fetches, incoming diff batches, lock and barrier
  management traffic;
* **application-facing operations** (``acquire``, ``release``,
  ``barrier``, ``ensure_read``, ``ensure_write``, ``compute``) written
  as generators that the application's simulated process drives with
  ``yield from``.

Protocol summary (paper Section 2): writers flush word-level diffs of
their dirty non-home pages to each page's home at every release/barrier
and wait for acknowledgements; write-invalidation notices travel with
lock grants and barrier releases and invalidate remote copies; a fault
on an invalid page costs one round trip to the home, which always holds
an up-to-date copy.  Multiple writers of one page are merged at the home
(data-race-free programs touch disjoint words).

A pluggable :class:`~repro.dsm.logginghooks.LoggingHooks` instance
observes every coherence event; the logging protocols of the paper are
implemented purely in terms of those hooks.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional, Tuple


from ..errors import ProtocolError
from ..memory import LocalMemory, PageState, PageTable, create_diff, apply_diff
from ..memory.diff import Diff
from ..sim.events import AllOf, Signal
from ..sim.network import NetMessage
from ..sim.stats import NodeStats
from ..sim import trace as _trc
from ..sim.trace import Ev
from .barrier import BarrierState
from .interval import IntervalRecord, IntervalTable, VectorClock
from .locks import LockState
from .logginghooks import LoggingHooks, NoLogging
from .messages import (
    BarrierCheckin,
    BarrierRelease,
    DiffAck,
    DiffBatch,
    LockGrant,
    LockRelease,
    LockRequest,
    PageRequest,
    PageReply,
    ReplicaAck,
    ReplicaUpdate,
)

if TYPE_CHECKING:  # pragma: no cover
    from .system import DsmSystem

__all__ = ["HlrcNode"]

#: Callback signature for the failure-point probe:
#: ``probe(node, seal_count)`` fires right after a node seals (flushes)
#: the log bundle of a completed interval -- the paper's crash point.
ProbeFn = Callable[["HlrcNode", int], None]


class HlrcNode:
    """One cluster node running the HLRC protocol."""

    #: Message kinds this node's server loop consumes.  The explicit
    #: whitelist lets other services (heartbeat responders, recovery
    #: responders) share the node's mailbox without message theft.
    SERVER_KINDS = frozenset(
        {
            "page_req",
            "diff",
            "lock_req",
            "lock_rel",
            "barrier_checkin",
            "page_reply",
            "diff_ack",
            "lock_grant",
            "barrier_release",
            "replica_update",
            "replica_ack",
        }
    )

    def __init__(
        self,
        system: "DsmSystem",
        node_id: int,
        hooks: Optional[LoggingHooks] = None,
    ):
        self.system = system
        self.id = node_id
        self.cfg = system.config
        self.sim = system.sim
        # the transport is the reliable layer when fault injection is
        # active, and the bare network otherwise (identical surface)
        self.net = getattr(system, "transport", None) or system.network
        self.disk = system.disks[node_id]
        self.memory = LocalMemory(system.space)
        self.pagetable = PageTable(
            node_id, system.space.npages, system.homes,
            pool=system.space.buffer_pool,
        )
        self.pagetable.on_transition = self._on_page_transition
        self.stats = NodeStats(node_id)
        self.hooks = hooks or NoLogging()
        self.hooks.bind(self)

        n = self.cfg.num_nodes
        #: Applied vector timestamp (invalidations reflected in the page table).
        self.vt = VectorClock.zero(n)
        #: All interval records this node knows about.
        self.table = IntervalTable()
        #: Local bundle counter: increments at every release/barrier.
        self.interval_index = 0
        #: Acquires completed within the current interval (log-window tag).
        self.acq_seq = 0
        #: Interval-ending sync operations completed (failure-point index).
        self.seal_count = 0
        #: Early diff flushes performed within the current interval.
        self.interval_parts = 0
        #: Barriers this node has completed (barrier episode number).
        self.barrier_episode = 0

        #: Per-home-page update history:
        #: page -> [(writer, vt_index, part, vt)].
        self.home_events: Dict[int, List[Tuple[int, int, int, VectorClock]]] = {}
        for p in self.pagetable.home_pages():
            self.pagetable.entry(p).version = VectorClock.zero(n)
            self.home_events[p] = []

        #: Under-approximation of what each peer's interval table covers
        #: (used to filter records piggybacked on releases/check-ins).
        self.peer_known_vt: Dict[int, VectorClock] = {
            i: VectorClock.zero(n) for i in range(n)
        }

        # manager state (populated lazily; every node can manage locks)
        self.lock_states: Dict[int, LockState] = {}
        self.barrier_state = (
            BarrierState(n, on_event=self._manager_event,
                         clock=lambda: self.sim.now,
                         gather=self.stats.recorder("barrier_gather"))
            if node_id == 0 else None
        )

        #: Reply-routing registry: (kind, key) -> Signal for the main process.
        self._expected: Dict[Tuple[str, Any], Signal] = {}
        #: Failure-point probes (set by the harness / failure injector).
        self.probes: List[ProbeFn] = []
        #: Optional periodic checkpointer (set by the harness).
        self.checkpointer: Optional[Any] = None
        #: Home-replication endpoint (set by the system when the run is
        #: configured with ``replication >= 2``; None keeps every code
        #: path byte-identical to the unreplicated protocol).
        self.replicator: Optional[Any] = None
        #: In-flight overlapped log flush (double-buffered logger).
        self._pending_flush: Optional[Signal] = None

    # ==================================================================
    # helpers
    # ==================================================================
    def lock_manager(self, lock_id: int) -> int:
        """Static lock-to-manager assignment (``lock_id mod n``)."""
        return lock_id % self.cfg.num_nodes

    def _lock_state(self, lock_id: int) -> LockState:
        if self.lock_manager(lock_id) != self.id:
            raise ProtocolError(f"node {self.id} does not manage lock {lock_id}")
        state = self.lock_states.get(lock_id)
        if state is None:
            state = self.lock_states[lock_id] = LockState(
                lock_id, on_event=self._manager_event,
                clock=lambda: self.sim.now,
                waits=self.stats.recorder("lock_queue_wait"),
            )
        return state

    def _trace(self, event: str, detail: Any = None) -> None:
        """Record a protocol event on the system tracer (off by default)."""
        self.system.tracer.record(self.sim.now, self.id, event, detail)

    @property
    def _tracing(self) -> bool:
        """Whether structured events should be built (guards dict costs).

        Checks the module-level :data:`repro.sim.trace.TRACING_ACTIVE`
        flag first so tracing-off runs pay one module attribute load,
        never a per-object property chain.
        """
        return _trc.TRACING_ACTIVE and self.system.tracer.enabled

    def _span(
        self,
        name: str,
        cat: str,
        strand: str = "main",
        detail: Any = None,
    ) -> int:
        """Open a causal span at the current virtual time (-1 when off)."""
        if not self._tracing:
            return -1
        return self.system.tracer.begin(
            self.sim.now, self.id, name, cat, strand=strand, detail=detail
        )

    def _span_end(self, sid: int, detail: Any = None) -> None:
        """Close a span; optionally replace its detail (e.g. with the
        edge id of the message that ended a wait)."""
        if sid < 0:
            return
        tracer = self.system.tracer
        if detail is not None and sid < len(tracer.spans):
            tracer.spans[sid].detail = detail
        tracer.end(sid, self.sim.now)

    def _manager_event(self, event: str, detail: dict) -> None:
        """Trace sink for manager-side lock/barrier state machines."""
        if self._tracing:
            self._trace(event, detail)

    def _on_page_transition(
        self, page: int, old: PageState, new: PageState, reason: str
    ) -> None:
        """Trace sink for page-table state-machine transitions."""
        if self._tracing:
            self._trace(
                Ev.PAGE_STATE,
                {
                    "page": page,
                    "from": old.value,
                    "to": new.value,
                    "reason": reason,
                    "home": self.pagetable.entry(page).home,
                },
            )

    def expect(self, kind: str, key: Any) -> Signal:
        """Register interest in one future reply message."""
        k = (kind, key)
        if k in self._expected:
            raise ProtocolError(f"node {self.id}: duplicate expectation {k}")
        sig = Signal(f"n{self.id}.{kind}.{key}")
        self._expected[k] = sig
        return sig

    def _deliver_expected(self, kind: str, key: Any, msg: NetMessage) -> None:
        sig = self._expected.pop((kind, key), None)
        if sig is None:
            raise ProtocolError(
                f"node {self.id}: unexpected {kind} (key={key!r}) from {msg.src}"
            )
        sig.trigger(msg)

    def _send(self, dst: int, kind: str, payload: Any) -> Generator[Any, Any, None]:
        yield from self.net.send(
            NetMessage(src=self.id, dst=dst, kind=kind, payload=payload,
                       size=payload.nbytes)
        )

    def _post(self, dst: int, kind: str, payload: Any) -> None:
        """Fire-and-forget send without charging caller CPU (handler path)."""
        self.net.post(
            NetMessage(src=self.id, dst=dst, kind=kind, payload=payload,
                       size=payload.nbytes)
        )

    # ==================================================================
    # server loop: asynchronous protocol endpoint
    # ==================================================================
    def server_loop(self) -> Generator[Any, Any, None]:
        """Field incoming protocol messages forever (killed at shutdown)."""
        mbox = self.net.mailbox(self.id)
        kinds = self.SERVER_KINDS
        is_server_kind = lambda m: m.kind in kinds  # noqa: E731 - hoisted
        while True:
            msg: NetMessage = yield mbox.get(is_server_kind)
            sid = -1
            if _trc.TRACING_ACTIVE and self._tracing:
                sid = self._span(
                    f"handle_{msg.kind}", "handler", strand="server",
                    detail={"eid": msg.obs_eid, "from": msg.src},
                )
            yield from self._dispatch(msg)
            self._span_end(sid)

    def _dispatch(self, msg: NetMessage) -> Generator[Any, Any, None]:
        kind = msg.kind
        if kind == "page_req":
            yield from self._serve_page(msg.payload)
        elif kind == "diff":
            yield from self._apply_incoming_diffs(msg.payload)
        elif kind == "lock_req":
            yield from self._manage_lock_request(msg.payload)
        elif kind == "lock_rel":
            yield from self._manage_lock_release(msg.payload)
        elif kind == "barrier_checkin":
            self._manage_barrier_checkin(msg.payload)
        elif kind == "page_reply":
            self._deliver_expected(kind, msg.payload.page, msg)
        elif kind == "diff_ack":
            self._deliver_expected(kind, msg.payload.home, msg)
        elif kind == "lock_grant":
            self._deliver_expected(kind, msg.payload.lock_id, msg)
        elif kind == "barrier_release":
            self._deliver_expected(kind, msg.payload.barrier_id, msg)
        elif kind == "replica_update":
            yield from self._apply_replica_update(msg.payload)
        elif kind == "replica_ack":
            self._on_replica_ack(msg.payload)
        else:
            raise ProtocolError(f"node {self.id}: unknown message kind {kind!r}")

    # ------------------------------------------------------------------
    def _serve_page(self, req: PageRequest) -> Generator[Any, Any, None]:
        """Home side of a fault: ship the *committed* copy and its version.

        When the home itself holds the page dirty with a twin (the CCL
        home-write-logging mode), the twin is the committed view: it
        carries every applied remote diff (see
        :meth:`_apply_incoming_diffs`) but none of the home's
        uncommitted in-progress writes.  Serving it keeps every byte a
        fetcher ever sees attributable to a versioned update, which is
        what lets recovery reconstruct fetched pages bit-exactly.
        Without a twin (ML / no logging) the live frame is served, as
        plain HLRC does; ML recovery is unaffected because it logs the
        served bytes verbatim.
        """
        entry = self.pagetable.entry(req.page)
        if entry.home != self.id:
            raise ProtocolError(
                f"node {self.id} asked to serve page {req.page} homed at {entry.home}"
            )
        # copying the page out of the frame costs CPU on the home
        yield self.cfg.cpu.twin_copy_per_byte_s * self.cfg.page_size
        source = entry.twin if entry.twin is not None else self.memory.page_bytes(req.page)
        reply = PageReply(req.page, source.copy(), entry.version)
        self.stats.count("pages_served")
        if self._tracing:
            self._trace(
                Ev.PAGE_SERVE,
                {
                    "page": req.page,
                    "to": req.requester,
                    "crc": zlib.crc32(source.tobytes()),
                    "version": list(entry.version.as_tuple())
                    if entry.version is not None
                    else None,
                },
            )
        self._post(req.requester, "page_reply", reply)

    def _apply_incoming_diffs(self, batch: DiffBatch) -> Generator[Any, Any, None]:
        """Asynchronous update handler (paper Figure 2, bottom).

        Applies received diffs to home copies, records the update event,
        acknowledges, and discards the diffs.
        """
        nbytes = sum(d.word_count for d in batch.diffs) * 4
        yield self.cfg.cpu.diff_apply_per_byte_s * nbytes
        for d in batch.diffs:
            entry = self.pagetable.entry(d.page)
            if entry.home != self.id:
                raise ProtocolError(
                    f"diff for page {d.page} sent to non-home node {self.id}"
                )
            apply_diff(d, self.memory.page_bytes(d.page))
            if entry.twin is not None:
                # keep the committed view current: the twin tracks every
                # applied remote diff so it can be served to fetchers,
                # and so the end-of-interval home diff captures only the
                # home's own words
                apply_diff(d, entry.twin)
            entry.version = entry.version.merge(batch.vt)
            self.home_events[d.page].append(
                (batch.writer, batch.interval_index, batch.part, batch.vt)
            )
            self.stats.count("diffs_applied")
            self.stats.count("diff_bytes_applied", d.nbytes)
        if self._tracing:
            self._trace(
                Ev.DIFF_APPLY,
                {
                    "writer": batch.writer,
                    "index": batch.interval_index,
                    "part": batch.part,
                    "pages": [d.page for d in batch.diffs],
                    "vt": list(batch.vt.as_tuple()),
                },
            )
        self.hooks.notify_update_received(batch)
        if self.replicator is not None:
            self.replicator.record_update(batch)
        self._post(batch.writer, "diff_ack",
                   DiffAck(batch.writer, batch.interval_index, self.id))

    def _apply_replica_update(self, upd: ReplicaUpdate) -> Generator[Any, Any, None]:
        """Follower side of home replication: mirror one sealed delta.

        Applies the primary's accumulated home updates to the local
        mirror frames and acknowledges -- or rejects the whole update
        when epoch fencing says the sender is a deposed primary."""
        rep = self.replicator
        if rep is None:
            raise ProtocolError(
                f"node {self.id} received a replica_update without a replicator"
            )
        nbytes = sum(
            d.word_count for _w, _i, _p, _vt, diffs in upd.entries for d in diffs
        ) * 4
        yield self.cfg.cpu.diff_apply_per_byte_s * nbytes
        accepted = rep.apply_update(upd, self.sim.now)
        self.stats.count("mirrors_applied" if accepted else "mirrors_fenced")
        if self._tracing:
            self._trace(
                "replica_update",
                {"primary": upd.primary, "epoch": upd.epoch,
                 "seal": upd.seal, "upto": upd.upto, "accepted": accepted},
            )
        self._post(upd.primary, "replica_ack",
                   ReplicaAck(upd.primary, self.id, upd.epoch, upd.seal, accepted))

    def _on_replica_ack(self, ack: ReplicaAck) -> None:
        """Primary side: one follower's mirror copy landed (or was fenced)."""
        rep = self.replicator
        if rep is None:
            raise ProtocolError(
                f"node {self.id} received a replica_ack without a replicator"
            )
        rep.on_ack(ack, self.sim.now)

    # ------------------------------------------------------------------
    # lock management (manager side)
    # ------------------------------------------------------------------
    def _grant_records(self, requester_vt: VectorClock) -> List[IntervalRecord]:
        return self.table.records_not_covered_by(requester_vt)

    def _manage_lock_request(self, req: LockRequest) -> Generator[Any, Any, None]:
        state = self._lock_state(req.lock_id)
        if state.try_acquire(req.requester, req.vt):
            yield from self._hand_lock(state, req.requester, req.vt)

    def _manage_lock_release(self, rel: LockRelease) -> Generator[Any, Any, None]:
        self.table.add_all(rel.records)
        state = self._lock_state(rel.lock_id)
        nxt = state.release(rel.releaser)
        if nxt is not None:
            yield from self._hand_lock(state, nxt[0], nxt[1])

    def _hand_lock(
        self, state: LockState, to: int, requester_vt: VectorClock
    ) -> Generator[Any, Any, None]:
        records = self._grant_records(requester_vt)
        if to == self.id:
            # the manager itself is acquiring: short-circuit locally
            sig = self._expected.pop(("local_grant", state.lock_id), None)
            if sig is None:
                raise ProtocolError(
                    f"manager {self.id} granted own lock {state.lock_id} "
                    "without a local waiter"
                )
            sig.trigger(records)
        else:
            yield from self._send(to, "lock_grant", LockGrant(state.lock_id, records))

    # ------------------------------------------------------------------
    # barrier management (manager side)
    # ------------------------------------------------------------------
    def _manage_barrier_checkin(self, msg: BarrierCheckin) -> None:
        if self.barrier_state is None:
            raise ProtocolError(f"node {self.id} is not the barrier manager")
        self.table.add_all(msg.records)
        self.barrier_state.checkin(msg.node, msg.vt, msg.episode)

    # ==================================================================
    # application-facing operations (run on the app's simulated process)
    # ==================================================================
    def compute(self, flops: float) -> Generator[Any, Any, None]:
        """Charge ``flops`` of application work to the virtual clock."""
        dt = self.cfg.cpu.compute_time(flops)
        self.stats.charge("compute", dt)
        sid = self._span("compute", "cpu")
        yield dt
        self._span_end(sid)

    def idle(self, seconds: float) -> Generator[Any, Any, None]:
        """Charge raw wall time (I/O-ish application phases)."""
        self.stats.charge("compute", seconds)
        sid = self._span("idle", "cpu")
        yield seconds
        self._span_end(sid)

    # ------------------------------------------------------------------
    def acquire(self, lock_id: int) -> Generator[Any, Any, None]:
        """Lock acquire: fetch ownership + apply piggybacked notices."""
        osid = -1 if not self._tracing else self._span("acquire", "sync", detail={"lock": lock_id})
        yield self.cfg.cpu.sync_overhead_s
        if self.hooks.flush_at_sync_entry:
            fsid = -1 if not self._tracing else self._span("log_flush", "disk", detail={"mode": "sync"})
            yield from self.hooks.sync_entry_flush()
            self._span_end(fsid)
        t0 = self.sim.now
        mgr = self.lock_manager(lock_id)
        wsid = -1 if not self._tracing else self._span("lock_wait", "wait", detail={"lock": lock_id})
        if mgr == self.id:
            records = yield from self._acquire_local(lock_id)
            self._span_end(wsid)
        else:
            sig = self.expect("lock_grant", lock_id)
            yield from self._send(mgr, "lock_req",
                                  LockRequest(lock_id, self.id, self.vt))
            msg = yield sig
            self._span_end(wsid, detail={"lock": lock_id, "eid": msg.obs_eid})
            records = msg.payload.records
            known = self.peer_known_vt[mgr]
            for r in records:
                known = known.merge(r.vt)
            self.peer_known_vt[mgr] = known
        self.stats.charge("sync", self.sim.now - t0)
        self.stats.observe("lock_acquire", self.sim.now - t0)
        self.stats.count("lock_acquires")
        if self._tracing:
            self._trace("acquire", lock_id)
        yield from self._apply_notices(records)
        self.acq_seq += 1
        if self._tracing:
            self._trace(
                Ev.LOCK_ACQUIRED,
                {"lock": lock_id, "vt": list(self.vt.as_tuple())},
            )
        self.hooks.notify_notices_received(records, self.acq_seq)
        self._span_end(osid)

    def _acquire_local(self, lock_id: int) -> Generator[Any, Any, List[IntervalRecord]]:
        state = self._lock_state(lock_id)
        if state.try_acquire(self.id, self.vt):
            return self._grant_records(self.vt)
        sig = self.expect("local_grant", lock_id)
        records = yield sig
        return records

    # ------------------------------------------------------------------
    def release(self, lock_id: int) -> Generator[Any, Any, None]:
        """Lock release: close the interval, flush diffs + log, hand off."""
        osid = -1 if not self._tracing else self._span("release", "sync", detail={"lock": lock_id})
        yield self.cfg.cpu.sync_overhead_s
        if self.hooks.flush_at_sync_entry:
            fsid = -1 if not self._tracing else self._span("log_flush", "disk", detail={"mode": "sync"})
            yield from self.hooks.sync_entry_flush()
            self._span_end(fsid)
        yield from self._end_interval()
        self._fire_probes()
        # ship the sealed home-state delta to this home's replica group;
        # the entries are captured synchronously at the probe instant, so
        # the mirror a follower holds for seal s is bit-identical to the
        # home state the seal-s failure probe snapshots
        if self.replicator is not None:
            yield from self.replicator.seal_mirror(self)
        if self._tracing:
            self._trace(
                Ev.LOCK_RELEASED,
                {"lock": lock_id, "vt": list(self.vt.as_tuple())},
            )
        mgr = self.lock_manager(lock_id)
        if mgr == self.id:
            rel = LockRelease(lock_id, self.id, [])
            yield from self._manage_lock_release(rel)
        else:
            records = self.table.records_not_covered_by(self.peer_known_vt[mgr])
            yield from self._send(mgr, "lock_rel",
                                  LockRelease(lock_id, self.id, records))
            self.peer_known_vt[mgr] = self.peer_known_vt[mgr].merge(self.vt)
        self.stats.count("lock_releases")
        if self._tracing:
            self._trace("release", lock_id)
        self._span_end(osid)

    # ------------------------------------------------------------------
    def barrier(self, barrier_id: int = 0) -> Generator[Any, Any, None]:
        """Barrier: close the interval, then all-to-all notice exchange."""
        osid = -1 if not self._tracing else self._span("barrier", "sync", detail={"barrier": barrier_id})
        yield self.cfg.cpu.sync_overhead_s
        if self.hooks.flush_at_sync_entry:
            fsid = -1 if not self._tracing else self._span("log_flush", "disk", detail={"mode": "sync"})
            yield from self.hooks.sync_entry_flush()
            self._span_end(fsid)
        yield from self._end_interval()
        self._fire_probes()
        # see release(): mirror capture is synchronous with the probe
        if self.replicator is not None:
            yield from self.replicator.seal_mirror(self)
        ep = self.barrier_episode
        if self._tracing:
            self._trace(
                Ev.BARRIER_ENTER,
                {"barrier": barrier_id, "episode": ep,
                 "vt": list(self.vt.as_tuple())},
            )
        t0 = self.sim.now
        if self.id == 0:
            yield from self._barrier_as_manager(barrier_id)
        else:
            yield from self._barrier_as_worker(barrier_id)
        if self._tracing:
            self._trace(
                Ev.BARRIER_EXIT,
                {"barrier": barrier_id, "episode": ep,
                 "vt": list(self.vt.as_tuple())},
            )
        self.stats.charge("sync", self.sim.now - t0)
        self.stats.observe("barrier", self.sim.now - t0)
        self.stats.count("barriers")
        if self._tracing:
            self._trace("barrier", barrier_id)
        # after a barrier every node's history covers the global cut, so
        # interval records at or below it can never be requested again
        pruned = self.table.prune_covered_by(self.vt)
        if pruned:
            self.stats.count("records_pruned", pruned)
        if self.checkpointer is not None:
            yield from self.checkpointer.maybe_take_barrier(self)
        self._span_end(osid)

    def _barrier_as_worker(self, barrier_id: int) -> Generator[Any, Any, None]:
        mgr = 0
        records = self.table.records_not_covered_by(self.peer_known_vt[mgr])
        sig = self.expect("barrier_release", barrier_id)
        wsid = -1 if not self._tracing else self._span("barrier_wait", "wait", detail={"barrier": barrier_id})
        yield from self._send(
            mgr, "barrier_checkin",
            BarrierCheckin(barrier_id, self.id, self.barrier_episode,
                           self.vt, records),
        )
        msg = yield sig
        self._span_end(wsid, detail={"barrier": barrier_id, "eid": msg.obs_eid})
        self.barrier_episode += 1
        yield from self._apply_notices(msg.payload.records)
        self.hooks.notify_notices_received(msg.payload.records, 0)
        # after a barrier everyone's history is global: the manager covers it
        self.peer_known_vt[mgr] = self.vt

    def _barrier_as_manager(self, barrier_id: int) -> Generator[Any, Any, None]:
        assert self.barrier_state is not None
        all_in = self.barrier_state.checkin(self.id, self.vt, self.barrier_episode)
        self.barrier_episode += 1
        wsid = -1 if not self._tracing else self._span("barrier_wait", "wait", detail={"barrier": barrier_id})
        yield all_in
        self._span_end(wsid)
        participants = self.barrier_state.participant_vts()
        for node, vt in participants:
            if node == self.id:
                continue
            records = self.table.records_not_covered_by(vt)
            yield from self._send(node, "barrier_release",
                                  BarrierRelease(barrier_id, records))
        own = self.table.records_not_covered_by(self.vt)
        yield from self._apply_notices(own)
        self.hooks.notify_notices_received(own, 0)
        for node, _vt in participants:
            self.peer_known_vt[node] = self.peer_known_vt[node].merge(self.vt)
        self.barrier_state.next_episode()

    # ------------------------------------------------------------------
    def _apply_notices(
        self, records: List[IntervalRecord]
    ) -> Generator[Any, Any, None]:
        """Invalidate remote copies named by uncovered interval records.

        A noticed page the node currently holds *dirty* (possible under
        false sharing, when the notice travels a lock chain mid-interval)
        is diffed to its home first -- the "early diff flush" of
        TreadMarks-style protocols -- so local modifications survive the
        invalidation.
        """
        to_invalidate: List[int] = []
        seen: set[int] = set()
        for r in records:
            if self.vt.covers_interval(r.node, r.index):
                continue
            self.table.add(r)
            if r.node != self.id:
                for p in r.pages:
                    if p in seen:
                        continue
                    entry = self.pagetable.entry(p)
                    if entry.home == self.id:
                        continue  # home copies are always valid
                    if entry.state is PageState.INVALID:
                        continue
                    if entry.version is not None and entry.version.dominates(r.vt):
                        continue  # copy already includes these updates
                    seen.add(p)
                    to_invalidate.append(p)
            self.vt = self.vt.merge(r.vt)
        dirty_hit = [
            p
            for p in to_invalidate
            if self.pagetable.entry(p).state is PageState.DIRTY
        ]
        if dirty_hit:
            yield from self._early_diff_flush(dirty_hit)
        for p in to_invalidate:
            self.pagetable.invalidate(p)
            self.stats.count("invalidations")

    def _early_diff_flush(self, pages: List[int]) -> Generator[Any, Any, None]:
        """Diff dirty pages to their homes before invalidating them."""
        cpu = self.cfg.cpu
        by_home: Dict[int, List[Diff]] = {}
        scan_cost = 0.0
        early_vt = self.vt.tick(self.id)
        vt_index = self.vt[self.id]
        part = self.interval_parts + 1
        for p in pages:
            entry = self.pagetable.entry(p)
            scan_cost += cpu.diff_scan_per_byte_s * self.cfg.page_size
            d = create_diff(p, entry.twin, self.memory.page_bytes(p))
            self.pagetable.drop_twin(p)
            if d.is_empty:
                continue
            by_home.setdefault(entry.home, []).append(d)
            if self._tracing:
                self._trace(
                    Ev.EARLY_DIFF,
                    {
                        "page": p,
                        "part": part,
                        "vt": list(early_vt.as_tuple()),
                        "runs": [[off, len(words)] for off, words in d.runs],
                    },
                )
            self.hooks.notify_early_diff(d, part, early_vt)
            self.stats.count("early_diffs")
            self.stats.count("diff_bytes_sent", d.nbytes)
        if scan_cost:
            self.stats.charge("diff", scan_cost)
            ssid = self._span("diff_scan", "cpu",
                              detail={"pages": len(pages), "part": part})
            yield scan_cost
            self._span_end(ssid)
        if not by_home:
            return
        self.interval_parts = part
        ack_sigs: List[Signal] = []
        for home, diffs in sorted(by_home.items()):
            batch = DiffBatch(self.id, vt_index, early_vt, diffs, part=part)
            if self._tracing:
                self._trace(
                    Ev.DIFF_SEND,
                    {
                        "home": home,
                        "index": vt_index,
                        "part": part,
                        "pages": [d.page for d in diffs],
                        "vt": list(early_vt.as_tuple()),
                    },
                )
            ack_sigs.append(self.expect("diff_ack", home))
            yield from self._send(home, "diff", batch)
        t0 = self.sim.now
        wsid = self._span("diff_wait", "wait",
                          detail={"interval": vt_index, "part": part})
        yield AllOf(ack_sigs)
        self._span_end(wsid)
        self.stats.charge("diff_wait", self.sim.now - t0)
        if self._tracing:
            self._trace(
                Ev.DIFF_ACKED,
                {"index": vt_index, "part": part, "homes": sorted(by_home)},
            )

    # ------------------------------------------------------------------
    def _end_interval(self) -> Generator[Any, Any, None]:
        """Close the current interval (paper Figures 2-3, failure-free path).

        Creates diffs for dirty pages, flushes them to their homes, lets
        the logging protocol flush overlapped with the ACK wait, and
        advances the interval/bundle counters.
        """
        cpu = self.cfg.cpu
        dirty = self.pagetable.take_dirty()
        remote_diffs: List[Diff] = []
        home_diffs: List[Diff] = []
        new_vt: Optional[VectorClock] = None
        record: Optional[IntervalRecord] = None

        if dirty:
            vt_index = self.vt[self.id]
            new_vt = self.vt.tick(self.id)
            scan_cost = 0.0
            for p in dirty:
                entry = self.pagetable.entry(p)
                if entry.home == self.id:
                    if entry.twin is not None:  # home-write logging (CCL)
                        scan_cost += cpu.diff_scan_per_byte_s * self.cfg.page_size
                        d = create_diff(p, entry.twin, self.memory.page_bytes(p))
                        self.pagetable.drop_twin(p)
                        if not d.is_empty or self.hooks.log_empty_home_diffs:
                            # record the self-update only when a logged
                            # diff backs it, so reconstruction histories
                            # never reference content-free writes --
                            # unless the protocol logs empty home diffs
                            # precisely so every version merge on a home
                            # page is log- and mirror-backed (failover)
                            home_diffs.append(d)
                            self.home_events[p].append(
                                (self.id, vt_index, 0, new_vt)
                            )
                    else:
                        self.home_events[p].append((self.id, vt_index, 0, new_vt))
                    entry.version = entry.version.merge(new_vt)
                elif entry.state is PageState.INVALID:
                    # the page was early-flushed (diffed + invalidated by
                    # a mid-interval notice) and not touched since; its
                    # modifications are already at the home
                    continue
                else:
                    if entry.twin is None:
                        raise ProtocolError(
                            f"dirty remote page {p} has no twin on node {self.id}"
                        )
                    scan_cost += cpu.diff_scan_per_byte_s * self.cfg.page_size
                    d = create_diff(p, entry.twin, self.memory.page_bytes(p))
                    self.pagetable.drop_twin(p)
                    self.pagetable.set_state(p, PageState.CLEAN, "seal")
                    entry.version = entry.version.merge(new_vt) if entry.version else new_vt
                    if not d.is_empty:
                        remote_diffs.append(d)
            if scan_cost:
                self.stats.charge("diff", scan_cost)
                ssid = self._span("diff_scan", "cpu",
                                  detail={"pages": len(dirty)})
                yield scan_cost
                self._span_end(ssid)
            record = IntervalRecord(self.id, vt_index, new_vt, tuple(dirty))
            self.stats.count("diffs_created", len(remote_diffs))
            self.stats.count(
                "diff_bytes_sent", sum(d.nbytes for d in remote_diffs)
            )

        # let the logging protocol capture the interval before anything
        # is sent (CCL logs its own diffs; ML has nothing to do here)
        self.hooks.notify_interval_end(
            self.interval_index,
            new_vt if new_vt is not None else self.vt,
            remote_diffs,
            home_diffs,
            record,
        )

        # the replication layer mirrors the home-side delta of this
        # interval: the node's own committed home writes join the queue
        # here, in the same order CCL logs them
        if self.replicator is not None and home_diffs:
            assert record is not None and new_vt is not None
            self.replicator.record_home_writes(home_diffs, record.index, new_vt)

        # flush diffs to the homes of the written pages
        ack_sigs: List[Signal] = []
        by_home: Dict[int, List[Diff]] = {}
        if remote_diffs:
            for d in remote_diffs:
                by_home.setdefault(self.pagetable.entry(d.page).home, []).append(d)
            assert new_vt is not None and record is not None
            for home, diffs in sorted(by_home.items()):
                batch = DiffBatch(self.id, record.index, new_vt, diffs)
                if self._tracing:
                    self._trace(
                        Ev.DIFF_SEND,
                        {
                            "home": home,
                            "index": record.index,
                            "part": 0,
                            "pages": [d.page for d in diffs],
                            "vt": list(new_vt.as_tuple()),
                        },
                    )
                ack_sigs.append(self.expect("diff_ack", home))
                yield from self._send(home, "diff", batch)

        # Double-buffered logging: one flush may be in flight.  If the
        # previous interval's flush has not yet drained, the disk is the
        # bottleneck and we absorb the backpressure here; otherwise the
        # flush below proceeds entirely in the shadow of the ACK wait
        # and the ensuing synchronisation (paper Figures 2-3: the node
        # waits for acknowledgements, never for its own disk).
        if self._pending_flush is not None and not self._pending_flush.triggered:
            t1 = self.sim.now
            stall_sid = self._span("flush_stall", "wait")
            yield self._pending_flush
            self._span_end(stall_sid)
            self.stats.charge("log_flush", self.sim.now - t1)
        self._pending_flush = self.hooks.overlapped_flush()
        if self._pending_flush is not None and self._tracing:
            fsid = self._span(
                "log_flush", "disk", strand="disk",
                detail={"mode": "async", "interval": self.interval_index},
            )
            tracer = self.system.tracer
            sim = self.sim
            self._pending_flush.add_callback(
                lambda _v, s=fsid: tracer.end(s, sim.now)
            )

        if ack_sigs:
            t0 = self.sim.now
            wsid = self._span(
                "diff_wait", "wait",
                detail={"interval": self.interval_index, "part": 0},
            )
            yield AllOf(ack_sigs)
            self._span_end(wsid)
            self.stats.charge("diff_wait", self.sim.now - t0)
            self.stats.observe("diff_wait", self.sim.now - t0)
            if self._tracing:
                assert record is not None
                self._trace(
                    Ev.DIFF_ACKED,
                    {"index": record.index, "part": 0, "homes": sorted(by_home)},
                )

        if record is not None:
            assert new_vt is not None
            self.table.add(record)
            self.vt = new_vt
            if self._tracing:
                self._trace(
                    Ev.INTERVAL_END,
                    {
                        "interval": record.index,
                        "vt": list(new_vt.as_tuple()),
                        "pages": list(record.pages),
                        "writes": [
                            {
                                "page": d.page,
                                "runs": [[off, len(words)] for off, words in d.runs],
                            }
                            for d in remote_diffs + home_diffs
                        ],
                    },
                )
        if self._tracing:
            self._trace("seal", self.interval_index)
        self.interval_index += 1
        self.acq_seq = 0
        self.interval_parts = 0
        self.seal_count += 1
        if self.checkpointer is not None:
            yield from self.checkpointer.maybe_take(self)

    def _fire_probes(self) -> None:
        for probe in self.probes:
            probe(self, self.seal_count)

    # ==================================================================
    # page access (explicit annotations standing in for VM traps)
    # ==================================================================
    def ensure_read(self, pages) -> Generator[Any, Any, None]:
        """Make every page readable, faulting in invalid ones."""
        for p in pages:
            entry = self.pagetable.entry(p)
            if entry.state is PageState.INVALID and entry.home != self.id:
                yield from self._fault_fetch(p)

    def ensure_write(self, pages) -> Generator[Any, Any, None]:
        """Make every page writable: fetch if invalid, twin on first write."""
        cpu = self.cfg.cpu
        for p in pages:
            entry = self.pagetable.entry(p)
            if entry.home == self.id:
                if self.hooks.wants_home_diffs and entry.twin is None:
                    yield cpu.twin_copy_per_byte_s * self.cfg.page_size
                    self.pagetable.make_twin(p, self.memory.page_bytes(p))
                self.pagetable.mark_dirty(p)
                continue
            if entry.state is PageState.INVALID:
                yield from self._fault_fetch(p)
            if entry.state is PageState.CLEAN:
                yield cpu.twin_copy_per_byte_s * self.cfg.page_size
                self.pagetable.make_twin(p, self.memory.page_bytes(p))
                self.pagetable.set_state(p, PageState.DIRTY, "write")
            self.pagetable.mark_dirty(p)

    def _fault_fetch(self, page: int) -> Generator[Any, Any, None]:
        """One page-fault round trip to the home node."""
        t0 = self.sim.now
        wsid = -1 if not self._tracing else self._span("page_fault", "wait", detail={"page": page})
        yield self.cfg.cpu.page_fault_s
        entry = self.pagetable.entry(page)
        sig = self.expect("page_reply", page)
        yield from self._send(entry.home, "page_req", PageRequest(page, self.id))
        msg = yield sig
        self._span_end(wsid, detail={"page": page, "eid": msg.obs_eid})
        reply: PageReply = msg.payload
        self.memory.page_bytes(page)[:] = reply.contents
        self.pagetable.set_state(page, PageState.CLEAN, "fetch")
        entry.version = reply.version
        self.stats.count("page_faults")
        self.stats.count("page_bytes_fetched", len(reply.contents))
        self.stats.charge("fault", self.sim.now - t0)
        self.stats.observe("page_fetch", self.sim.now - t0)
        if self._tracing:
            self._trace("fault", page)
        if self._tracing:
            self._trace(
                Ev.PAGE_FETCH,
                {
                    "page": page,
                    "home": entry.home,
                    "crc": zlib.crc32(reply.contents.tobytes()),
                    "version": list(reply.version.as_tuple())
                    if reply.version is not None
                    else None,
                },
            )
        self.hooks.notify_page_fetched(page, reply.contents, reply.version, self.acq_seq)
