"""Home-node assignment policies.

Home-based LRC designates one node per page as the repository of
updates.  Assignment strongly affects traffic: when the home of a page
is also its primary writer, releases produce no diffs for it.  The
paper's TreadMarks modification uses static assignment; we provide the
standard policies plus an explicit map for applications that align
homes with their data partition (as real HLRC applications do).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import ConfigError

__all__ = [
    "HomePolicy",
    "round_robin_homes",
    "block_homes",
    "first_page_homes",
    "explicit_homes",
]

#: A policy maps (npages, num_nodes) to a per-page home assignment.
HomePolicy = Callable[[int, int], List[int]]


def round_robin_homes(npages: int, num_nodes: int) -> List[int]:
    """Page ``p`` lives on node ``p mod n`` (TreadMarks' default)."""
    _check(npages, num_nodes)
    return [p % num_nodes for p in range(npages)]


def block_homes(npages: int, num_nodes: int) -> List[int]:
    """Contiguous page blocks per node (matches block-distributed arrays)."""
    _check(npages, num_nodes)
    per = -(-npages // num_nodes)
    return [min(p // per, num_nodes - 1) for p in range(npages)]


def first_page_homes(npages: int, num_nodes: int) -> List[int]:
    """Everything homed at node 0 (a pathological baseline for ablations)."""
    _check(npages, num_nodes)
    return [0] * npages


def explicit_homes(assignment: Sequence[int]) -> HomePolicy:
    """Wrap a pre-computed per-page assignment as a policy.

    Applications use this to co-locate each page's home with the rank
    that owns the corresponding array partition.
    """
    fixed = list(assignment)

    def policy(npages: int, num_nodes: int) -> List[int]:
        _check(npages, num_nodes)
        if len(fixed) != npages:
            raise ConfigError(
                f"explicit home map covers {len(fixed)} pages, space has {npages}"
            )
        bad = [h for h in fixed if not (0 <= h < num_nodes)]
        if bad:
            raise ConfigError(f"home ids out of range: {sorted(set(bad))}")
        return list(fixed)

    return policy


#: Registry used by the harness's ``--home-policy`` style options.
POLICIES: Dict[str, HomePolicy] = {
    "round_robin": round_robin_homes,
    "block": block_homes,
    "first": first_page_homes,
}


def _check(npages: int, num_nodes: int) -> None:
    if npages < 0 or num_nodes < 1:
        raise ConfigError(f"bad home policy arguments: {npages=} {num_nodes=}")
