"""Intervals, vector timestamps, and write-invalidation notices.

Lazy release consistency partitions each process's execution into
*intervals* delimited by synchronisation operations.  Ending an interval
produces an :class:`IntervalRecord`: the writer's id, the interval
index, a :class:`VectorClock` timestamp capturing the interval's causal
history, and the list of pages written during the interval (the
*write-invalidation notices*).

Records propagate along the synchronisation chain: a lock grant or
barrier release carries every record the recipient has not yet covered,
and the recipient invalidates its remote copies of the noticed pages.
The same records are what coherence-centric logging writes to stable
storage, and what recovery uses to rebuild the failed node's timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ProtocolError

__all__ = ["VectorClock", "IntervalRecord", "IntervalTable"]


class VectorClock:
    """An immutable vector timestamp over ``n`` nodes.

    Component ``vt[p]`` counts the completed intervals of node ``p``
    whose effects are covered.  Standard partial order:
    ``a.dominates(b)`` iff ``a[i] >= b[i]`` for every ``i``.
    """

    __slots__ = ("_v",)

    def __init__(self, values: Iterable[int]):
        self._v: Tuple[int, ...] = tuple(int(x) for x in values)
        if any(x < 0 for x in self._v):
            raise ProtocolError(f"negative vector clock component: {self._v}")

    @classmethod
    def zero(cls, n: int) -> "VectorClock":
        """The origin timestamp for an ``n``-node system."""
        return cls((0,) * n)

    # ------------------------------------------------------------------
    def tick(self, node: int) -> "VectorClock":
        """A copy with component ``node`` incremented (interval completion)."""
        v = list(self._v)
        v[node] += 1
        return VectorClock(v)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (causal join)."""
        self._check_width(other)
        return VectorClock(max(a, b) for a, b in zip(self._v, other._v))

    def dominates(self, other: "VectorClock") -> bool:
        """True iff ``self >= other`` component-wise."""
        self._check_width(other)
        return all(a >= b for a, b in zip(self._v, other._v))

    def covers_interval(self, node: int, index: int) -> bool:
        """Whether interval ``index`` of ``node`` is within this history."""
        return self._v[node] >= index + 1

    # ------------------------------------------------------------------
    def __getitem__(self, node: int) -> int:
        return self._v[node]

    def __len__(self) -> int:
        return len(self._v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._v == other._v

    def __hash__(self) -> int:
        return hash(self._v)

    def __repr__(self) -> str:
        return f"VC{self._v}"

    @property
    def total(self) -> int:
        """Sum of components; strictly increases along happens-before."""
        return sum(self._v)

    @property
    def nbytes(self) -> int:
        """Encoded size (4 bytes per component)."""
        return 4 * len(self._v)

    def as_tuple(self) -> Tuple[int, ...]:
        """The raw component tuple."""
        return self._v

    def _check_width(self, other: "VectorClock") -> None:
        if len(self._v) != len(other._v):
            raise ProtocolError(
                f"vector clock width mismatch: {len(self._v)} vs {len(other._v)}"
            )


@dataclass(frozen=True)
class IntervalRecord:
    """One completed interval and its write-invalidation notices."""

    node: int
    index: int
    vt: VectorClock
    #: Pages written during the interval (sorted page ids).
    pages: Tuple[int, ...]

    #: Encoded bytes for (node, index, page count) metadata.
    META_BYTES = 12

    @property
    def nbytes(self) -> int:
        """Encoded wire/log size: metadata + vector + 4 bytes per notice."""
        return self.META_BYTES + self.vt.nbytes + 4 * len(self.pages)

    @property
    def key(self) -> Tuple[int, int]:
        """Identity of the interval: ``(node, index)``."""
        return (self.node, self.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IR n{self.node}i{self.index} {self.vt} pages={list(self.pages)}>"


class IntervalTable:
    """A node's store of every interval record it knows about.

    Supports the two queries the protocol needs: "which records does a
    peer with timestamp ``vt`` lack?" (lock grants, barrier releases)
    and ordered enumeration for recovery reconstruction.

    Storage is per creating node, indexed by interval number -- each
    node's interval indices are dense (0, 1, 2, ...), so the uncovered
    records of node ``q`` for a peer at timestamp ``vt`` are exactly the
    slice ``[vt[q]:]``.  This keeps the hot grant/check-in query
    proportional to its *result* size rather than to the table
    (TreadMarks keeps the same per-node interval lists); long runs would
    otherwise go quadratic in the number of synchronisations.
    """

    def __init__(self) -> None:
        #: node -> records ordered by interval index (possibly with
        #: trailing gaps filled later; lock-chain delivery is causal, so
        #: gaps are transient and only ever at the tail).
        self._by_node: Dict[int, List[Optional[IntervalRecord]]] = {}
        self._count = 0

    def add(self, record: IntervalRecord) -> bool:
        """Insert a record; returns False if it was already known."""
        lst = self._by_node.setdefault(record.node, [])
        if record.index < len(lst):
            if lst[record.index] is not None:
                return False
            lst[record.index] = record
        else:
            while len(lst) < record.index:
                lst.append(None)
            lst.append(record)
        self._count += 1
        return True

    def add_all(self, records: Iterable[IntervalRecord]) -> int:
        """Insert many records; returns the number newly added."""
        return sum(1 for r in records if self.add(r))

    def get(self, node: int, index: int) -> IntervalRecord:
        """Look up one record (raises if unknown)."""
        lst = self._by_node.get(node, [])
        if index < len(lst) and lst[index] is not None:
            return lst[index]
        raise ProtocolError(f"unknown interval ({node}, {index})")

    def __contains__(self, key: Tuple[int, int]) -> bool:
        node, index = key
        lst = self._by_node.get(node, [])
        return index < len(lst) and lst[index] is not None

    def __len__(self) -> int:
        return self._count

    def records_not_covered_by(self, vt: VectorClock) -> List[IntervalRecord]:
        """Records outside ``vt``'s history, in causal (vt.total) order.

        Sorting by ``(vt.total, node, index)`` yields a linear extension
        of happens-before, so recipients can apply notices in a causally
        safe order.
        """
        out: List[IntervalRecord] = []
        for node, lst in self._by_node.items():
            start = vt[node] if node < len(vt) else 0
            for r in lst[start:]:
                if r is not None:
                    out.append(r)
        out.sort(key=lambda r: (r.vt.total, r.node, r.index))
        return out

    def all_records(self) -> List[IntervalRecord]:
        """Every known record in causal order."""
        out = [r for lst in self._by_node.values() for r in lst if r is not None]
        out.sort(key=lambda r: (r.vt.total, r.node, r.index))
        return out

    def prune_covered_by(self, vt: VectorClock) -> int:
        """Drop records covered by ``vt``; returns the number dropped.

        Safe after a barrier: every node's applied timestamp then
        dominates the barrier cut, so no future grant or check-in can
        need those records (the slice positions are preserved -- pruned
        entries become ``None``, keeping interval indices stable).
        Recovery never consults interval tables (it replays notices from
        the log), so pruning does not affect recoverability.
        """
        dropped = 0
        for node, lst in self._by_node.items():
            limit = min(vt[node] if node < len(vt) else 0, len(lst))
            for i in range(limit):
                if lst[i] is not None:
                    lst[i] = None
                    dropped += 1
        self._count -= dropped
        return dropped

    @property
    def nbytes(self) -> int:
        """Encoded size of all retained records (memory-growth stat)."""
        return sum(
            r.nbytes
            for lst in self._by_node.values()
            for r in lst
            if r is not None
        )
