"""Manager-side lock state.

Each lock is statically assigned a manager node (``lock_id mod n``,
as in TreadMarks).  The manager serialises ownership: an acquire request
either receives the lock immediately or queues FIFO; a release hands the
lock to the queue head.  Grants piggyback the write-invalidation notices
the requester lacks, which is how lazy release consistency propagates
coherence information along the lock chain.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import SynchronizationError
from ..obs.latency import LatencyRecorder
from ..sim.trace import Ev
from .interval import VectorClock

__all__ = ["LockState"]

#: Manager-side event observer: ``fn(event_name, detail_dict)``.
LockEventFn = Callable[[str, dict], None]


class LockState:
    """Ownership and wait queue of one lock at its manager.

    With a ``clock`` and a ``waits`` recorder the manager also measures
    each waiter's **queue time** (enqueue to grant) into a streaming
    latency histogram, and keeps the grant-order **holder chain** --
    both feed the lock-contention report (``repro query --report
    locks``) without requiring tracing to be on.
    """

    def __init__(
        self,
        lock_id: int,
        on_event: Optional[LockEventFn] = None,
        clock: Optional[Callable[[], float]] = None,
        waits: Optional[LatencyRecorder] = None,
    ):
        self.lock_id = lock_id
        self.held = False
        self.holder: Optional[int] = None
        #: FIFO of ``(requester, requester_vt)`` waiting for the lock.
        self.queue: Deque[Tuple[int, VectorClock]] = deque()
        self.grants = 0
        #: Optional trace emitter (the coherence sanitizer's hook).
        self.on_event = on_event
        #: Virtual clock for queue-wait measurement (``lambda: sim.now``).
        self.clock = clock
        #: Queue-wait latency histogram (shared with the node's stats).
        self.waits = waits
        #: Enqueue instants of current waiters, keyed by requester.
        self._queued_at: Dict[int, float] = {}
        #: Grant order -- the lock's holder chain.
        self.holders: List[int] = []

    def _emit(self, event: str, detail: dict) -> None:
        if self.on_event is not None:
            self.on_event(event, detail)

    def try_acquire(self, requester: int, vt: VectorClock) -> bool:
        """Grant immediately if free; otherwise enqueue.  Returns granted?"""
        if not self.held:
            self.held = True
            self.holder = requester
            self.grants += 1
            self.holders.append(requester)
            if self.waits is not None:
                self.waits.observe(0.0)
            self._emit(Ev.LOCK_GRANT, {"lock": self.lock_id, "to": requester,
                                       "queued": False})
            return True
        self.queue.append((requester, vt))
        if self.clock is not None:
            self._queued_at[requester] = self.clock()
        self._emit(Ev.LOCK_QUEUE, {"lock": self.lock_id, "requester": requester})
        return False

    def release(self, releaser: int) -> Optional[Tuple[int, VectorClock]]:
        """Release by the holder; returns the next ``(requester, vt)`` if any.

        When a waiter exists the lock stays held and ownership moves to
        it; the caller is responsible for sending the grant.
        """
        if not self.held or self.holder != releaser:
            raise SynchronizationError(
                f"lock {self.lock_id}: release by {releaser} but holder is {self.holder}"
            )
        if self.queue:
            nxt, vt = self.queue.popleft()
            self.holder = nxt
            self.grants += 1
            self.holders.append(nxt)
            if self.clock is not None:
                t_enq = self._queued_at.pop(nxt, None)
                if t_enq is not None and self.waits is not None:
                    self.waits.observe(self.clock() - t_enq)
            self._emit(Ev.LOCK_GRANT, {"lock": self.lock_id, "to": nxt,
                                       "queued": True})
            return (nxt, vt)
        self.held = False
        self.holder = None
        self._emit(Ev.LOCK_FREE, {"lock": self.lock_id, "releaser": releaser})
        return None
