"""The seam between the coherence protocol and logging protocols.

The HLRC engine calls these hooks at every coherence event; a logging
protocol (NoLogging here, traditional message logging and coherence-
centric logging in :mod:`repro.core`) decides what to record and when
to touch stable storage.  Keeping the interface in the DSM layer keeps
the dependency graph acyclic: the core package builds on the DSM, never
the other way round.

Flush scheduling is expressed by two knobs:

* :attr:`LoggingHooks.flush_at_sync_entry` -- traditional ML flushes its
  volatile log synchronously at the *entry* of every synchronisation
  operation, before any message is sent (the paper's Section 3.1).
* :meth:`LoggingHooks.overlapped_flush` -- CCL issues its flush right
  after handing diffs to the network and returns the disk-completion
  signal; the release then waits for ``max(acks, disk)``, charging only
  the excess disk time to the critical path (Section 3.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional

import numpy as np

from ..memory.diff import Diff
from ..sim import trace as _trc
from ..sim.events import Signal
from ..sim.trace import Ev
from .interval import IntervalRecord, VectorClock
from .messages import DiffBatch

if TYPE_CHECKING:  # pragma: no cover
    from .hlrc import HlrcNode

__all__ = ["LoggingHooks", "NoLogging"]


class LoggingHooks:
    """Base class: every hook is a no-op; subclasses override selectively."""

    #: Human-readable protocol name used in reports.
    name = "none"
    #: Flush the volatile log synchronously on entering acquire/release/barrier.
    flush_at_sync_entry = False
    #: Ask the coherence layer to twin home pages and produce home-write
    #: diffs at interval end (needed by CCL so surviving homes can serve
    #: their own modifications during a peer's recovery).
    wants_home_diffs = False
    #: Keep *empty* home-write diffs in the logged/mirrored interval
    #: (failover replication: every version merge on a home page must be
    #: backed by a logged entry, even a content-free one).
    log_empty_home_diffs = False

    def bind(self, node: "HlrcNode") -> None:
        """Attach to the node whose events this instance will observe."""
        self.node = node

    # ------------------------------------------------------------------
    # receipt-side events (buffer in volatile memory)
    # ------------------------------------------------------------------
    def on_notices_received(
        self, records: List[IntervalRecord], window: int
    ) -> None:
        """Write-invalidation notices arrived with a grant or barrier release.

        ``window`` is the in-interval position: 0 for notices applied at
        the interval start (barrier release), ``m`` for the ``m``-th
        lock acquire of the interval.  Recovery replays notices at the
        same positions.
        """

    def on_page_fetched(
        self, page: int, contents: np.ndarray, version: VectorClock, window: int
    ) -> None:
        """A page copy arrived from its home after a fault."""

    def on_update_received(self, batch: DiffBatch) -> None:
        """Diffs from a writer were applied to this node's home copies."""

    def on_early_diff(self, diff: Diff, part: int, vt: VectorClock) -> None:
        """A dirty page was diffed and flushed *mid-interval*.

        Happens when a write-invalidation notice arriving with a lock
        grant names a page the acquirer holds dirty: the local
        modifications are diffed to the home before the copy is
        invalidated.  CCL must log these diffs (they never reappear in
        the end-of-interval diff, whose twin is gone).  ``part`` is the
        within-interval flush number (>= 1) and ``vt`` the timestamp the
        batch carried.
        """

    # ------------------------------------------------------------------
    # interval-end events
    # ------------------------------------------------------------------
    def on_interval_end(
        self,
        interval_index: int,
        vt: VectorClock,
        remote_diffs: List[Diff],
        home_diffs: List[Diff],
        record: Optional[IntervalRecord],
    ) -> None:
        """The node closed an interval (diffs created, record built)."""

    # ------------------------------------------------------------------
    # traced entry points (the coherence layer calls these; they emit a
    # LOG_* trace event, then dispatch to the overridable hook above)
    # ------------------------------------------------------------------
    def notify_notices_received(
        self, records: List[IntervalRecord], window: int
    ) -> None:
        node = self.node
        if _trc.TRACING_ACTIVE and node.system.tracer.enabled:
            node._trace(
                Ev.LOG_NOTICES,
                {
                    "protocol": self.name,
                    "window": window,
                    "records": [[r.node, r.index] for r in records],
                },
            )
        self.on_notices_received(records, window)

    def notify_page_fetched(
        self, page: int, contents: np.ndarray, version: VectorClock, window: int
    ) -> None:
        node = self.node
        if _trc.TRACING_ACTIVE and node.system.tracer.enabled:
            node._trace(
                Ev.LOG_FETCH,
                {
                    "protocol": self.name,
                    "page": page,
                    "window": window,
                    "version": list(version.as_tuple()),
                },
            )
        self.on_page_fetched(page, contents, version, window)

    def notify_update_received(self, batch: DiffBatch) -> None:
        node = self.node
        if _trc.TRACING_ACTIVE and node.system.tracer.enabled:
            node._trace(
                Ev.LOG_UPDATE,
                {
                    "protocol": self.name,
                    "writer": batch.writer,
                    "interval": batch.interval_index,
                    "part": batch.part,
                    "pages": [d.page for d in batch.diffs],
                },
            )
        self.on_update_received(batch)

    def notify_early_diff(self, diff: Diff, part: int, vt: VectorClock) -> None:
        node = self.node
        if _trc.TRACING_ACTIVE and node.system.tracer.enabled:
            node._trace(
                Ev.LOG_EARLY_DIFF,
                {
                    "protocol": self.name,
                    "page": diff.page,
                    "part": part,
                    "vt": list(vt.as_tuple()),
                },
            )
        self.on_early_diff(diff, part, vt)

    def notify_interval_end(
        self,
        interval_index: int,
        vt: VectorClock,
        remote_diffs: List[Diff],
        home_diffs: List[Diff],
        record: Optional[IntervalRecord],
    ) -> None:
        node = self.node
        if _trc.TRACING_ACTIVE and node.system.tracer.enabled:
            node._trace(
                Ev.LOG_INTERVAL,
                {
                    "protocol": self.name,
                    "interval": interval_index,
                    "vt": list(vt.as_tuple()),
                    "remote_pages": [d.page for d in remote_diffs],
                    "home_pages": [d.page for d in home_diffs],
                },
            )
        self.on_interval_end(interval_index, vt, remote_diffs, home_diffs, record)

    # ------------------------------------------------------------------
    # flush scheduling
    # ------------------------------------------------------------------
    def sync_entry_flush(self) -> Generator[Any, Any, None]:
        """Synchronous flush at sync-operation entry (ML's policy)."""
        return
        yield  # pragma: no cover - makes this a generator

    def overlapped_flush(self) -> Optional[Signal]:
        """Issue an asynchronous flush during release (CCL's policy).

        Returns the disk-completion signal, or None when there is
        nothing to flush.
        """
        return None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def log_summary(self) -> dict:
        """Per-node logging statistics for the harness tables."""
        return {"flushes": 0, "bytes_flushed": 0, "records": 0}


class NoLogging(LoggingHooks):
    """The baseline: home-based TreadMarks without any logging."""

    name = "none"
