"""Homeless lazy release consistency (TreadMarks-style).

The protocol the paper's related work (Section 5) contrasts against:
no page has a home.  Writers keep the diffs they create in a local
**diff repository**; a fault gathers, from each writer, the diffs of
every interval that wrote the page and is not yet reflected in the
local copy, and applies them in causal order.  Consequences the paper
highlights (Section 1):

* a fault costs **one round trip per writer** with relevant diffs,
  versus home-based HLRC's single round trip to the home;
* diffs must be retained indefinitely (until a garbage-collection
  epoch), versus HLRC discarding a diff as soon as the home applied it
  -- the repository's growth is tracked in ``diff_repo_bytes``;
* there is no always-valid copy, so even a page's original writer may
  need remote diffs after an invalidation.

This implementation derives every fill from the node's *own frame*:
each frame holds the page at some version (the replicated initial image
at version zero), so a fill never transfers a page image -- only the
diffs of the uncovered intervals, requested per writer in one batch.
Pure-diff filling is the textbook protocol; production TreadMarks adds
a whole-page fast path for long histories.

Used for the home-based vs homeless comparison bench; crash recovery
for homeless LRC is prior work ([11] in the paper) and out of scope, so
only the ``none`` logging protocol is supported here.

:class:`LrcNode` reuses HLRC's synchronisation machinery (locks,
barriers, interval records, vector clocks) by subclassing
:class:`~repro.dsm.hlrc.HlrcNode` and replacing the page-data paths.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from ..errors import ProtocolError
from ..memory import PageState, create_diff
from ..memory.diff import Diff, apply_diff

from ..sim.network import NetMessage
from .hlrc import HlrcNode
from .interval import IntervalRecord, VectorClock
from .messages import MSG_FIXED_BYTES

__all__ = ["LrcNode", "LrcDiffRequest", "LrcDiffReply"]


class LrcDiffRequest:
    """Fetch of stored diffs: ``wants`` is ``[(page, interval_index)]``."""

    def __init__(self, reqid: int, requester: int,
                 wants: List[Tuple[int, int]]):
        self.reqid = reqid
        self.requester = requester
        self.wants = list(wants)

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + 8 * len(self.wants)


class LrcDiffReply:
    """Stored diffs: ``entries`` is ``[(diff, writer, index, part, vt)]``."""

    def __init__(self, reqid: int, entries):
        self.reqid = reqid
        self.entries = list(entries)

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + sum(
            d.nbytes + 12 + vt.nbytes for d, _w, _i, _p, vt in self.entries
        )


class LrcNode(HlrcNode):
    """One cluster node running homeless (TreadMarks-style) LRC."""

    SERVER_KINDS = (
        HlrcNode.SERVER_KINDS
        - {"page_req", "diff", "page_reply", "diff_ack"}
    ) | {"lrc_diff_req", "lrc_diff_reply"}

    def __init__(self, system, node_id, hooks=None):
        super().__init__(system, node_id, hooks)
        if self.hooks.name != "none":
            raise ProtocolError(
                "homeless LRC supports only the 'none' logging protocol "
                "(recovery for homeless SDSM is prior work, not this paper)"
            )
        #: The diff repository: (page, vt_index) -> [(part, vt, diff)].
        self.diff_repo: Dict[Tuple[int, int], List[Tuple[int, VectorClock, Diff]]] = {}
        #: Bytes retained in the repository (the no-GC cost the paper
        #: charges against homeless protocols).
        self.diff_repo_bytes = 0
        #: Per-page uncovered notices awaiting a fill.
        self.pending: Dict[int, List[IntervalRecord]] = {}
        self._reqid = 0
        # every frame starts as a *valid* copy at version zero (the
        # replicated initial image); no page has a home (home = -1
        # disarms the home-copy guards)
        n = self.cfg.num_nodes
        for p in range(self.pagetable.npages):
            entry = self.pagetable.entry(p)
            entry.version = VectorClock.zero(n)
            entry.state = PageState.CLEAN
            entry.home = -1
        self.home_events.clear()

    # ==================================================================
    # repository
    # ==================================================================
    def _store_diff(self, page: int, vt_index: int, part: int,
                    vt: VectorClock, diff: Diff) -> None:
        self.diff_repo.setdefault((page, vt_index), []).append((part, vt, diff))
        self.diff_repo_bytes += diff.nbytes
        self.stats.count("repo_diffs")
        self.stats.counters["repo_bytes"] = self.diff_repo_bytes

    def _serve_lrc_diffs(self, req: LrcDiffRequest) -> Generator[Any, Any, None]:
        entries = []
        for page, idx in req.wants:
            for part, vt, diff in self.diff_repo.get((page, idx), []):
                entries.append((diff, self.id, idx, part, vt))
        nbytes = sum(d.nbytes for d, *_rest in entries)
        yield self.cfg.cpu.twin_copy_per_byte_s * nbytes
        reply = LrcDiffReply(req.reqid, entries)
        self._post(req.requester, "lrc_diff_reply", reply)

    # ==================================================================
    # message dispatch: replace the home-based data paths
    # ==================================================================
    def _dispatch(self, msg: NetMessage) -> Generator[Any, Any, None]:
        kind = msg.kind
        if kind == "lrc_diff_req":
            yield from self._serve_lrc_diffs(msg.payload)
        elif kind == "lrc_diff_reply":
            self._deliver_expected(kind, msg.payload.reqid, msg)
        elif kind in ("page_req", "diff", "page_reply", "diff_ack"):
            raise ProtocolError(
                f"homeless LRC received home-based message {kind!r}"
            )
        else:
            yield from super()._dispatch(msg)

    # ==================================================================
    # notices: queue per page instead of relying on an up-to-date home
    # ==================================================================
    def _apply_notices(
        self, records: List[IntervalRecord]
    ) -> Generator[Any, Any, None]:
        to_invalidate: List[int] = []
        for r in records:
            if self.vt.covers_interval(r.node, r.index):
                continue
            self.table.add(r)
            if r.node != self.id:
                for p in r.pages:
                    entry = self.pagetable.entry(p)
                    if entry.version is not None and entry.version.dominates(r.vt):
                        continue
                    self.pending.setdefault(p, []).append(r)
                    if entry.state is not PageState.INVALID:
                        to_invalidate.append(p)
            self.vt = self.vt.merge(r.vt)
        dirty_hit = [
            p for p in dict.fromkeys(to_invalidate)
            if self.pagetable.entry(p).state is PageState.DIRTY
        ]
        # a dirty page hit by a notice: keep our words as an early diff
        # in the local repository (nothing is sent -- homeless!)
        for p in dirty_hit:
            entry = self.pagetable.entry(p)
            yield self.cfg.cpu.diff_scan_per_byte_s * self.cfg.page_size
            d = create_diff(p, entry.twin, self.memory.page_bytes(p))
            self.pagetable.drop_twin(p)
            if not d.is_empty:
                self.interval_parts += 1
                early_vt = self.vt.tick(self.id)
                self._store_diff(p, self.vt[self.id], self.interval_parts,
                                 early_vt, d)
                self.stats.count("early_diffs")
        for p in dict.fromkeys(to_invalidate):
            entry = self.pagetable.entry(p)
            if entry.state is not PageState.INVALID:
                self.pagetable.invalidate(p)
                self.stats.count("invalidations")

    # ==================================================================
    # interval end: store diffs locally, send nothing
    # ==================================================================
    def _end_interval(self) -> Generator[Any, Any, None]:
        cpu = self.cfg.cpu
        record = None
        dirty = self.pagetable.take_dirty()
        if dirty:
            vt_index = self.vt[self.id]
            new_vt = self.vt.tick(self.id)
            scan_cost = 0.0
            kept_pages = []
            for p in dirty:
                entry = self.pagetable.entry(p)
                if entry.state is PageState.INVALID:
                    kept_pages.append(p)  # early-diffed already
                    continue
                if entry.twin is None:
                    raise ProtocolError(
                        f"dirty page {p} has no twin on node {self.id}"
                    )
                scan_cost += cpu.diff_scan_per_byte_s * self.cfg.page_size
                d = create_diff(p, entry.twin, self.memory.page_bytes(p))
                self.pagetable.drop_twin(p)
                self.pagetable.set_state(p, PageState.CLEAN, "seal")
                entry.version = entry.version.merge(new_vt)
                if not d.is_empty:
                    self._store_diff(p, vt_index, 0, new_vt, d)
                    self.stats.count("diffs_created")
                kept_pages.append(p)
            if scan_cost:
                self.stats.charge("diff", scan_cost)
                yield scan_cost
            record = IntervalRecord(self.id, vt_index, new_vt, tuple(kept_pages))
            self.table.add(record)
            self.vt = new_vt
        # homeless LRC only runs under the 'none' protocol (enforced in
        # __init__), but the seal still crosses the logging seam so the
        # replay contract stays uniform across protocol variants
        self.hooks.notify_interval_end(
            self.interval_index, self.vt, [], [], record
        )
        self._trace("seal", self.interval_index)
        self.interval_index += 1
        self.acq_seq = 0
        self.interval_parts = 0
        self.seal_count += 1
        if self.checkpointer is not None:
            yield from self.checkpointer.maybe_take(self)

    # ==================================================================
    # faults: gather diffs from writers and apply onto the local frame
    # ==================================================================
    def ensure_read(self, pages) -> Generator[Any, Any, None]:
        for p in pages:
            if self.pagetable.entry(p).state is PageState.INVALID:
                yield from self._fill(p)

    def ensure_write(self, pages) -> Generator[Any, Any, None]:
        cpu = self.cfg.cpu
        for p in pages:
            entry = self.pagetable.entry(p)
            if entry.state is PageState.INVALID:
                yield from self._fill(p)
            if entry.state is PageState.CLEAN:
                yield cpu.twin_copy_per_byte_s * self.cfg.page_size
                self.pagetable.make_twin(p, self.memory.page_bytes(p))
                self.pagetable.set_state(p, PageState.DIRTY, "write")
            self.pagetable.mark_dirty(p)

    def _fill(self, page: int) -> Generator[Any, Any, None]:
        """Validate a page: fetch the uncovered diffs from their writers."""
        t0 = self.sim.now
        yield self.cfg.cpu.page_fault_s
        entry = self.pagetable.entry(page)
        have = entry.version
        needed = [
            r for r in self.pending.pop(page, [])
            if not have.dominates(r.vt)
        ]
        entries = []
        by_writer: Dict[int, List[Tuple[int, int]]] = {}
        for r in needed:
            if r.node == self.id:
                for part, vt, diff in self.diff_repo.get((page, r.index), []):
                    entries.append((diff, r.node, r.index, part, vt))
            else:
                by_writer.setdefault(r.node, []).append((page, r.index))
        # one round trip per writer -- the homeless fault cost the paper
        # contrasts with HLRC's single round trip to the home
        sigs = []
        for writer in sorted(by_writer):
            self._reqid += 1
            req = LrcDiffRequest(self._reqid, self.id, by_writer[writer])
            sigs.append(self.expect("lrc_diff_reply", self._reqid))
            yield from self._send(writer, "lrc_diff_req", req)
        for sig in sigs:
            msg = yield sig
            entries.extend(msg.payload.entries)
        frame = self.memory.page_bytes(page)
        apply_cost = 0.0
        version = have
        for diff, _w, _i, _p, vt in sorted(
            entries, key=lambda e: (e[4].total, e[1], e[2], -e[3])
        ):
            apply_diff(diff, frame)
            apply_cost += self.cfg.cpu.diff_apply_per_byte_s * 4 * diff.word_count
            version = version.merge(vt)
        for r in needed:
            version = version.merge(r.vt)
        if apply_cost:
            yield apply_cost
        self.pagetable.set_state(page, PageState.CLEAN, "fill")
        entry.version = version
        self.stats.count("page_faults")
        self.stats.count("diff_fetch_round_trips", len(sigs))
        self.stats.charge("fault", self.sim.now - t0)
        self._trace("fault", page)
