"""Protocol message payloads and their wire sizes.

Every DSM exchange is a :class:`~repro.sim.network.NetMessage` whose
``payload`` is one of the dataclasses below and whose ``size`` is the
payload's :attr:`nbytes` (the network layer adds the frame header).
Sizes are computed from real contents -- diff bytes, record encodings,
page images -- so traffic statistics are measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..memory.diff import Diff
from .interval import IntervalRecord, VectorClock

__all__ = [
    "MSG_FIXED_BYTES",
    "RelAck",
    "LockRequest",
    "LockGrant",
    "LockRelease",
    "DiffBatch",
    "DiffAck",
    "PageRequest",
    "PageReply",
    "BarrierCheckin",
    "BarrierRelease",
    "LogDiffRequest",
    "LogDiffReply",
    "ReconRequest",
    "ReconPage",
    "ReconReply",
    "ReplicaUpdate",
    "ReplicaAck",
    "PromoteRequest",
    "PromoteAck",
    "records_nbytes",
]

#: Fixed per-payload metadata (kind, ids, counts).
MSG_FIXED_BYTES = 16


def records_nbytes(records: List[IntervalRecord]) -> int:
    """Encoded size of a record list."""
    return sum(r.nbytes for r in records)


@dataclass(slots=True)
class RelAck:
    """Transport-level acknowledgement of one sequenced frame.

    Names the link and sequence number of the frame being acked; sent
    by the reliable transport (see :mod:`repro.dsm.reliable`), never by
    protocol code, and itself unsequenced.
    """

    NBYTES = 12

    #: Original sender (the ack travels back to it).
    src: int
    #: Original receiver (the acker).
    dst: int
    seq: int

    @property
    def nbytes(self) -> int:
        return self.NBYTES


@dataclass(slots=True)
class LockRequest:
    """Acquire request sent to the lock's manager node."""

    lock_id: int
    requester: int
    #: The requester's applied timestamp; the grant is filtered against it.
    vt: VectorClock

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + self.vt.nbytes


@dataclass(slots=True)
class LockGrant:
    """Ownership transfer, piggybacking uncovered write-invalidation notices."""

    lock_id: int
    records: List[IntervalRecord]

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + records_nbytes(self.records)


@dataclass(slots=True)
class LockRelease:
    """Release notification carrying the releaser's new interval records."""

    lock_id: int
    releaser: int
    records: List[IntervalRecord]

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + records_nbytes(self.records)


@dataclass(slots=True)
class DiffBatch:
    """All diffs one writer flushes to one home in one operation.

    ``part`` distinguishes flushes within one writer interval: 0 is the
    normal end-of-interval flush; 1, 2, ... are *early* flushes forced
    by mid-interval invalidations of dirty pages.  The triple
    ``(writer, interval_index, part)`` uniquely identifies a logged
    diff batch during recovery.
    """

    writer: int
    interval_index: int
    vt: VectorClock
    diffs: List[Diff]
    part: int = 0

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + self.vt.nbytes + sum(d.nbytes for d in self.diffs)


@dataclass(slots=True)
class DiffAck:
    """Home's acknowledgement that a diff batch has been applied."""

    writer: int
    interval_index: int
    home: int

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES


@dataclass(slots=True)
class PageRequest:
    """Fault-time fetch of an up-to-date page copy from its home."""

    page: int
    requester: int

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES


@dataclass(slots=True)
class PageReply:
    """Home's reply: the page image and its version timestamp."""

    page: int
    contents: np.ndarray  # uint8, one page
    version: VectorClock

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + len(self.contents) + self.version.nbytes


@dataclass(slots=True)
class BarrierCheckin:
    """Arrival at a barrier, carrying the node's new interval records.

    ``episode`` is the sender's barrier count; a fast worker may arrive
    for the next episode before the manager finishes releasing the
    current one, and the manager queues such arrivals.
    """

    barrier_id: int
    node: int
    episode: int
    vt: VectorClock
    records: List[IntervalRecord]
    #: Home-migration proposals (adaptive-home extension): (page, new_home).
    migrations: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return (
            MSG_FIXED_BYTES
            + self.vt.nbytes
            + records_nbytes(self.records)
            + 8 * len(self.migrations)
        )


@dataclass(slots=True)
class BarrierRelease:
    """Manager's check-out, carrying the records the recipient lacks."""

    barrier_id: int
    records: List[IntervalRecord]
    #: Home-migration decisions broadcast with the release (extension).
    migrations: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return (
            MSG_FIXED_BYTES
            + records_nbytes(self.records)
            + 8 * len(self.migrations)
        )


# ----------------------------------------------------------------------
# recovery-time messages
# ----------------------------------------------------------------------


@dataclass(slots=True)
class LogDiffRequest:
    """Recovery fetch of logged diffs from a surviving writer.

    ``wants`` lists exact ``(page, interval_index, part)`` triples
    recorded in the failed node's update-event metadata.  ``ranges``
    lists ``(page, lo_index, hi_index)`` queries -- "every diff you
    logged for this page in intervals lo..hi (inclusive), all parts" --
    used by locally-directed delta reconstruction: the recovering node
    derives the advanced writers of a warm page from the ``have`` and
    ``needed`` vector components, which is exact because per-writer diff
    delivery is FIFO and HLRC acknowledges diffs before a release
    completes.
    """

    requester: int
    wants: List[Tuple[int, int, int]] = field(default_factory=list)
    ranges: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + 12 * (len(self.wants) + len(self.ranges))


@dataclass(slots=True)
class LogDiffReply:
    """Logged diffs (with their interval timestamps) read from stable storage."""

    #: ``(diff, writer, interval_index, part, vt)`` tuples; the vt is the
    #: one the batch carried on the wire.
    entries: List[Tuple[Diff, int, int, int, VectorClock]]

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + sum(
            d.nbytes + 12 + vt.nbytes for d, _w, _i, _p, vt in self.entries
        )


@dataclass(slots=True)
class ReconRequest:
    """Recovery prefetch of pages *as of* given versions, batched per home.

    The recovering node sends one request per home node per prefetch
    window ("fetches the updates ... at the beginning of each time
    interval", Section 3.2), listing every
    ``(page, needed_version, have_version)`` it must reconstruct from
    that home.  ``have_version`` (may be None) is the version of the
    stale frame the recovering node still holds from an earlier install;
    when present the home answers with just the *delta* history in
    ``(have, needed]``, avoiding the checkpoint-image resend.
    """

    requester: int
    wants: List[Tuple[int, VectorClock, Optional[VectorClock]]]

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + sum(
            4 + vt.nbytes + (h.nbytes if h is not None else 0)
            for _p, vt, h in self.wants
        )


@dataclass(slots=True)
class ReconPage:
    """Per-page item in a :class:`ReconReply`.

    ``direct`` carries a usable page image (the home's frozen copy is
    exactly the needed version).  Otherwise the page must be rebuilt by
    applying the ``history`` diffs -- ``(writer, interval_index, part)``
    triples dominated by the needed version -- either onto the
    requester's retained stale frame (``delta=True``; history covers
    only ``(have, needed]``) or onto the home's ``checkpoint`` image.
    """

    page: int
    direct: Optional[np.ndarray] = None
    version: Optional[VectorClock] = None
    checkpoint: Optional[np.ndarray] = None
    delta: bool = False
    history: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        n = 8
        if self.direct is not None:
            n += len(self.direct)
        if self.version is not None:
            n += self.version.nbytes
        if self.checkpoint is not None:
            n += len(self.checkpoint)
        n += 12 * len(self.history)
        return n


@dataclass(slots=True)
class ReconReply:
    """Home's batched answer to a :class:`ReconRequest`."""

    home: int
    items: List[ReconPage] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + sum(item.nbytes for item in self.items)


# ----------------------------------------------------------------------
# home-replication messages (quorum-mirrored homes, failover recovery)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ReplicaUpdate:
    """Primary-to-follower mirror of one sealed interval's home updates.

    Sent by a replicated home at each interval seal, piggybacking on the
    seal's flush traffic.  ``entries`` replays, in home-apply order, the
    ``(writer, interval_index, part, vt, diffs)`` updates the primary
    applied to its home pages since the previous mirror; ``upto`` is the
    primary's running apply-event count after these entries, which a
    promoted follower can recount from the primary's durable log to
    resume metadata replay exactly where the mirror left off.  ``epoch``
    fences stale primaries: a follower that has acknowledged a promotion
    at a higher epoch rejects the update.
    """

    primary: int
    epoch: int
    #: Primary's seal count at capture (state version of this mirror).
    seal: int
    #: Primary's apply-event count after these entries.
    upto: int
    entries: List[Tuple[int, int, int, VectorClock, List[Diff]]]

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES + sum(
            12 + vt.nbytes + sum(d.nbytes for d in diffs)
            for _w, _i, _p, vt, diffs in self.entries
        )


@dataclass(slots=True)
class ReplicaAck:
    """Follower's acknowledgement (or epoch-fenced rejection) of a mirror."""

    primary: int
    follower: int
    epoch: int
    seal: int
    accepted: bool = True

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES


@dataclass(slots=True)
class PromoteRequest:
    """Failover fencing round: ``candidate`` claims ``primary``'s group.

    Broadcast to every survivor during recovery; an acked promotion
    advances the group epoch everywhere, so any in-flight mirror the
    stale primary still had queued is rejected on arrival.
    """

    primary: int
    candidate: int
    epoch: int

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES


@dataclass(slots=True)
class PromoteAck:
    """Survivor's acknowledgement of a promotion claim."""

    primary: int
    follower: int
    epoch: int
    accepted: bool = True

    @property
    def nbytes(self) -> int:
        return MSG_FIXED_BYTES
