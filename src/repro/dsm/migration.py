"""Adaptive home migration (extension).

Home-based LRC's costs hinge on home placement: a write to a remotely
homed page pays twin + diff + flush, while a home write is free.  Later
systems (the migrating-home protocol of Cheung et al., ORION's adaptive
homes) therefore *move* a page's home toward its writer.  This module
implements the cleanest sound variant:

**barrier-synchronised sole-writer migration** -- at every barrier,
each home proposes to hand off any of its pages that exactly one remote
node wrote during the phase; the proposals ride the check-in messages,
and the barrier release broadcasts the accepted list, so every node
updates its home table at a point of global quiescence (HLRC
acknowledges all diffs before check-in, so no coherence message is in
flight across a barrier).

Why the hand-off is a pure metadata switch: the sole writer's copy is
*bitwise equal* to the home copy -- both are ``base-at-fetch +`` the
writer's own modifications, and nobody else wrote the page since the
writer's fetch (sole writer).  No page content moves.  The old home's
copy remains valid as an ordinary cached copy; the version-dominance
check in notice application protects it from self-invalidation
naturally.

Scope: failure-free only (``none`` logging).  Combining adaptive homes
with coherence-centric recovery would need the reconstruction protocol
to track home *histories*; the paper's protocol assumes static homes,
and so does our recovery.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Set, Tuple

from ..errors import ProtocolError
from .hlrc import HlrcNode
from .messages import BarrierCheckin, BarrierRelease, DiffBatch

__all__ = ["MigratingHlrcNode"]

#: ``(page, new_home)`` hand-off decisions.
Migrations = List[Tuple[int, int]]


class MigratingHlrcNode(HlrcNode):
    """HLRC with barrier-synchronised sole-writer home migration."""

    def __init__(self, system, node_id, hooks=None):
        super().__init__(system, node_id, hooks)
        if self.hooks.name != "none":
            raise ProtocolError(
                "home migration supports only the 'none' logging protocol "
                "(recovery assumes static homes, as in the paper)"
            )
        #: Writers seen per home page since the last barrier completion.
        #: At completion this set is *complete* for the phase (diffs are
        #: acknowledged before their senders check in, and the release
        #: follows every check-in), so it rotates into
        #: :attr:`last_phase_writers`, from which the next barrier's
        #: proposals are built.  The barrier manager then validates each
        #: proposal against the in-between episode's interval records.
        self.phase_writers: Dict[int, Set[int]] = {}
        self.last_phase_writers: Dict[int, Set[int]] = {}
        from .interval import VectorClock

        #: The global cut of the previous barrier (manager only):
        #: episode records = table records beyond this cut.
        self._last_barrier_vt = VectorClock.zero(self.cfg.num_nodes)

    # ------------------------------------------------------------------
    # track who writes each home page during the phase
    # ------------------------------------------------------------------
    def _apply_incoming_diffs(self, batch: DiffBatch) -> Generator[Any, Any, None]:
        for d in batch.diffs:
            self.phase_writers.setdefault(d.page, set()).add(batch.writer)
        yield from super()._apply_incoming_diffs(batch)

    def _end_interval(self) -> Generator[Any, Any, None]:
        for p in self.pagetable.dirty_pages:
            if self.pagetable.entry(p).home == self.id:
                self.phase_writers.setdefault(p, set()).add(self.id)
        yield from super()._end_interval()

    def _propose_migrations(self) -> Migrations:
        out: Migrations = []
        for page, writers in self.last_phase_writers.items():
            if self.pagetable.entry(page).home != self.id:
                continue  # migrated away earlier; stale tracking entry
            if len(writers) == 1:
                (writer,) = writers
                if writer != self.id:
                    out.append((page, writer))
        self.last_phase_writers = {}
        return out

    def _rotate_phase(self) -> None:
        """At barrier completion the phase's writer sets are complete."""
        self.last_phase_writers = self.phase_writers
        self.phase_writers = {}

    def _apply_migrations(self, migrations: Migrations) -> None:
        from .interval import VectorClock

        for page, new_home in migrations:
            entry = self.pagetable.entry(page)
            entry.home = new_home
            if new_home == self.id:
                # the sole writer's copy *is* the home copy (see module
                # docstring); it only needs the home bookkeeping
                self.home_events.setdefault(page, [])
                if entry.version is None:  # pragma: no cover - defensive
                    entry.version = VectorClock.zero(self.cfg.num_nodes)
                self.stats.count("homes_gained")
            self.stats.count("migrations_seen")

    # ------------------------------------------------------------------
    # barrier flow: proposals ride check-ins, decisions ride releases
    # ------------------------------------------------------------------
    def _barrier_as_worker(self, barrier_id: int) -> Generator[Any, Any, None]:
        mgr = 0
        records = self.table.records_not_covered_by(self.peer_known_vt[mgr])
        sig = self.expect("barrier_release", barrier_id)
        checkin = BarrierCheckin(barrier_id, self.id, self.barrier_episode,
                                 self.vt, records)
        checkin.migrations = self._propose_migrations()
        yield from self._send(mgr, "barrier_checkin", checkin)
        msg = yield sig
        self.barrier_episode += 1
        self._rotate_phase()
        self._apply_migrations(getattr(msg.payload, "migrations", []))
        yield from self._apply_notices(msg.payload.records)
        self.hooks.notify_notices_received(msg.payload.records, 0)
        self.peer_known_vt[mgr] = self.vt

    def _manage_barrier_checkin(self, msg: BarrierCheckin) -> None:
        pending = getattr(self, "_pending_migrations", None)
        if pending is None:
            pending = self._pending_migrations = []
        pending.extend(getattr(msg, "migrations", []))
        super()._manage_barrier_checkin(msg)

    def _barrier_as_manager(self, barrier_id: int) -> Generator[Any, Any, None]:
        assert self.barrier_state is not None
        own = self._propose_migrations()
        all_in = self.barrier_state.checkin(self.id, self.vt, self.barrier_episode)
        self.barrier_episode += 1
        yield all_in
        proposals = list(getattr(self, "_pending_migrations", [])) + own
        self._pending_migrations = []
        # validate against the episode's COMPLETE write history: every
        # check-in has arrived, so the interval records beyond the last
        # barrier cut name every page written this phase.  A proposal
        # survives only if nobody but the prospective new home wrote the
        # page -- this closes the race where a diff was still in flight
        # when the old home proposed.
        episode_records = self.table.records_not_covered_by(self._last_barrier_vt)
        migrations = []
        for page, new_home in proposals:
            writers = {r.node for r in episode_records if page in r.pages}
            # the proposal says "exactly `new_home` wrote the page in the
            # previous (completed) phase"; accepting additionally requires
            # that nobody *else* wrote it in the episode since -- then the
            # writer's copy is the home copy, byte for byte
            if writers <= {new_home}:
                migrations.append((page, new_home))
            else:
                self.stats.count("migrations_rejected")
        participants = self.barrier_state.participant_vts()
        for node, vt in participants:
            if node == self.id:
                continue
            records = self.table.records_not_covered_by(vt)
            release = BarrierRelease(barrier_id, records)
            release.migrations = migrations
            yield from self._send(node, "barrier_release", release)
        self._apply_migrations(migrations)
        own_records = self.table.records_not_covered_by(self.vt)
        yield from self._apply_notices(own_records)
        self.hooks.notify_notices_received(own_records, 0)
        for node, _vt in participants:
            self.peer_known_vt[node] = self.peer_known_vt[node].merge(self.vt)
        self._last_barrier_vt = self.vt
        self._rotate_phase()
        self.barrier_state.next_episode()
