"""The declared protocol state machine: one row per message kind.

This table is the *specification* the static conformance pass
(:mod:`repro.analysis.protoflow`) checks the implementation against.
The send/handler graph extracted from the AST of ``dsm/`` must line up
with it:

* every kind sent on the wire must have a consumer (PROTO001), unless
  declared ``external`` (consumed outside ``dsm/``, e.g. by the
  recovery responders);
* a handler that mutates one of its declared ``logged_state``
  attributes must call the declared ``log_hook`` on the same path
  (PROTO002) -- the piecewise-deterministic replay contract: state a
  handler changes is reconstructible only if the corresponding log
  record was appended;
* a reply payload constructed by a handler must not sit across a
  ``raise`` before its send (PROTO003) -- an exception in the gap
  leaves the peer waiting forever.

Keeping the table in ``dsm/`` (next to the handlers) rather than in the
analysis package makes it part of the protocol's public contract; the
model checker's docs reference it as the message catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["MessageSpec", "PROTOCOL", "payload_class_names"]


@dataclass(frozen=True)
class MessageSpec:
    """Declared shape and obligations of one message kind."""

    kind: str
    #: Payload dataclass name (see :mod:`repro.dsm.messages`).
    payload: str
    #: Function names allowed to consume this kind (dispatch arm or
    #: ``expect()`` site).  Informational plus PROTO002 scoping.
    consumers: Tuple[str, ...] = ()
    #: ``self.<attr>`` names the consumer mutates that must be covered
    #: by a log record for replay to reconstruct them.
    logged_state: Tuple[str, ...] = ()
    #: ``self.hooks.<name>`` that must be called whenever any
    #: ``logged_state`` attribute is mutated in a consumer body.
    log_hook: str = ""
    #: True when the kind is consumed outside ``dsm/`` (recovery
    #: responders, transports) -- exempt from PROTO001.
    external: bool = False
    #: True for pseudo-kinds that never cross the wire (local fast
    #: paths reusing the expect() plumbing).
    internal: bool = field(default=False)


_SPECS = (
    # -- data path ------------------------------------------------------
    MessageSpec(
        "page_req", "PageRequest",
        consumers=("_serve_page",),
    ),
    MessageSpec(
        "page_reply", "PageReply",
        consumers=("_fault_fetch",),
        logged_state=("memory",),
        log_hook="notify_page_fetched",
    ),
    MessageSpec(
        "diff", "DiffBatch",
        consumers=("_apply_incoming_diffs",),
        logged_state=("home_events", "memory"),
        log_hook="notify_update_received",
    ),
    MessageSpec(
        "diff_ack", "DiffAck",
        consumers=("_end_interval", "_early_diff_flush"),
        logged_state=("vt", "interval_index"),
        log_hook="notify_interval_end",
    ),
    # -- lock path ------------------------------------------------------
    MessageSpec(
        "lock_req", "LockRequest",
        consumers=("_manage_lock_request",),
    ),
    MessageSpec(
        "lock_grant", "LockGrant",
        consumers=("acquire",),
        logged_state=("acq_seq", "peer_known_vt"),
        log_hook="notify_notices_received",
    ),
    MessageSpec(
        "lock_rel", "LockRelease",
        consumers=("_manage_lock_release",),
    ),
    MessageSpec(
        "local_grant", "LockGrant",
        consumers=("_acquire_local",),
        internal=True,
    ),
    # -- barrier path ---------------------------------------------------
    MessageSpec(
        "barrier_checkin", "BarrierCheckin",
        consumers=("_manage_barrier_checkin",),
    ),
    MessageSpec(
        "barrier_release", "BarrierRelease",
        consumers=("_barrier_as_worker",),
        logged_state=("barrier_episode", "peer_known_vt"),
        log_hook="notify_notices_received",
    ),
    # -- homeless LRC comparison protocol -------------------------------
    MessageSpec(
        "lrc_diff_req", "LrcDiffRequest",
        consumers=("_serve_lrc_diffs",),
    ),
    MessageSpec(
        "lrc_diff_reply", "LrcDiffReply",
        consumers=("_fetch_lrc_diffs", "_lrc_fault"),
    ),
    # -- reliable transport ---------------------------------------------
    MessageSpec(
        "rel_ack", "RelAck",
        consumers=("_on_deliver",),
    ),
    # -- home replication (quorum-mirrored homes) ------------------------
    MessageSpec(
        "replica_update", "ReplicaUpdate",
        consumers=("_apply_replica_update",),
    ),
    MessageSpec(
        "replica_ack", "ReplicaAck",
        consumers=("_on_replica_ack",),
    ),
    # -- recovery traffic (phase B, consumed in core/) -------------------
    MessageSpec("recon_req", "ReconRequest", external=True),
    MessageSpec("recon_reply", "ReconReply", external=True),
    MessageSpec("logdiff_req", "LogDiffRequest", external=True),
    MessageSpec("logdiff_reply", "LogDiffReply", external=True),
    # -- failover fencing (phase B, consumed in core/) -------------------
    MessageSpec("promote_req", "PromoteRequest", external=True),
    MessageSpec("promote_ack", "PromoteAck", external=True),
)

#: kind -> spec, the machine-readable protocol contract.
PROTOCOL: Dict[str, MessageSpec] = {s.kind: s for s in _SPECS}


def payload_class_names() -> Tuple[str, ...]:
    """All declared payload class names (PROTO003 tracks these)."""
    return tuple(sorted({s.payload for s in PROTOCOL.values()}))
