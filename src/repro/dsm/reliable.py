"""Reliable FIFO delivery over a faulty network.

:class:`ReliableTransport` wraps a :class:`~repro.sim.network.Network`
whose :class:`~repro.sim.faults.FaultPlan` may drop, duplicate, delay,
or reorder frames, and restores the per-link guarantees the DSM protocol
was written against: every sequenced message is delivered to the
destination mailbox exactly once, in send order per ``(src, dst)`` link.
Per-writer FIFO matters beyond mere convenience -- CCL's locally-directed
delta reconstruction derives the advanced writers of a warm page from
vector-clock components, which is exact only because diff delivery is
FIFO per writer (see :class:`~repro.dsm.messages.LogDiffRequest`).

Mechanism (selective repeat): the sender stamps a per-link sequence
number, transmits, and schedules a retransmission timer on the simulated
clock with exponential backoff; the receiver acks every arrival
(including duplicates, so lost acks self-heal), drops duplicates,
buffers out-of-order frames, and releases them to the mailbox in order.
Acks and heartbeats travel unsequenced -- a lost heartbeat is precisely
the signal a failure detector exists to interpret.

All timers run on the virtual clock, so retransmission cost appears in
the timing model.  The transport is only installed when a plan is
active; fault-free runs use the bare network and are byte-identical to
runs before this layer existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.events import Signal
from ..sim.network import NetMessage, Network
from .messages import RelAck

__all__ = ["RetransmitPolicy", "ReliableTransport", "UNSEQUENCED_KINDS"]

#: Fire-and-forget traffic that bypasses sequencing: the ack channel
#: itself (acking acks would never terminate) and heartbeats (losing
#: them is the failure signal the detector interprets).
UNSEQUENCED_KINDS = frozenset({"rel_ack", "hb_ping", "hb_ack"})


@dataclass(frozen=True)
class RetransmitPolicy:
    """Retransmission timer parameters (virtual seconds)."""

    #: Base retransmission timeout, on top of twice the frame's
    #: serialisation time (covers RTT plus moderate NIC queueing).
    timeout_s: float = 2.5e-3
    #: Multiplicative backoff applied after each retransmission.
    backoff: float = 2.0
    #: Retransmissions before the peer is presumed dead and the frame
    #: abandoned.  Bounds simulated time after a live kill; with drop
    #: rate p the residual loss probability is p**(max_retries+1).
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.timeout_s <= 0 or self.backoff < 1.0 or self.max_retries < 0:
            raise ValueError(f"bad retransmit policy {self}")


class _Pending:
    """Sender-side state for one unacknowledged sequenced frame."""

    __slots__ = ("msg", "rto", "retries", "acked")

    def __init__(self, msg: NetMessage, rto: float):
        self.msg = msg
        self.rto = rto
        self.retries = 0
        self.acked = False


class ReliableTransport:
    """Exactly-once, per-link-FIFO messaging over an unreliable network.

    Drop-in for the :class:`~repro.sim.network.Network` surface the DSM
    layer uses (``send`` / ``post`` / ``mailbox``); everything else
    delegates to the wrapped network.  One instance serves the whole
    cluster -- sender and receiver state are both keyed by link, exactly
    as per-node kernel endpoints would keep them.
    """

    def __init__(
        self,
        net: Network,
        sim: Simulator,
        policy: Optional[RetransmitPolicy] = None,
    ):
        self.net = net
        self.sim = sim
        self.policy = policy or RetransmitPolicy()
        net.deliver_hook = self._on_deliver
        #: link -> next sequence number to stamp (sender side).
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: link -> next sequence number to release (receiver side).
        self._expected: Dict[Tuple[int, int], int] = {}
        #: link -> {seq: frame} held-back out-of-order arrivals.
        self._held: Dict[Tuple[int, int], Dict[int, NetMessage]] = {}
        #: (src, dst, seq) -> unacknowledged send state.
        self._pending: Dict[Tuple[int, int, int], _Pending] = {}
        #: (src, dst, seq) -> signal fired on in-order mailbox delivery.
        self._landed: Dict[Tuple[int, int, int], Signal] = {}
        # statistics for the chaos reports
        self.retransmits = 0
        self.acks_received = 0
        self.dups_dropped = 0
        self.held_frames = 0
        self.abandoned = 0

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, msg: NetMessage) -> Generator[Any, Any, Signal]:
        """Reliable counterpart of :meth:`Network.send`."""
        yield self.net.config.send_overhead_s
        return self.post(msg)

    def post(self, msg: NetMessage) -> Signal:
        """Reliable counterpart of :meth:`Network.post`.

        The returned signal fires when the frame is released to the
        destination mailbox (unsequenced traffic keeps the raw network's
        physical-arrival signal).
        """
        if msg.kind in UNSEQUENCED_KINDS:
            return self.net.post(msg)
        link = (msg.src, msg.dst)
        seq = self._next_seq.get(link, 0)
        self._next_seq[link] = seq + 1
        msg.seq = seq
        wire = msg.size + Network.HEADER_BYTES
        rto = self.policy.timeout_s + 2.0 * self.net.config.transfer_time(wire)
        entry = _Pending(msg, rto)
        key = (msg.src, msg.dst, seq)
        self._pending[key] = entry
        landed = Signal(f"rel.{msg.kind}.{msg.src}->{msg.dst}#{seq}")
        self._landed[key] = landed
        self._transmit(entry)
        return landed

    def _transmit(self, entry: _Pending) -> None:
        self.net.post(entry.msg)
        rto = entry.rto

        def maybe_retransmit() -> None:
            if entry.acked:
                return
            if entry.retries >= self.policy.max_retries:
                # peer presumed dead; stop so the simulation can drain
                key = (entry.msg.src, entry.msg.dst, entry.msg.seq)
                if self._pending.pop(key, None) is not None:
                    self.abandoned += 1
                return
            entry.retries += 1
            entry.rto *= self.policy.backoff
            self.retransmits += 1
            self._transmit(entry)

        self.sim.schedule(rto, maybe_retransmit)

    # ------------------------------------------------------------------
    # receiver side (network delivery hook)
    # ------------------------------------------------------------------
    def _on_deliver(self, msg: NetMessage) -> bool:
        """Intercept every physical arrival; True = consumed here."""
        if msg.kind == "rel_ack":
            ack: RelAck = msg.payload
            entry = self._pending.pop((ack.src, ack.dst, ack.seq), None)
            if entry is not None:
                entry.acked = True
                self.acks_received += 1
            return True
        if msg.seq < 0:
            return False  # unsequenced: straight to the mailbox
        link = (msg.src, msg.dst)
        # Ack every arrival, duplicates included: the original ack may
        # itself have been lost, and re-acking is what heals that.
        self.net.post(
            NetMessage(
                src=msg.dst,
                dst=msg.src,
                kind="rel_ack",
                payload=RelAck(msg.src, msg.dst, msg.seq),
                size=RelAck.NBYTES,
            )
        )
        expected = self._expected.get(link, 0)
        if msg.seq < expected:
            self.dups_dropped += 1
            return True
        held = self._held.setdefault(link, {})
        if msg.seq > expected:
            if msg.seq in held:
                self.dups_dropped += 1
            else:
                held[msg.seq] = msg
                self.held_frames += 1
            return True
        self._release(msg)
        expected += 1
        while expected in held:
            self._release(held.pop(expected))
            expected += 1
        self._expected[link] = expected
        return True

    def _release(self, msg: NetMessage) -> None:
        """Hand one in-order frame to the destination mailbox."""
        self.net.mailbox(msg.dst).put(msg)
        sig = self._landed.pop((msg.src, msg.dst, msg.seq), None)
        if sig is not None and not sig.triggered:
            sig.trigger(msg)

    # ------------------------------------------------------------------
    def mailbox(self, node: int):
        """The receive queue of ``node`` (same object as the network's)."""
        return self.net.mailbox(node)

    def summary(self) -> Dict[str, int]:
        """Transport-level counters for chaos reports."""
        return {
            "retransmits": self.retransmits,
            "acks_received": self.acks_received,
            "dups_dropped": self.dups_dropped,
            "held_frames": self.held_frames,
            "abandoned": self.abandoned,
            "unacked_in_flight": len(self._pending),
        }

    def __getattr__(self, name: str) -> Any:
        # num_nodes, config, round_trip_estimate, stats counters, ...
        return getattr(self.net, name)
