"""System assembly: build a cluster, run an application, collect results.

:class:`DsmSystem` wires together the simulation substrate (engine,
network, disks), the shared address space, one :class:`HlrcNode` per
rank with its logging-protocol instance, and the application's SPMD
program.  One system object corresponds to one run; results come back
as a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..config import ClusterConfig
from ..errors import ApplicationError, ConfigError
from ..sim.disk import Disk
from ..sim.engine import Simulator
from ..sim.events import AllOf
from ..sim.faults import DiskFaultPlan, FaultPlan
from ..sim.network import Network
from ..sim.stats import NodeStats
from ..sim.trace import Tracer
from ..memory import SharedAddressSpace
from .api import Dsm
from .hlrc import HlrcNode, ProbeFn
from .home import round_robin_homes
from .logginghooks import LoggingHooks, NoLogging

__all__ = ["DsmSystem", "RunResult"]

#: Factory producing one logging-protocol instance per node.
HooksFactory = Callable[[int], LoggingHooks]


@dataclass
class RunResult:
    """Everything measured during one simulated run."""

    app_name: str
    protocol: str
    total_time: float
    node_stats: List[NodeStats]
    log_summaries: List[Dict[str, Any]]
    network_bytes: int
    network_msgs: int
    bytes_by_kind: Dict[str, int]
    config: ClusterConfig
    #: False when a live kill stalled the cluster before completion.
    completed: bool = True
    #: Names of the processes left blocked by a live kill.
    blocked: List[str] = field(default_factory=list)
    #: Live node objects, retained for verification and recovery setup.
    nodes: List[HlrcNode] = field(default_factory=list, repr=False)
    #: Per-disk summaries (op latency histograms, byte/op counters).
    disk_stats: List[Dict[str, Any]] = field(default_factory=list, repr=False)
    #: Home-replication factor the run was configured with (1 = off).
    replication: int = 1
    #: Per-node replicator summaries (empty when replication is off).
    replication_stats: List[Dict[str, Any]] = field(default_factory=list)
    #: Fault-domain labels, one per node (None when zones are unset).
    zones: Optional[Any] = None
    #: Nodes killed live during the run (fault plan + explicit kill).
    dead_nodes: List[int] = field(default_factory=list)

    # -- stable-storage metrics (checkpoint-driven truncation) ----------
    @property
    def live_log_bytes(self) -> int:
        """On-disk log bytes not yet reclaimed, across all nodes."""
        return int(sum(s.get("live_log_bytes", 0) for s in self.log_summaries))

    @property
    def reclaimed_log_bytes(self) -> int:
        """Log bytes garbage-collected by truncation, across all nodes."""
        return int(sum(s.get("reclaimed_bytes", 0) for s in self.log_summaries))

    @property
    def aggregate(self) -> NodeStats:
        """Cluster-wide sums of all node counters and time buckets."""
        return NodeStats.aggregate(self.node_stats)

    # -- logging metrics used by Table 2 --------------------------------
    @property
    def num_flushes(self) -> int:
        """Total stable-storage flushes across all nodes."""
        return int(sum(s.get("flushes", 0) for s in self.log_summaries))

    @property
    def total_log_bytes(self) -> int:
        """Total bytes of logged data across all nodes."""
        return int(sum(s.get("bytes_flushed", 0) for s in self.log_summaries))

    @property
    def mean_flush_bytes(self) -> float:
        """Average size of one flush (the paper's "mean log size")."""
        n = self.num_flushes
        return self.total_log_bytes / n if n else 0.0


class DsmSystem:
    """One simulated cluster executing one application run."""

    def __init__(
        self,
        app: Any,
        config: Optional[ClusterConfig] = None,
        hooks_factory: Optional[HooksFactory] = None,
        protocol_name: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        coherence: str = "hlrc",
        fault_plan: Optional[FaultPlan] = None,
        disk_fault_plan: Optional["DiskFaultPlan"] = None,
        replication: int = 1,
    ):
        if coherence not in ("hlrc", "lrc", "hlrc-migrate"):
            raise ConfigError(f"unknown coherence protocol {coherence!r}")
        if replication >= 2 and coherence != "hlrc":
            raise ConfigError(
                "home replication requires the hlrc coherence protocol "
                f"(homes must be fixed; got {coherence!r})"
            )
        self.coherence = coherence
        self.app = app
        self.config = config or ClusterConfig.ultra5()
        self.hooks_factory = hooks_factory or (lambda _i: NoLogging())
        # explicit None-check: an empty Tracer is falsy (it has __len__)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.sim = Simulator()
        self.fault_plan = fault_plan
        for victim in (fault_plan.kills if fault_plan is not None else {}):
            if not (0 <= victim < self.config.num_nodes):
                raise ConfigError(f"fault-plan kill target {victim} out of range")
        self.network = Network(
            self.sim, self.config.network, self.config.num_nodes,
            fault_plan=fault_plan,
            zones=list(self.config.zones) if self.config.zones is not None else None,
            wan_latency_s=self.config.zone_wan_latency_s,
        )
        self.network.tracer = self.tracer
        # An active plan interposes the reliable transport between the
        # protocol and the wire; otherwise the nodes talk to the bare
        # network and every existing stat stays byte-identical.
        if fault_plan is not None and fault_plan.active:
            from .reliable import ReliableTransport

            self.transport: Any = ReliableTransport(self.network, self.sim)
        else:
            self.transport = self.network
        self.disks = [
            Disk(self.sim, self.config.disk, f"disk{i}")
            for i in range(self.config.num_nodes)
        ]
        # the logging hooks pick the plan up from their node's disk when
        # they bind (disks exist before nodes, so this must come first)
        self.disk_fault_plan = disk_fault_plan
        if disk_fault_plan is not None:
            for disk in self.disks:
                disk.fault_plan = disk_fault_plan

        # let the application lay out shared memory
        self.space = SharedAddressSpace(self.config.page_size)
        app.allocate(self.space, self.config.num_nodes)
        if self.space.npages == 0:
            raise ApplicationError(f"{app!r} allocated no shared memory")

        homes_fn = getattr(app, "homes", None)
        if homes_fn is not None:
            homes = homes_fn(self.space, self.config.num_nodes)
        else:
            homes = None
        if homes is None:
            homes = round_robin_homes(self.space.npages, self.config.num_nodes)
        if len(homes) != self.space.npages:
            raise ConfigError(
                f"home map covers {len(homes)} pages, space has {self.space.npages}"
            )
        self.homes = list(homes)

        if coherence == "lrc":
            from .lrc import LrcNode

            node_cls = LrcNode
        elif coherence == "hlrc-migrate":
            from .migration import MigratingHlrcNode

            node_cls = MigratingHlrcNode
        else:
            node_cls = HlrcNode
        self.nodes = [
            node_cls(self, i, self.hooks_factory(i))
            for i in range(self.config.num_nodes)
        ]
        self._protocol_name = protocol_name or self.nodes[0].hooks.name

        # quorum-replicated homes: plan the replica groups and seed every
        # follower's mirror from the pristine initial image (all node
        # memories are identical until the first simulated event)
        self.replication = replication
        self.replica_groups: Dict[int, Any] = {}
        if replication >= 2:
            from ..core.replication import Replicator, plan_groups

            n = self.config.num_nodes
            self.replica_groups = plan_groups(n, replication, self.config.zones)
            pages_of: Dict[int, List[int]] = {i: [] for i in range(n)}
            for page, home in enumerate(self.homes):
                pages_of[home].append(page)
            for node in self.nodes:
                rep = Replicator(self.replica_groups[node.id])
                rep.bind(node)
                node.replicator = rep
            for primary, group in self.replica_groups.items():
                for f in group.followers:
                    self.nodes[f].replicator.init_follower(
                        primary, pages_of[primary], self.nodes[f].memory, n
                    )

    # ------------------------------------------------------------------
    def add_probe(self, probe: ProbeFn) -> None:
        """Attach a failure-point probe to every node."""
        for node in self.nodes:
            node.probes.append(probe)

    # ------------------------------------------------------------------
    def run(
        self,
        kill_node: Optional[int] = None,
        kill_at: Optional[float] = None,
    ) -> RunResult:
        """Execute the application to completion and collect metrics.

        ``kill_node``/``kill_at`` crash one node **live**: its main and
        server processes are killed at the given virtual time and the
        run continues until the survivors stall (no recovery happens --
        this is the demonstration of *why* the paper needs one).  The
        returned result then has ``completed=False`` and names the
        blocked survivors.
        """
        servers = [
            self.sim.spawn(node.server_loop(), name=f"server{node.id}")
            for node in self.nodes
        ]
        mains = [
            self.sim.spawn(self._main(node), name=f"main{node.id}")
            for node in self.nodes
        ]
        completed = True
        blocked: List[str] = []

        def controller() -> Generator[Any, Any, None]:
            yield AllOf([m.done for m in mains])
            for s in servers:
                s.kill()

        ctl = self.sim.spawn(controller(), name="controller")

        kills: Dict[int, float] = {}
        if self.fault_plan is not None:
            kills.update(self.fault_plan.kills)
        if kill_node is not None:
            if not (0 <= kill_node < len(self.nodes)):
                raise ConfigError(f"kill_node {kill_node} out of range")
            kills[kill_node] = kill_at or 0.0
            # with an active plan the network also stops delivering the
            # victim's in-flight frames; the bare network keeps the
            # pre-fault-injection behaviour (processes die, frames land)
            if self.transport is not self.network:
                self.network.fault_plan.kills.setdefault(kill_node, kill_at or 0.0)
        for victim, at_time in sorted(kills.items()):

            def do_kill(v: int = victim) -> None:
                mains[v].kill()
                servers[v].kill()

            self.sim.schedule(at_time, do_kill)

        try:
            total = self.sim.run()
        except Exception as exc:
            from ..errors import DeadlockError

            if isinstance(exc, DeadlockError) and kills:
                completed = False
                blocked = list(exc.blocked)
                total = self.sim.now
                ctl.kill()
                for proc in mains + servers:
                    proc.kill()
            else:
                raise
        failed = [m for m in mains if m.error is not None]
        if failed:  # pragma: no cover - surfaced via SimulationError in run()
            raise ApplicationError(f"ranks failed: {[m.name for m in failed]}")
        return RunResult(
            completed=completed,
            blocked=blocked,
            app_name=getattr(self.app, "name", type(self.app).__name__),
            protocol=self._protocol_name,
            total_time=total,
            node_stats=[n.stats for n in self.nodes],
            log_summaries=[n.hooks.log_summary() for n in self.nodes],
            network_bytes=self.network.total_bytes,
            network_msgs=sum(self.network.msgs_sent),
            bytes_by_kind=dict(self.network.bytes_by_kind),
            config=self.config,
            nodes=self.nodes,
            disk_stats=[d.summary() for d in self.disks],
            replication=self.replication,
            replication_stats=[
                n.replicator.summary()
                for n in self.nodes
                if getattr(n, "replicator", None) is not None
            ],
            zones=self.config.zones,
            dead_nodes=sorted(kills),
        )

    def _main(self, node: HlrcNode) -> Generator[Any, Any, None]:
        dsm = Dsm(node, node.id, self.config.num_nodes)
        yield from self.app.program(dsm)
