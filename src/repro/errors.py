"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems raise the most
specific subclass available.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "ProcessKilled",
    "MemoryLayoutError",
    "PageError",
    "DiffError",
    "ProtocolError",
    "SynchronizationError",
    "LoggingProtocolError",
    "LogFormatError",
    "StorageFaultError",
    "CheckpointError",
    "RecoveryError",
    "ApplicationError",
    "HarnessError",
    "AnalysisError",
    "InvariantViolationError",
    "RecoverabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """Generic failure inside the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    Carries the names of the blocked processes to aid debugging of
    protocol-level hangs (e.g. a barrier that never releases).
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        super().__init__(
            "simulation deadlock; blocked processes: " + ", ".join(self.blocked)
        )


class ProcessKilled(SimulationError):
    """Raised *inside* a simulated process when it is forcibly terminated.

    Used by the failure injector to crash a node: the exception is thrown
    into the process generator so that ``finally`` blocks run, then the
    process is marked dead.
    """


class MemoryLayoutError(ReproError):
    """A shared-memory allocation or addressing request was invalid."""


class PageError(ReproError):
    """An operation referenced a page in an illegal state."""


class DiffError(ReproError):
    """A diff could not be created or applied."""


class ProtocolError(ReproError):
    """The DSM coherence protocol reached an inconsistent state."""


class SynchronizationError(ProtocolError):
    """Misuse of locks or barriers (e.g. releasing an unheld lock)."""


class LoggingProtocolError(ReproError):
    """A logging protocol hook was invoked in an illegal order."""


class LogFormatError(ReproError):
    """A framed log segment or record failed to decode (torn/corrupt)."""


class StorageFaultError(ReproError):
    """A stable-storage write failed permanently (retries exhausted)."""


class CheckpointError(ReproError):
    """Checkpoint creation or restoration failed."""


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct a consistent state."""


class ApplicationError(ReproError):
    """A DSM application misbehaved (bad allocation, failed verification)."""


class HarnessError(ReproError):
    """The experiment harness was driven with inconsistent arguments."""


class AnalysisError(ReproError):
    """Base class for the coherence sanitizer (:mod:`repro.analysis`)."""


class InvariantViolationError(AnalysisError):
    """A trace broke a protocol invariant the checker enforces."""


class RecoverabilityError(AnalysisError):
    """The logs cannot reconstruct a page version recovery would need."""
