"""The experiment harness.

Regenerates every table and figure of the paper's evaluation:
:mod:`repro.harness.runner` runs the campaigns,
:mod:`repro.harness.tables` and :mod:`repro.harness.figures` render
Table 1/2 and Figures 4/5, :mod:`repro.harness.sweep` powers the
ablations, and :mod:`repro.harness.scales` maps dataset scales.
``python -m repro`` drives the whole evaluation from the command line.
"""

from .runner import (
    LoggingComparison,
    ProtocolRow,
    RecoveryComparison,
    logging_comparison,
    recovery_comparison,
    run_application,
)
from .scales import SCALES, app_kwargs
from .tables import render_table1, render_table2_panel, table1_rows
from .figures import (
    fig4_rows,
    fig5_rows,
    render_fig4,
    render_fig5,
    write_csv,
)
from .sweep import SweepPoint, parallel_map, render_sweep, sweep
from .breakdown import breakdown_rows, render_breakdown
from .report import generate_report
from .persist import (
    load_json,
    multi_recovery_result_to_dict,
    recovery_result_to_dict,
    run_result_to_dict,
    save_json,
)

__all__ = [
    "run_application",
    "ProtocolRow",
    "LoggingComparison",
    "logging_comparison",
    "RecoveryComparison",
    "recovery_comparison",
    "SCALES",
    "app_kwargs",
    "render_table1",
    "render_table2_panel",
    "table1_rows",
    "render_fig4",
    "render_fig5",
    "fig4_rows",
    "fig5_rows",
    "write_csv",
    "SweepPoint",
    "sweep",
    "parallel_map",
    "render_sweep",
    "breakdown_rows",
    "render_breakdown",
    "generate_report",
    "run_result_to_dict",
    "recovery_result_to_dict",
    "multi_recovery_result_to_dict",
    "save_json",
    "load_json",
]
