"""CLI-facing ablation sweeps (parallelisable variants of A2/A3).

The pytest ablation benches under ``benchmarks/`` time one artefact
each; this module exposes the same sweeps as plain functions so
``python -m repro ablation --which disk --jobs 4`` can fan the variants
out across processes.  Every measurement function is module-level (the
process-pool pickling rule of :func:`repro.harness.sweep.sweep`), and
each variant is an independent deterministic simulation, so parallel
output is byte-identical to serial output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..config import ClusterConfig, DiskConfig
from .runner import logging_comparison
from .sweep import SweepPoint, render_sweep, sweep

__all__ = ["ABLATIONS", "run_ablation"]


def _disk_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    disks = [
        ("fast", DiskConfig(write_latency_s=0.1e-3, bandwidth_bps=30e6)),
        ("default", DiskConfig()),
        ("slow", DiskConfig(write_latency_s=2e-3, bandwidth_bps=3e6)),
    ]
    return [
        (label, {"config": config.with_changes(disk=disk), "scale": "test"})
        for label, disk in disks
    ]


def _measure_disk(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    cmp = logging_comparison("mg", params["config"], scale=params["scale"])
    return {
        "ml_overhead_pct": 100 * (cmp.normalized_time("ml") - 1),
        "ccl_overhead_pct": 100 * (cmp.normalized_time("ccl") - 1),
    }


def _pagesize_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    return [
        (
            f"{page}B",
            {"config": config.with_changes(page_size=page), "scale": "test"},
        )
        for page in (1024, 4096, 16384)
    ]


def _measure_pagesize(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    cmp = logging_comparison("fft3d", params["config"], scale=params["scale"])
    ml = cmp.results["ml"]
    return {
        "exec_none_s": cmp.row("none").exec_time_s,
        "ml_log_mb": cmp.row("ml").total_log_mb,
        "ccl_log_mb": cmp.row("ccl").total_log_mb,
        "ccl_over_ml_pct": 100 * cmp.ccl_log_fraction,
        "page_faults": float(ml.aggregate.counters.get("page_faults", 0)),
    }


def _logsize_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    """Log growth vs checkpoint interval: more iterations, with and
    without checkpoint-driven truncation.

    Pinned to 4 nodes: the sweep varies run length, not cluster size,
    and ML checkpoint-restore replay has a known pre-existing mismatch
    at 8 nodes (independent of truncation -- it reproduces with
    ``retention=None``) that would drown the signal this ablation is
    after.
    """
    config = config.with_changes(num_nodes=4)
    out: List[Tuple[str, Dict[str, Any]]] = []
    for steps in (4, 8, 16):
        out.append((f"s{steps}/none", {"config": config, "steps": steps,
                                       "every": None}))
        out.append((f"s{steps}/ck4", {"config": config, "steps": steps,
                                      "every": 4}))
    return out


def _measure_logsize(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    from ..apps import make_app
    from ..core.recovery import run_recovery_experiment

    # ML: replay is purely local, so truncating every node's log below
    # its own retained checkpoints is always safe.  (CCL peers rebuild
    # cold pages from full diff histories, so truncation there can only
    # trade retention depth against diagnosed recovery refusals.)
    result = run_recovery_experiment(
        make_app("shallow", n=16, steps=params["steps"]),
        params["config"],
        "ml",
        failed_node=1,
        checkpoint_every=params["every"],
        retention=2 if params["every"] else None,
    )
    a = result.phase_a
    return {
        "bytes_flushed_kb": a.total_log_bytes / 1024,
        "live_log_kb": a.live_log_bytes / 1024,
        "reclaimed_kb": a.reclaimed_log_bytes / 1024,
        "recovery_ms": result.recovery_time * 1e3,
        "ok": float(result.ok),
    }


#: name -> (title, variants builder, module-level measure function)
ABLATIONS = {
    "disk": (
        "A2: disk speed vs logging overhead (MG)",
        _disk_variants,
        _measure_disk,
    ),
    "pagesize": (
        "A3: page size vs traffic and log ratio (3D-FFT)",
        _pagesize_variants,
        _measure_pagesize,
    ),
    "logsize": (
        "A4: live log size vs checkpoint-driven truncation (SHALLOW/ML)",
        _logsize_variants,
        _measure_logsize,
    ),
}


def run_ablation(
    which: str, config: ClusterConfig, jobs: int = 1
) -> Tuple[str, List[SweepPoint]]:
    """Run one named ablation sweep; returns (rendered table, points)."""
    try:
        title, variants_fn, measure = ABLATIONS[which]
    except KeyError:
        raise KeyError(
            f"unknown ablation {which!r}; choices: {sorted(ABLATIONS)}"
        ) from None
    points = sweep(variants_fn(config), measure, jobs=jobs)
    return render_sweep(title, points), points
