"""CLI-facing ablation sweeps (parallelisable variants of A2/A3).

The pytest ablation benches under ``benchmarks/`` time one artefact
each; this module exposes the same sweeps as plain functions so
``python -m repro ablation --which disk --jobs 4`` can fan the variants
out across processes.  Every measurement function is module-level (the
process-pool pickling rule of :func:`repro.harness.sweep.sweep`), and
each variant is an independent deterministic simulation, so parallel
output is byte-identical to serial output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..config import ClusterConfig, DiskConfig
from .runner import logging_comparison
from .sweep import SweepPoint, render_sweep, sweep

__all__ = ["ABLATIONS", "run_ablation"]


def _disk_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    disks = [
        ("fast", DiskConfig(write_latency_s=0.1e-3, bandwidth_bps=30e6)),
        ("default", DiskConfig()),
        ("slow", DiskConfig(write_latency_s=2e-3, bandwidth_bps=3e6)),
    ]
    return [
        (label, {"config": config.with_changes(disk=disk), "scale": "test"})
        for label, disk in disks
    ]


def _measure_disk(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    cmp = logging_comparison("mg", params["config"], scale=params["scale"])
    return {
        "ml_overhead_pct": 100 * (cmp.normalized_time("ml") - 1),
        "ccl_overhead_pct": 100 * (cmp.normalized_time("ccl") - 1),
    }


def _pagesize_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    return [
        (
            f"{page}B",
            {"config": config.with_changes(page_size=page), "scale": "test"},
        )
        for page in (1024, 4096, 16384)
    ]


def _measure_pagesize(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    cmp = logging_comparison("fft3d", params["config"], scale=params["scale"])
    ml = cmp.results["ml"]
    return {
        "exec_none_s": cmp.row("none").exec_time_s,
        "ml_log_mb": cmp.row("ml").total_log_mb,
        "ccl_log_mb": cmp.row("ccl").total_log_mb,
        "ccl_over_ml_pct": 100 * cmp.ccl_log_fraction,
        "page_faults": float(ml.aggregate.counters.get("page_faults", 0)),
    }


#: name -> (title, variants builder, module-level measure function)
ABLATIONS = {
    "disk": (
        "A2: disk speed vs logging overhead (MG)",
        _disk_variants,
        _measure_disk,
    ),
    "pagesize": (
        "A3: page size vs traffic and log ratio (3D-FFT)",
        _pagesize_variants,
        _measure_pagesize,
    ),
}


def run_ablation(
    which: str, config: ClusterConfig, jobs: int = 1
) -> Tuple[str, List[SweepPoint]]:
    """Run one named ablation sweep; returns (rendered table, points)."""
    try:
        title, variants_fn, measure = ABLATIONS[which]
    except KeyError:
        raise KeyError(
            f"unknown ablation {which!r}; choices: {sorted(ABLATIONS)}"
        ) from None
    points = sweep(variants_fn(config), measure, jobs=jobs)
    return render_sweep(title, points), points
