"""CLI-facing ablation sweeps (parallelisable variants of A2/A3).

The pytest ablation benches under ``benchmarks/`` time one artefact
each; this module exposes the same sweeps as plain functions so
``python -m repro ablation --which disk --jobs 4`` can fan the variants
out across processes.  Every measurement function is module-level (the
process-pool pickling rule of :func:`repro.harness.sweep.sweep`), and
each variant is an independent deterministic simulation, so parallel
output is byte-identical to serial output.

Finished sweeps are appended to ``benchmark_results/history.jsonl``
(one compact entry per run, alongside the perf trajectory), so ablation
numbers survive the runner and regressions show up as diffs in review.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Tuple

from ..config import ClusterConfig, DiskConfig
from .runner import logging_comparison
from .sweep import SweepPoint, render_sweep, sweep

__all__ = ["ABLATIONS", "run_ablation", "append_ablation_history"]


def _disk_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    disks = [
        ("fast", DiskConfig(write_latency_s=0.1e-3, bandwidth_bps=30e6)),
        ("default", DiskConfig()),
        ("slow", DiskConfig(write_latency_s=2e-3, bandwidth_bps=3e6)),
    ]
    return [
        (label, {"config": config.with_changes(disk=disk), "scale": "test"})
        for label, disk in disks
    ]


def _measure_disk(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    cmp = logging_comparison("mg", params["config"], scale=params["scale"])
    return {
        "ml_overhead_pct": 100 * (cmp.normalized_time("ml") - 1),
        "ccl_overhead_pct": 100 * (cmp.normalized_time("ccl") - 1),
    }


def _pagesize_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    return [
        (
            f"{page}B",
            {"config": config.with_changes(page_size=page), "scale": "test"},
        )
        for page in (1024, 4096, 16384)
    ]


def _measure_pagesize(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    cmp = logging_comparison("fft3d", params["config"], scale=params["scale"])
    ml = cmp.results["ml"]
    return {
        "exec_none_s": cmp.row("none").exec_time_s,
        "ml_log_mb": cmp.row("ml").total_log_mb,
        "ccl_log_mb": cmp.row("ccl").total_log_mb,
        "ccl_over_ml_pct": 100 * cmp.ccl_log_fraction,
        "page_faults": float(ml.aggregate.counters.get("page_faults", 0)),
    }


def _logsize_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    """Log growth vs checkpoint interval: more iterations, with and
    without checkpoint-driven truncation.

    Pinned to 4 nodes: the sweep varies run length, not cluster size,
    and ML checkpoint-restore replay has a known pre-existing mismatch
    at 8 nodes (independent of truncation -- it reproduces with
    ``retention=None``) that would drown the signal this ablation is
    after.
    """
    config = config.with_changes(num_nodes=4)
    out: List[Tuple[str, Dict[str, Any]]] = []
    for steps in (4, 8, 16):
        out.append((f"s{steps}/none", {"config": config, "steps": steps,
                                       "every": None}))
        out.append((f"s{steps}/ck4", {"config": config, "steps": steps,
                                      "every": 4}))
    return out


def _measure_logsize(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    from ..apps import make_app
    from ..core.recovery import run_recovery_experiment

    # ML: replay is purely local, so truncating every node's log below
    # its own retained checkpoints is always safe.  (CCL peers rebuild
    # cold pages from full diff histories, so truncation there can only
    # trade retention depth against diagnosed recovery refusals.)
    result = run_recovery_experiment(
        make_app("shallow", n=16, steps=params["steps"]),
        params["config"],
        "ml",
        failed_node=1,
        checkpoint_every=params["every"],
        retention=2 if params["every"] else None,
    )
    a = result.phase_a
    return {
        "bytes_flushed_kb": a.total_log_bytes / 1024,
        "live_log_kb": a.live_log_bytes / 1024,
        "reclaimed_kb": a.reclaimed_log_bytes / 1024,
        "recovery_ms": result.recovery_time * 1e3,
        "ok": float(result.ok),
    }


def _adaptive_variants(config: ClusterConfig) -> List[Tuple[str, Dict[str, Any]]]:
    from ..apps import PAPER_APPS

    return [
        (app, {"config": config, "scale": "test", "app": app})
        for app in PAPER_APPS
    ]


def _measure_adaptive(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    """Static CCL vs static ML vs the adaptive hybrid, one app per row.

    The recovery budget handed to the adaptive cost model is 1.2x the
    better static protocol's measured recovery time, so "budget met"
    is a real constraint rather than a formality; failure-free
    overheads are normalised to the no-logging run as in Figure 4.
    """
    from ..apps import make_app
    from ..core.recovery import run_recovery_experiment
    from .runner import run_application
    from .scales import app_kwargs

    config, scale, app = params["config"], params["scale"], params["app"]
    kwargs = app_kwargs(app, scale)

    # static recovery times anchor the budget
    static_rec: Dict[str, float] = {}
    for protocol in ("ml", "ccl"):
        res = run_recovery_experiment(
            make_app(app, **kwargs), config, protocol, failed_node=3,
        )
        if not res.ok:
            raise RuntimeError(f"{app}/{protocol} recovery diverged")
        static_rec[protocol] = res.recovery_time
    budget = 1.2 * min(static_rec.values())

    times: Dict[str, float] = {}
    for protocol in ("none", "ml", "ccl"):
        result, _sys = run_application(
            app, protocol, config, scale, verify=False,
        )
        times[protocol] = result.total_time
    adaptive_run, _sys = run_application(
        app, "adaptive", config, scale, verify=False, recovery_budget=budget,
    )
    times["adaptive"] = adaptive_run.total_time
    switches = sum(
        s.get("mode_switches", 0) for s in adaptive_run.log_summaries
    )

    adaptive_rec = run_recovery_experiment(
        make_app(app, **kwargs), config, "adaptive", failed_node=3,
        recovery_budget=budget,
    )
    if not adaptive_rec.ok:
        raise RuntimeError(f"{app}/adaptive recovery diverged")

    base = times["none"]
    return {
        "oh_ml_pct": 100 * (times["ml"] / base - 1),
        "oh_ccl_pct": 100 * (times["ccl"] / base - 1),
        "oh_adaptive_pct": 100 * (times["adaptive"] / base - 1),
        "rec_ml_ms": static_rec["ml"] * 1e3,
        "rec_ccl_ms": static_rec["ccl"] * 1e3,
        "rec_adaptive_ms": adaptive_rec.recovery_time * 1e3,
        "budget_ms": budget * 1e3,
        "budget_met": float(adaptive_rec.recovery_time <= budget),
        "switches": float(switches),
    }


def _replication_variants(
    config: ClusterConfig,
) -> List[Tuple[str, Dict[str, Any]]]:
    from ..apps import PAPER_APPS

    return [
        (app, {"config": config, "scale": "test", "app": app})
        for app in PAPER_APPS
    ]


def _measure_replication(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    """Quorum replication: failure-free overhead and recovery time vs k.

    One app per row.  Failure-free runs use the failover logging
    protocol at replication 1 (no mirror traffic: byte-identical to an
    unreplicated run), 2, and 3; overheads are normalised to k=1.
    Recovery at k=1 is classic log replay (no replica to promote);
    k>=2 is replay-free failover -- detection, promotion fencing, and a
    metadata-suffix catch-up, never page-content replay.
    """
    from ..apps import make_app
    from ..core.failover_recovery import run_failover_experiment
    from ..core.recovery import run_recovery_experiment
    from .runner import run_application
    from .scales import app_kwargs

    config, scale, app = params["config"], params["scale"], params["app"]
    kwargs = app_kwargs(app, scale)

    times: Dict[int, float] = {}
    stall: Dict[int, float] = {}
    for k in (1, 2, 3):
        result, _sys = run_application(
            app, "failover", config, scale, verify=False, replication=k,
        )
        times[k] = result.total_time
        stall[k] = sum(
            s.get("quorum_stall_s", 0.0)
            for s in (result.replication_stats or [])
        )

    replay = run_recovery_experiment(
        make_app(app, **kwargs), config, "failover", failed_node=3,
    )
    if not replay.ok:
        raise RuntimeError(f"{app}/failover classic replay diverged")
    rec: Dict[int, float] = {1: replay.recovery_time}
    for k in (2, 3):
        failover = run_failover_experiment(
            make_app(app, **kwargs), config, replication=k, failed_node=3,
        )
        if not failover.ok:
            raise RuntimeError(
                f"{app}/failover k={k} diverged: {failover.mismatches[:3]}"
            )
        if "page_replay" in failover.breakdown:
            raise RuntimeError(
                f"{app}/failover k={k} replayed page contents"
            )
        rec[k] = failover.recovery_time

    base = times[1]
    return {
        "oh_r2_pct": 100 * (times[2] / base - 1),
        "oh_r3_pct": 100 * (times[3] / base - 1),
        "stall_r2_ms": stall[2] * 1e3,
        "stall_r3_ms": stall[3] * 1e3,
        "rec_replay_ms": rec[1] * 1e3,
        "rec_r2_ms": rec[2] * 1e3,
        "rec_r3_ms": rec[3] * 1e3,
        "speedup_r2": rec[1] / rec[2] if rec[2] else 0.0,
    }


#: name -> (title, variants builder, module-level measure function)
ABLATIONS = {
    "disk": (
        "A2: disk speed vs logging overhead (MG)",
        _disk_variants,
        _measure_disk,
    ),
    "pagesize": (
        "A3: page size vs traffic and log ratio (3D-FFT)",
        _pagesize_variants,
        _measure_pagesize,
    ),
    "logsize": (
        "A4: live log size vs checkpoint-driven truncation (SHALLOW/ML)",
        _logsize_variants,
        _measure_logsize,
    ),
    "adaptive": (
        "A5: static CCL vs static ML vs adaptive hybrid (budget = "
        "1.2x better static recovery)",
        _adaptive_variants,
        _measure_adaptive,
    ),
    "replication": (
        "A6: quorum replication factor vs overhead and replay-free "
        "failover recovery (overheads vs k=1)",
        _replication_variants,
        _measure_replication,
    ),
}


def run_ablation(
    which: str, config: ClusterConfig, jobs: int = 1
) -> Tuple[str, List[SweepPoint]]:
    """Run one named ablation sweep; returns (rendered table, points)."""
    try:
        title, variants_fn, measure = ABLATIONS[which]
    except KeyError:
        raise KeyError(
            f"unknown ablation {which!r}; choices: {sorted(ABLATIONS)}"
        ) from None
    points = sweep(variants_fn(config), measure, jobs=jobs)
    return render_sweep(title, points), points


def append_ablation_history(
    which: str,
    points: List[SweepPoint],
    path: str = "benchmark_results/history.jsonl",
) -> Dict[str, Any]:
    """Append one compact ablation entry to the trajectory file.

    The perf gate baselines each metric family against the most recent
    entry that carries it, so an ``ablation`` entry (which carries
    none of the perf families) rides along without disturbing it.
    """
    from ..obs.artifacts import git_rev

    entry: Dict[str, Any] = {
        "schema": 1,
        "kind": "ablation",
        "which": which,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": git_rev(),
        "points": {p.label: dict(p.metrics) for p in points},
    }
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry
