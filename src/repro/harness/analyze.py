"""The ``repro analyze`` command: run the coherence sanitizer on demand.

Two modes::

    python -m repro analyze trace.jsonl          # check a saved trace
    python -m repro analyze --app lu --protocol ccl --scale test

The first loads a JSONL trace (``Tracer.save``) and runs the protocol
invariant checker over it.  The second runs an application with tracing
forced on, then runs both the invariant checker and the recoverability
auditor, and prints a combined report.  Exit status is non-zero when
any finding is reported.
"""

from __future__ import annotations

from ..analysis.invariants import InvariantReport, check_trace
from ..analysis.recoverability import RecoverabilityReport
from ..config import ClusterConfig
from ..obs.console import get_console
from ..sim.trace import Tracer

__all__ = ["analyze_trace", "analyze_app", "run_analyze"]


def _print_invariants(report: InvariantReport) -> None:
    con = get_console()
    con.result(
        f"invariant checker: {report.events_checked} events, "
        f"{report.intervals_seen} intervals, "
        f"{report.races_checked} race pairs checked"
    )
    if report.ok:
        con.result("  no violations")
        return
    for rule in sorted({v.rule for v in report.violations}):
        violations = report.by_rule(rule)
        con.result(f"  {rule}: {len(violations)}")
        for v in violations:
            con.result(f"    {v}")


def _print_audit(report: RecoverabilityReport) -> None:
    con = get_console()
    line = (
        f"recoverability auditor ({report.protocol}): "
        f"{report.events_checked} update events, "
        f"{report.notice_records_checked} notice records, "
        f"{report.fetches_checked} fetched versions checked"
    )
    if report.skipped_reason:
        line += f" (content pass skipped: {report.skipped_reason})"
    con.result(line)
    if report.ok:
        con.result("  all logged state recoverable")
        return
    for p in report.problems:
        con.result(f"  {p}")


def analyze_trace(path: str) -> int:
    """Check one saved JSONL trace; returns a process exit code."""
    tracer = Tracer.load(path)
    get_console().result(f"{path}: {len(tracer)} events")
    report = check_trace(tracer)
    _print_invariants(report)
    return 0 if report.ok else 1


def analyze_app(
    app: str,
    protocol: str,
    config: ClusterConfig,
    scale: str,
    save: str | None = None,
) -> int:
    """Run one application traced, then run both sanitizer passes."""
    from ..analysis.recoverability import audit_recoverability
    from ..analysis.sanitize import traced
    from .runner import run_application

    con = get_console()
    with traced():
        result, system = run_application(app, protocol, config, scale)
    status = "completed" if result.completed else "DID NOT COMPLETE"
    con.result(
        f"{app}/{protocol} @ {scale}: {status}, "
        f"{len(system.tracer)} trace events"
    )
    if save:
        system.tracer.save(save)
        con.info(f"trace written to {save}")
    inv = check_trace(system.tracer)
    _print_invariants(inv)
    audit = audit_recoverability(system)
    _print_audit(audit)
    return 0 if (inv.ok and audit.ok and result.completed) else 1


def run_analyze(args) -> int:
    """Dispatch for the CLI's ``analyze`` command."""
    if args.trace is not None:
        return analyze_trace(args.trace)
    config = ClusterConfig.ultra5(num_nodes=args.nodes)
    worst = 0
    for app in args.apps:
        worst = max(
            worst,
            analyze_app(app, args.protocol, config, args.scale,
                        save=args.save_trace),
        )
        get_console().result("")
    return worst
