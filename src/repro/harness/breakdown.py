"""Execution-time breakdown reports.

TreadMarks-style per-node statistics: where did each node's virtual
time go (compute, page-fault stalls, synchronisation waits, diff work,
log flushes), and what protocol events did it generate?  Used by the
CLI's ``breakdown`` command and handy when calibrating the cost model.
"""

from __future__ import annotations

from typing import Dict, List

from ..dsm.system import RunResult

__all__ = ["breakdown_rows", "render_breakdown"]

#: Conventional time buckets, in display order.
TIME_BUCKETS = (
    "compute",
    "fault",
    "sync",
    "diff",
    "diff_wait",
    "log_flush",
)

#: Headline counters, in display order.
COUNTERS = (
    "page_faults",
    "diffs_created",
    "invalidations",
    "lock_acquires",
    "barriers",
)


def breakdown_rows(result: RunResult) -> List[Dict[str, float]]:
    """One row per node plus a cluster total, as plain dicts."""
    rows: List[Dict[str, float]] = []
    for stats in list(result.node_stats) + [result.aggregate]:
        row: Dict[str, float] = {
            "node": float(stats.node_id),
            "total_s": result.total_time
            if stats.node_id >= 0
            else result.total_time * len(result.node_stats),
        }
        for bucket in TIME_BUCKETS:
            row[bucket] = stats.time.get(bucket)
        row["other"] = max(
            0.0, row["total_s"] - sum(row[b] for b in TIME_BUCKETS)
        )
        for counter in COUNTERS:
            row[counter] = float(stats.counters.get(counter, 0))
        rows.append(row)
    return rows


def render_breakdown(result: RunResult) -> str:
    """Aligned-text per-node breakdown of one run."""
    rows = breakdown_rows(result)
    head = (
        f"Execution breakdown -- {result.app_name} under "
        f"{result.protocol!r} ({len(result.node_stats)} nodes, "
        f"{result.total_time:.4f}s)"
    )
    cols = ["node", "total_s", *TIME_BUCKETS, "other", *COUNTERS]
    widths = [max(len(c), 9) for c in cols]
    lines = [
        head,
        "".join(f"{c:>{w + 2}}" for c, w in zip(cols, widths)),
    ]
    for row in rows:
        label = "ALL" if row["node"] < 0 else str(int(row["node"]))
        cells = [label]
        for c in cols[1:]:
            v = row[c]
            cells.append(f"{v:.4f}" if c.endswith("_s") or c in TIME_BUCKETS
                         or c == "other" else f"{int(v)}")
        lines.append(
            "".join(f"{cell:>{w + 2}}" for cell, w in zip(cells, widths))
        )
    return "\n".join(lines)
