"""The ``repro chaos`` command: seeded fault/crash property suite.

Default invocation runs ~200 cases (2 apps x 2 protocols x 13 seeds,
5 crash instants per probed run, every 4th seed a live kill) and exits
non-zero if any recovery is not bit-exact.  A failure prints a one-line
command that reproduces exactly that case::

    repro chaos --apps sor --protocols ccl --seed 7 \
        --crash-time 0.0123 --crash-node 2

and -- unless ``--no-artifacts`` -- re-runs the failing execution with
tracing forced on and dumps a telemetry bundle (manifest + span trace,
see docs/observability.md) next to that command, so the causal timeline
of the failure is preserved without re-running anything.

See :mod:`repro.core.chaos` for the verification model.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..apps import make_app
from ..config import ClusterConfig
from ..core.chaos import ChaosReport, run_chaos_run, run_chaos_suite
from ..core.replication import ZoneFaultSpec, validate_replication
from ..errors import ConfigError
from ..obs.console import get_console
from .scales import app_kwargs

__all__ = ["run_chaos"]

#: Small-but-representative default pair: SOR is barrier-phased with
#: wide sharing, Water lock-heavy with migratory pages.
DEFAULT_CHAOS_APPS = ("sor", "water")

#: At most this many failures get a telemetry bundle (a pathological
#: run can fail hundreds of cases; each bundle re-runs the execution).
MAX_FAILURE_BUNDLES = 3


def _factories(app_names, scale):
    out = {}
    for name in app_names:
        kw = app_kwargs(name, scale)
        out[name] = (lambda n=name, k=kw: make_app(n, **k))
    return out


def _rates(args):
    return {
        "drop": args.drop,
        "dup": args.dup,
        "delay": args.delay_rate,
        "reorder": args.reorder,
    }


def _disk_rates(args):
    return {
        "torn_tail": args.disk_torn,
        "write_error": args.disk_write_error,
        "bitrot": args.disk_bitrot,
    }


def _disk_extra(args) -> str:
    """Repro-command fragment for any nonzero disk fault rates."""
    parts = []
    if args.disk_torn:
        parts.append(f"--disk-torn {args.disk_torn}")
    if args.disk_write_error:
        parts.append(f"--disk-write-error {args.disk_write_error}")
    if args.disk_bitrot:
        parts.append(f"--disk-bitrot {args.disk_bitrot}")
    return " ".join(parts)


def _parse_zone_partition(value: Optional[str]) -> Optional[Tuple[int, int]]:
    """``"A,B"`` -> ``(A, B)``, with a one-line diagnosis on bad input."""
    if value is None:
        return None
    try:
        a, b = (int(part) for part in value.split(","))
    except ValueError:
        raise ConfigError(
            f"--zone-partition wants two zone ids 'A,B', got {value!r}"
        ) from None
    return (a, b)


def _zone_config(args) -> Tuple[ClusterConfig, Optional[Tuple[int, int]]]:
    """Build the (possibly zoned) cluster config and fail fast on
    impossible replication factors or unknown zones -- before any
    simulation runs."""
    config = ClusterConfig.ultra5(num_nodes=args.nodes)
    if args.zones is not None:
        config = config.with_zones(args.zones, wan_latency_s=args.zone_wan)
    elif args.zone_wan:
        raise ConfigError("--zone-wan needs --zones (one zone has no WAN)")
    zone_partition = _parse_zone_partition(args.zone_partition)
    validate_replication(args.replication, config.num_nodes)
    ZoneFaultSpec(
        zone_kill=args.zone_kill, zone_partition=zone_partition
    ).validate(config)
    if "failover" in args.protocols and args.replication < 2:
        raise ConfigError(
            "the failover protocol promotes a surviving replica, so it "
            f"needs --replication >= 2 (got {args.replication})"
        )
    return config, zone_partition


def _dump_failure_bundles(report: ChaosReport, factories, config, args) -> None:
    """Re-run up to MAX_FAILURE_BUNDLES failing cases traced and dump
    one telemetry bundle per case next to its repro command."""
    from ..obs.artifacts import config_dict, write_bundle
    from ..sim.trace import Tracer

    con = get_console()
    # one bundle per distinct (app, protocol, seed) execution
    seen = set()
    dumped = 0
    for case in report.failures:
        key = (case.app, case.protocol, case.seed)
        if key in seen or case.app not in factories:
            continue
        seen.add(key)
        if dumped >= MAX_FAILURE_BUNDLES:
            con.info(
                f"({len(report.failures)} failures; bundles capped at "
                f"{MAX_FAILURE_BUNDLES})"
            )
            break
        tracer = Tracer(enabled=True)
        try:
            run_chaos_run(
                factories[case.app], config, case.protocol, case.seed,
                app_name=case.app,
                crash_node=case.crash_node,
                crash_times=[case.crash_time],
                live_kill=case.live_kill,
                rates=_rates(args),
                disk_rates=_disk_rates(args),
                tracer=tracer,
                replication=args.replication,
                zone_kill=args.zone_kill,
                zone_partition=_parse_zone_partition(args.zone_partition),
            )
        except Exception as exc:  # the failure itself may raise
            con.info(f"traced re-run of seed {case.seed} raised: {exc!r}")
        manifest = {
            "command": "chaos-failure",
            "config": config_dict(config),
            "case": {
                "app": case.app,
                "protocol": case.protocol,
                "seed": case.seed,
                "crash_node": case.crash_node,
                "crash_time": case.crash_time,
                "live_kill": case.live_kill,
                "detail": case.detail,
                "mismatches": case.mismatches[:20],
                "salvage": case.salvage,
            },
            "repro_command": case.repro_command(),
        }
        bundle = write_bundle(args.runs_dir, manifest, tracer=tracer,
                              run_id=None, seeds=[case.seed])
        con.result(f"  telemetry bundle for seed {case.seed}: {bundle}")
        dumped += 1


def run_chaos(args) -> int:
    con = get_console()
    try:
        config, zone_partition = _zone_config(args)
    except ConfigError as exc:
        con.result(f"chaos: {exc}")
        return 2
    apps = args.apps if args.apps_given else list(DEFAULT_CHAOS_APPS)
    factories = _factories(apps, args.scale)
    repro_extra = f"--scale {args.scale} --nodes {args.nodes}"
    disk_extra = _disk_extra(args)
    if disk_extra:
        repro_extra += f" {disk_extra}"

    if args.seed is not None:
        # single-seed repro path, optionally pinned to one crash instant
        report = ChaosReport()
        for name, factory in sorted(factories.items()):
            for protocol in args.protocols:
                run_cases, plan, transport = run_chaos_run(
                    factory, config, protocol, args.seed,
                    app_name=name,
                    crash_points=args.crash_points,
                    crash_node=args.crash_node,
                    crash_times=(
                        [args.crash_time] if args.crash_time is not None else None
                    ),
                    live_kill=args.live_kill,
                    rates=_rates(args),
                    disk_rates=_disk_rates(args),
                    sanitize=args.sanitize,
                    repro_extra=repro_extra,
                    replication=args.replication,
                    zone_kill=args.zone_kill,
                    zone_partition=zone_partition,
                )
                report.cases.extend(run_cases)
                report.merge_totals(plan, transport)
                con.info(f"{name}/{protocol}: {plan.describe()}")
    else:
        report = run_chaos_suite(
            factories, config,
            protocols=tuple(args.protocols),
            seeds=args.seeds,
            first_seed=args.first_seed,
            crash_points=args.crash_points,
            kill_every=args.kill_every,
            rates=_rates(args),
            disk_rates=_disk_rates(args),
            sanitize=args.sanitize,
            fail_fast=args.fail_fast,
            repro_extra=repro_extra,
            replication=args.replication,
            zone_kill=args.zone_kill,
            zone_partition=zone_partition,
        )
    con.result(report.render())
    if report.failures and not args.no_artifacts:
        _dump_failure_bundles(report, factories, config, args)
    con.emit("chaos", {
        "cases": len(report.cases),
        "failures": len(report.failures),
        "fault_totals": dict(report.fault_totals),
        "transport_totals": dict(report.transport_totals),
    })
    return 0 if report.ok else 1
