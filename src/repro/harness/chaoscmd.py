"""The ``repro chaos`` command: seeded fault/crash property suite.

Default invocation runs ~200 cases (2 apps x 2 protocols x 13 seeds,
5 crash instants per probed run, every 4th seed a live kill) and exits
non-zero if any recovery is not bit-exact.  A failure prints a one-line
command that reproduces exactly that case::

    repro chaos --apps sor --protocols ccl --seed 7 \
        --crash-time 0.0123 --crash-node 2

See :mod:`repro.core.chaos` for the verification model.
"""

from __future__ import annotations

from ..apps import make_app
from ..config import ClusterConfig
from ..core.chaos import run_chaos_run, run_chaos_suite
from .scales import app_kwargs

__all__ = ["run_chaos"]

#: Small-but-representative default pair: SOR is barrier-phased with
#: wide sharing, Water lock-heavy with migratory pages.
DEFAULT_CHAOS_APPS = ("sor", "water")


def _factories(app_names, scale):
    out = {}
    for name in app_names:
        kw = app_kwargs(name, scale)
        out[name] = (lambda n=name, k=kw: make_app(n, **k))
    return out


def _rates(args):
    return {
        "drop": args.drop,
        "dup": args.dup,
        "delay": args.delay_rate,
        "reorder": args.reorder,
    }


def run_chaos(args) -> int:
    config = ClusterConfig.ultra5(num_nodes=args.nodes)
    apps = args.apps if args.apps_given else list(DEFAULT_CHAOS_APPS)
    factories = _factories(apps, args.scale)
    repro_extra = f"--scale {args.scale} --nodes {args.nodes}"

    if args.seed is not None:
        # single-seed repro path, optionally pinned to one crash instant
        from ..core.chaos import ChaosReport

        report = ChaosReport()
        for name, factory in sorted(factories.items()):
            for protocol in args.protocols:
                run_cases, plan, transport = run_chaos_run(
                    factory, config, protocol, args.seed,
                    app_name=name,
                    crash_points=args.crash_points,
                    crash_node=args.crash_node,
                    crash_times=(
                        [args.crash_time] if args.crash_time is not None else None
                    ),
                    live_kill=args.live_kill,
                    rates=_rates(args),
                    sanitize=args.sanitize,
                    repro_extra=repro_extra,
                )
                report.cases.extend(run_cases)
                report.merge_totals(plan, transport)
                print(f"{name}/{protocol}: {plan.describe()}")
    else:
        report = run_chaos_suite(
            factories, config,
            protocols=tuple(args.protocols),
            seeds=args.seeds,
            first_seed=args.first_seed,
            crash_points=args.crash_points,
            kill_every=args.kill_every,
            rates=_rates(args),
            sanitize=args.sanitize,
            fail_fast=args.fail_fast,
            repro_extra=repro_extra,
        )
    print(report.render())
    return 0 if report.ok else 1
