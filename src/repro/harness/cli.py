"""Command-line entry point: ``python -m repro``.

Regenerates the paper's evaluation from the terminal::

    python -m repro table1
    python -m repro table2 [--apps fft3d mg] [--scale bench] [--jobs 4]
    python -m repro fig4   [--scale bench] [--jobs 4]
    python -m repro fig5   [--scale bench] [--failed-node 3] [--jobs 4]
    python -m repro all    [--scale test|bench] [--jobs 4]
    python -m repro ablation [--which disk|pagesize] [--jobs 4]
    python -m repro perf   [--out BENCH_perf.json]
    python -m repro analyze [trace.jsonl | --apps lu --protocol ccl]
    python -m repro chaos  [--seeds 13] [--crash-points 5] [--seed N ...]

Each command prints the rendered table/figure; ``--csv PREFIX`` also
writes the underlying rows to ``PREFIX_<name>.csv``.  ``analyze`` runs
the coherence sanitizer (see :mod:`repro.analysis`) over a saved trace
or a fresh traced run.  ``--jobs N`` fans independent simulations
(per-app comparisons, ablation variants) out over N processes; results
are gathered in submission order, so the rendered tables are
byte-identical to a serial run.  ``perf`` runs the microbenchmark suite
(see :mod:`repro.harness.perf`) and writes ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..apps import PAPER_APPS
from ..config import ClusterConfig
from .figures import fig4_rows, fig5_rows, render_fig4, render_fig5, write_csv
from .runner import logging_comparison_task, recovery_comparison_task
from .sweep import parallel_map
from .tables import render_table1, render_table2_panel

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the evaluation of 'Coherence-Centric Logging "
        "and Recovery for Home-Based Software DSM' (ICPP 1999).",
    )
    p.add_argument(
        "command",
        choices=["table1", "table2", "fig4", "fig5", "breakdown", "report",
                 "analyze", "ablation", "perf", "chaos", "all"],
        help="which artefact to regenerate ('analyze' runs the coherence "
             "sanitizer, 'perf' the microbenchmark suite, 'chaos' the "
             "seeded fault-injection/recovery property suite)",
    )
    p.add_argument("trace", nargs="?", default=None, metavar="TRACE",
                   help="analyze: a saved JSONL trace to check (omit to "
                        "run --apps under the sanitizer instead)")
    p.add_argument("--save-trace", default=None, metavar="PATH",
                   help="analyze: also save the run's trace as JSONL")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the report command's Markdown here "
                        "(default: stdout)")
    p.add_argument("--protocol", default="ccl",
                   choices=["none", "ml", "ccl"],
                   help="logging protocol for the breakdown command")
    p.add_argument("--paper-mode", action="store_true",
                   help="writer-aligned homes + no home-write logging "
                        "(reproduces the paper's log-size ratios; "
                        "see EXPERIMENTS.md)")
    p.add_argument("--apps", nargs="*", default=None,
                   help="applications to run (default: the paper's four; "
                        "chaos defaults to sor+water)")
    p.add_argument("--scale", default="bench",
                   choices=["test", "bench", "paper"],
                   help="dataset scale (see repro.harness.scales)")
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size (paper: 8)")
    p.add_argument("--failed-node", type=int, default=3,
                   help="node crashed in recovery experiments")
    p.add_argument("--csv", default=None, metavar="PREFIX",
                   help="also write CSV files with this path prefix")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan independent simulations out over N processes "
                        "(default: serial; output is byte-identical)")
    p.add_argument("--which", default="disk", choices=["disk", "pagesize"],
                   help="ablation: which sweep to run")
    p.add_argument("--repeat", type=int, default=5,
                   help="perf: timing repetitions per kernel (best-of)")
    chaos = p.add_argument_group(
        "chaos", "seeded fault-injection / arbitrary-instant crash suite"
    )
    chaos.add_argument("--protocols", nargs="*", default=["ccl", "ml"],
                       choices=["ccl", "ml"],
                       help="logging protocols to exercise")
    chaos.add_argument("--seeds", type=int, default=13,
                       help="number of seeds per (app, protocol) pair")
    chaos.add_argument("--first-seed", type=int, default=0,
                       help="first seed of the sweep (nightly soak rotates "
                            "this)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="run exactly one seed (the repro path a "
                            "failure prints)")
    chaos.add_argument("--crash-points", type=int, default=5,
                       help="crash instants sampled per probed run")
    chaos.add_argument("--crash-time", type=float, default=None,
                       help="with --seed: pin the single crash instant "
                            "(virtual seconds)")
    chaos.add_argument("--crash-node", type=int, default=None,
                       help="with --seed: pin the victim node")
    chaos.add_argument("--live-kill", action="store_true",
                       help="with --seed: kill the victim live mid-run")
    chaos.add_argument("--kill-every", type=int, default=4,
                       help="every Nth seed becomes a live-kill case "
                            "(0 disables)")
    chaos.add_argument("--drop", type=float, default=0.08,
                       help="per-message drop probability")
    chaos.add_argument("--dup", type=float, default=0.08,
                       help="per-message duplication probability")
    chaos.add_argument("--delay-rate", type=float, default=0.12,
                       help="per-message extra-delay probability")
    chaos.add_argument("--reorder", type=float, default=0.12,
                       help="per-message reorder probability")
    chaos.add_argument("--sanitize", action="store_true",
                       help="also run the coherence sanitizer over each "
                            "faulted trace")
    chaos.add_argument("--fail-fast", action="store_true",
                       help="stop at the first failing case")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = _parser().parse_args(argv)
    args.apps_given = args.apps is not None
    if args.apps is None:
        args.apps = list(PAPER_APPS)
    config = ClusterConfig.ultra5(num_nodes=args.nodes)

    if args.command == "chaos":
        from .chaoscmd import run_chaos

        return run_chaos(args)

    if args.command == "analyze":
        from .analyze import run_analyze

        return run_analyze(args)

    if args.command in ("table1", "all"):
        print(render_table1(args.apps))
        print()

    if args.command == "ablation":
        from .ablations import run_ablation

        text, _points = run_ablation(args.which, config, jobs=args.jobs)
        print(text)
        return 0

    if args.command == "perf":
        from .perf import run_perf_suite, write_perf_json

        report = run_perf_suite(apps=args.apps, repeat=args.repeat)
        path = args.out or "BENCH_perf.json"
        write_perf_json(report, path)
        print(f"perf report written to {path}")
        return 0

    if args.command in ("table2", "fig4", "all"):
        specs = [
            dict(
                app_name=name, config=config, scale=args.scale,
                paper_mode=args.paper_mode,
            )
            for name in args.apps
        ]
        comparisons = parallel_map(logging_comparison_task, specs, jobs=args.jobs)
        if args.command in ("table2", "all"):
            for cmp in comparisons:
                print(render_table2_panel(cmp))
                print()
        if args.command in ("fig4", "all"):
            print(render_fig4(comparisons))
        if args.csv:
            write_csv(fig4_rows(comparisons), f"{args.csv}_fig4.csv")

    if args.command == "report":
        from .report import generate_report

        text = generate_report(config, args.scale, args.apps,
                               failed_node=args.failed_node)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"report written to {args.out}")
        else:
            print(text)

    if args.command == "breakdown":
        from .breakdown import render_breakdown
        from .runner import run_application

        for name in args.apps:
            result, _system = run_application(
                name, args.protocol, config, args.scale
            )
            print(render_breakdown(result))
            print()

    if args.command in ("fig5", "all"):
        specs = [
            dict(
                app_name=name, config=config, scale=args.scale,
                failed_node=args.failed_node,
            )
            for name in args.apps
        ]
        recoveries = parallel_map(recovery_comparison_task, specs, jobs=args.jobs)
        print(render_fig5(recoveries))
        if args.csv:
            write_csv(fig5_rows(recoveries), f"{args.csv}_fig5.csv")

    return 0
