"""Command-line entry point: ``python -m repro``.

Regenerates the paper's evaluation from the terminal::

    python -m repro table1
    python -m repro table2 [--apps fft3d mg] [--scale bench] [--jobs 4]
    python -m repro fig4   [--scale bench] [--jobs 4]
    python -m repro fig5   [--scale bench] [--failed-node 3] [--jobs 4]
    python -m repro all    [--scale test|bench] [--jobs 4]
    python -m repro ablation [--which disk|pagesize] [--jobs 4]
    python -m repro perf   [--out BENCH_perf.json] [--target]
    python -m repro analyze [trace.jsonl | --apps lu --protocol ccl]
    python -m repro chaos  [--seeds 13] [--crash-points 5] [--seed N ...]
                           [--replication K] [--zones N] [--zone-kill Z]
                           [--zone-partition A,B] [--zone-wan S]
    python -m repro modelcheck [--program lock] [--nodes 2] [--pages 1]
    python -m repro timeline [runs/<id> | trace.jsonl]
    python -m repro critical-path [runs/<id> | trace.jsonl]
    python -m repro compare runs/<A> runs/<B>
    python -m repro query [runs/<id>] [--report locks|pages|phases|flows]
    python -m repro explain runs/<A> runs/<B> | A B --from-history

Each command prints the rendered table/figure; ``--csv PREFIX`` also
writes the underlying rows to ``PREFIX_<name>.csv``.  Output goes
through the console layer (:mod:`repro.obs.console`): ``--quiet``
drops progress lines, ``--json`` emits one machine-readable document.
Commands that run simulations also write a run-artifact bundle to
``--runs-dir`` (default ``runs/``; disable with ``--no-artifacts``) --
``repro compare A B`` diffs two such bundles, ``repro timeline`` and
``repro critical-path`` analyse their recorded traces (see
docs/observability.md).  ``--jobs N`` fans independent simulations out
over N processes; results are gathered in submission order, so the
rendered tables are byte-identical to a serial run.  ``perf`` runs the
microbenchmark suite (see :mod:`repro.harness.perf`), writes
``BENCH_perf.json``, and appends the run to
``benchmark_results/history.jsonl`` (the committed perf trajectory).
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional

from ..apps import PAPER_APPS
from ..config import ClusterConfig
from ..core.logging_base import PROTOCOL_NAMES, RECOVERY_PROTOCOL_NAMES
from ..obs.artifacts import config_dict, result_summary, write_bundle
from ..obs.console import configure as configure_console
from .figures import fig4_rows, fig5_rows, render_fig4, render_fig5, write_csv
from .runner import logging_comparison_task, recovery_comparison_task
from .sweep import parallel_map
from .tables import render_table1, render_table2_panel

__all__ = ["main"]

COMMANDS = [
    "table1", "table2", "fig4", "fig5", "breakdown", "report", "analyze",
    "ablation", "perf", "chaos", "modelcheck", "timeline", "critical-path",
    "compare", "query", "explain", "all",
]


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the evaluation of 'Coherence-Centric Logging "
        "and Recovery for Home-Based Software DSM' (ICPP 1999).",
    )
    p.add_argument(
        "command",
        choices=COMMANDS,
        help="which artefact to regenerate ('analyze' runs the coherence "
             "sanitizer, 'perf' the microbenchmark suite, 'chaos' the "
             "seeded fault-injection/recovery property suite, 'modelcheck' "
             "the exhaustive small-scope schedule/crash explorer; "
             "'timeline', 'critical-path', 'compare', 'query' and "
             "'explain' work on run-artifact bundles)",
    )
    p.add_argument("trace", nargs="?", default=None, metavar="TRACE",
                   help="analyze/timeline/critical-path/query: a saved "
                        "JSONL trace or a runs/<id> bundle; "
                        "compare/explain: bundle A")
    p.add_argument("trace2", nargs="?", default=None, metavar="TRACE2",
                   help="compare/explain: bundle B")
    p.add_argument("--save-trace", default=None, metavar="PATH",
                   help="analyze: also save the run's trace as JSONL")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the report/perf/timeline output here "
                        "(default: stdout / BENCH_perf.json / "
                        "timeline.json)")
    p.add_argument("--protocol", default="ccl",
                   choices=list(PROTOCOL_NAMES),
                   help="logging protocol for the breakdown/timeline/"
                        "critical-path commands")
    p.add_argument("--recovery-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="adaptive protocol only: worst-case recovery-time "
                        "bound (virtual seconds) its cost model enforces; "
                        "default: unbounded (pure overhead minimisation)")
    p.add_argument("--paper-mode", action="store_true",
                   help="writer-aligned homes + no home-write logging "
                        "(reproduces the paper's log-size ratios; "
                        "see EXPERIMENTS.md)")
    p.add_argument("--apps", nargs="*", default=None,
                   help="applications to run (default: the paper's four; "
                        "chaos defaults to sor+water)")
    p.add_argument("--scale", default="bench",
                   choices=["test", "bench", "paper"],
                   help="dataset scale (see repro.harness.scales)")
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size (paper: 8)")
    p.add_argument("--failed-node", type=int, default=3,
                   help="node crashed in recovery experiments")
    p.add_argument("--csv", default=None, metavar="PREFIX",
                   help="also write CSV files with this path prefix")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan independent simulations out over N processes "
                        "(default: serial; output is byte-identical)")
    p.add_argument("--which", default="disk",
                   choices=["disk", "pagesize", "logsize", "adaptive",
                            "replication"],
                   help="ablation: which sweep to run")
    p.add_argument("--repeat", type=int, default=5,
                   help="perf: timing repetitions per kernel (best-of)")
    p.add_argument("--target", action="store_true",
                   help="perf: headline mode -- simulator events/s plus "
                        "one 64-node long-run wall clock, appended to "
                        "the trajectory (skips the full kernel suite)")
    obs = p.add_argument_group("output and run artifacts")
    obs.add_argument("--quiet", action="store_true",
                     help="suppress progress output (results still print)")
    obs.add_argument("--json", action="store_true", dest="json_mode",
                     help="emit one JSON document instead of text")
    obs.add_argument("--runs-dir", default="runs", metavar="DIR",
                     help="where run-artifact bundles are written "
                          "(default: runs/)")
    obs.add_argument("--no-artifacts", action="store_true",
                     help="do not write a run-artifact bundle")
    obs.add_argument("--history", default="benchmark_results/history.jsonl",
                     metavar="PATH",
                     help="perf: the append-only perf trajectory file")
    obs.add_argument("--report", default="all",
                     choices=["locks", "pages", "phases", "flows", "all"],
                     help="query: which built-in report to aggregate "
                          "(default: all of them)")
    obs.add_argument("--from-history", action="store_true",
                     help="explain: A and B are integer indices into "
                          "--history entries (0-based, from the front) "
                          "instead of "
                          "run bundles")
    chaos = p.add_argument_group(
        "chaos", "seeded fault-injection / arbitrary-instant crash suite"
    )
    chaos.add_argument("--protocols", nargs="*", default=["ccl", "ml"],
                       choices=list(RECOVERY_PROTOCOL_NAMES),
                       help="logging protocols to exercise")
    chaos.add_argument("--seeds", type=int, default=13,
                       help="number of seeds per (app, protocol) pair")
    chaos.add_argument("--first-seed", type=int, default=0,
                       help="first seed of the sweep (nightly soak rotates "
                            "this)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="run exactly one seed (the repro path a "
                            "failure prints)")
    chaos.add_argument("--crash-points", type=int, default=5,
                       help="crash instants sampled per probed run")
    chaos.add_argument("--crash-time", type=float, default=None,
                       help="with --seed: pin the single crash instant "
                            "(virtual seconds)")
    chaos.add_argument("--crash-node", type=int, default=None,
                       help="with --seed: pin the victim node")
    chaos.add_argument("--live-kill", action="store_true",
                       help="with --seed: kill the victim live mid-run")
    chaos.add_argument("--kill-every", type=int, default=4,
                       help="every Nth seed becomes a live-kill case "
                            "(0 disables)")
    chaos.add_argument("--drop", type=float, default=0.08,
                       help="per-message drop probability")
    chaos.add_argument("--dup", type=float, default=0.08,
                       help="per-message duplication probability")
    chaos.add_argument("--delay-rate", type=float, default=0.12,
                       help="per-message extra-delay probability")
    chaos.add_argument("--reorder", type=float, default=0.12,
                       help="per-message reorder probability")
    chaos.add_argument("--disk-torn", type=float, default=0.0,
                       help="per-crash probability that a byte prefix of "
                            "the in-flight flush survives (torn tail)")
    chaos.add_argument("--disk-write-error", type=float, default=0.0,
                       help="per-flush-attempt transient write-error "
                            "probability (retried with backoff)")
    chaos.add_argument("--disk-bitrot", type=float, default=0.0,
                       help="per-segment latent bit-flip probability "
                            "(caught by the salvage scan's CRC walk)")
    chaos.add_argument("--sanitize", action="store_true",
                       help="also run the coherence sanitizer over each "
                            "faulted trace")
    chaos.add_argument("--fail-fast", action="store_true",
                       help="stop at the first failing case")
    chaos.add_argument("--replication", type=int, default=1, metavar="K",
                       help="home replication factor: mirror every home's "
                            "sealed state onto K-1 followers with "
                            "quorum-acked writes (1 = off, byte-identical "
                            "to the unreplicated run; the failover "
                            "protocol needs K >= 2)")
    chaos.add_argument("--zones", type=int, default=None, metavar="N",
                       help="spread the cluster round-robin over N fault "
                            "domains (required by --zone-kill / "
                            "--zone-partition; replica placement becomes "
                            "zone-aware)")
    chaos.add_argument("--zone-wan", type=float, default=0.0,
                       metavar="SECONDS",
                       help="extra one-way latency for every message "
                            "crossing a zone boundary")
    chaos.add_argument("--zone-kill", type=int, default=None, metavar="Z",
                       help="chaos: live-kill every node of zone Z at a "
                            "seeded instant and verify each victim's "
                            "recovery with its co-victims dead")
    chaos.add_argument("--zone-partition", default=None, metavar="A,B",
                       help="chaos: partition zones A and B from each "
                            "other for a seeded window mid-run (the "
                            "reliable transport must ride it out)")
    mc = p.add_argument_group(
        "modelcheck", "small-scope exhaustive schedule/crash exploration"
    )
    mc.add_argument("--program", default="lock",
                    choices=["lock", "barrier"],
                    help="bounded program to explore (lock: contended "
                         "increments under one lock; barrier: disjoint "
                         "writes then neighbour reads)")
    mc.add_argument("--pages", type=int, default=1,
                    help="shared pages in the bounded config (1-2)")
    mc.add_argument("--budget", type=int, default=5000,
                    help="max schedules (explored + pruned) before the "
                         "exploration reports TRUNCATED")
    mc.add_argument("--no-dpor", action="store_true",
                    help="disable the sleep-set partial-order reduction "
                         "(explores all interleavings, not one per trace)")
    mc.add_argument("--no-recovery", action="store_true",
                    help="skip per-crash-point recovery checks (live "
                         "invariants only)")
    mc.add_argument("--allow-truncated", action="store_true",
                    help="exit 0 on a violation-free but budget-truncated "
                         "exploration (coverage run, not a proof; the "
                         "nightly 4-node sweeps use this)")
    mc.add_argument("--schedule", default=None, metavar="D.D.D",
                    help="replay exactly one delivery schedule (the "
                         "repro path a violation prints)")
    return p


def _write_run_bundle(args, config: ClusterConfig,
                      summaries: List[Dict[str, Any]],
                      extra: Optional[Dict[str, Any]] = None) -> None:
    """Persist one run-artifact bundle for a finished command."""
    if args.no_artifacts or not summaries:
        return
    manifest: Dict[str, Any] = {
        "command": args.command,
        "scale": args.scale,
        "config": config_dict(config),
        "results": summaries,
    }
    if extra:
        manifest.update(extra)
    bundle = write_bundle(args.runs_dir, manifest)
    from ..obs.console import get_console

    get_console().info(f"run bundle: {bundle}")


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = _parser().parse_args(argv)
    con = configure_console(quiet=args.quiet, json_mode=args.json_mode)
    try:
        code = _dispatch(args, con)
    finally:
        con.finish()
        configure_console()  # reset modes for in-process callers (tests)
    return code


def _dispatch(args, con) -> int:
    args.apps_given = args.apps is not None
    if args.apps is None:
        args.apps = list(PAPER_APPS)
    config = ClusterConfig.ultra5(num_nodes=args.nodes)
    summaries: List[Dict[str, Any]] = []

    if args.command == "chaos":
        from .chaoscmd import run_chaos

        return run_chaos(args)

    if args.command == "modelcheck":
        from .modelcheckcmd import run_modelcheck_cmd

        return run_modelcheck_cmd(args)

    if args.command == "analyze":
        from .analyze import run_analyze

        return run_analyze(args)

    if args.command == "timeline":
        from .obscmd import run_timeline

        return run_timeline(args, config)

    if args.command == "critical-path":
        from .obscmd import run_critical_path

        return run_critical_path(args, config)

    if args.command == "compare":
        from .obscmd import run_compare

        return run_compare(args)

    if args.command == "query":
        from .querycmd import run_query

        return run_query(args, config)

    if args.command == "explain":
        from .querycmd import run_explain

        return run_explain(args)

    if args.command in ("table1", "all"):
        con.result(render_table1(args.apps))
        con.result("")

    if args.command == "ablation":
        from .ablations import append_ablation_history, run_ablation

        text, points = run_ablation(args.which, config, jobs=args.jobs)
        con.result(text)
        entry = append_ablation_history(args.which, points, args.history)
        con.info(f"ablation history appended to {args.history} "
                 f"(rev {entry['git_rev']})")
        return 0

    if args.command == "perf":
        from .perf import (
            append_perf_history,
            run_perf_suite,
            run_target_headline,
            write_perf_json,
        )

        if args.target:
            report = run_target_headline(repeat=args.repeat)
            tgt = report["target"]
            con.result(
                f"sim_event_throughput  {tgt['events_per_sec']:>14,.0f} events/s"
                f"  ({tgt['ns_per_event']:.1f} ns/event)"
            )
            con.result(
                f"{tgt['longrun_app']}/{tgt['longrun_protocol']} x "
                f"{tgt['longrun_nodes']} nodes ({tgt['longrun_scale']})"
                f"  {tgt['longrun_wall_s']:.2f} s wall"
            )
        else:
            report = run_perf_suite(apps=args.apps, repeat=args.repeat)
            path = args.out or "BENCH_perf.json"
            write_perf_json(report, path)
            con.info(f"perf report written to {path}")
        entry = append_perf_history(report, args.history)
        con.info(f"perf history appended to {args.history} "
                 f"(rev {entry['git_rev']})")
        con.emit("perf", entry)
        return 0

    if args.command in ("table2", "fig4", "all"):
        specs = [
            dict(
                app_name=name, config=config, scale=args.scale,
                paper_mode=args.paper_mode,
            )
            for name in args.apps
        ]
        comparisons = parallel_map(logging_comparison_task, specs, jobs=args.jobs)
        if args.command in ("table2", "all"):
            for cmp in comparisons:
                con.result(render_table2_panel(cmp))
                con.result("")
        if args.command in ("fig4", "all"):
            con.result(render_fig4(comparisons))
        if args.csv:
            write_csv(fig4_rows(comparisons), f"{args.csv}_fig4.csv")
        for cmp in comparisons:
            for _protocol, result in sorted(cmp.results.items()):
                summaries.append(result_summary(result))

    if args.command == "report":
        from .report import generate_report

        text = generate_report(config, args.scale, args.apps,
                               failed_node=args.failed_node)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            con.info(f"report written to {args.out}")
        else:
            con.result(text)

    if args.command == "breakdown":
        from .breakdown import render_breakdown
        from .runner import run_application

        for name in args.apps:
            result, _system = run_application(
                name, args.protocol, config, args.scale,
                recovery_budget=args.recovery_budget,
            )
            con.result(render_breakdown(result))
            con.result("")
            summaries.append(result_summary(result))

    if args.command in ("fig5", "all"):
        specs = [
            dict(
                app_name=name, config=config, scale=args.scale,
                failed_node=args.failed_node,
            )
            for name in args.apps
        ]
        recoveries = parallel_map(recovery_comparison_task, specs, jobs=args.jobs)
        con.result(render_fig5(recoveries))
        if args.csv:
            write_csv(fig5_rows(recoveries), f"{args.csv}_fig5.csv")
        for rec in recoveries:
            summaries.append({
                "app": rec.app_name,
                "protocol": "recovery",
                "reexecution_s": rec.reexecution_s,
                "ml_recovery_s": rec.ml.recovery_time,
                "ccl_recovery_s": rec.ccl.recovery_time,
            })

    _write_run_bundle(args, config, summaries)
    return 0
