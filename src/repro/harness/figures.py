"""Text renderers for the paper's figures.

Both evaluation figures are normalised bar charts; we render them as
ASCII bars plus the underlying numbers, and expose the series as plain
rows for CSV emission.

* **Figure 4** -- failure-free execution time under None (=1.0), ML,
  and CCL, per application.
* **Figure 5** -- recovery time under re-execution (=1.0), ML-recovery,
  and CCL recovery, per application.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Sequence

from .runner import LoggingComparison, RecoveryComparison

__all__ = [
    "render_fig4",
    "render_fig5",
    "fig4_rows",
    "fig5_rows",
    "write_csv",
]

_BAR_WIDTH = 44


def _bar(value: float, vmax: float) -> str:
    n = max(1, int(round(_BAR_WIDTH * value / max(vmax, 1e-12))))
    return "#" * n


def fig4_rows(comparisons: Iterable[LoggingComparison]) -> List[Dict[str, float]]:
    """Figure 4 data: normalised execution time per app per protocol."""
    rows = []
    for cmp in comparisons:
        for protocol in ("none", "ml", "ccl"):
            rows.append(
                {
                    "app": cmp.app_name,
                    "protocol": protocol,
                    "normalized_time": cmp.normalized_time(protocol),
                    "exec_time_s": cmp.row(protocol).exec_time_s,
                }
            )
    return rows


def render_fig4(comparisons: Sequence[LoggingComparison]) -> str:
    """ASCII rendering of Figure 4 (impacts of logging on execution time)."""
    lines = [
        "Figure 4 -- Impacts of Logging Protocols on Execution Time",
        "(normalised to the no-logging home-based TreadMarks run)",
        "",
    ]
    vmax = max(
        cmp.normalized_time(p) for cmp in comparisons for p in ("none", "ml", "ccl")
    )
    label = {"none": "None", "ml": "ML  ", "ccl": "CCL "}
    for cmp in comparisons:
        lines.append(cmp.app_name)
        for protocol in ("none", "ml", "ccl"):
            v = cmp.normalized_time(protocol)
            overhead = 100.0 * (v - 1.0)
            suffix = "" if protocol == "none" else f"  (+{overhead:.1f}%)"
            lines.append(
                f"  {label[protocol]} {v:5.3f} |{_bar(v, vmax)}{suffix}"
            )
        lines.append("")
    return "\n".join(lines)


def fig5_rows(comparisons: Iterable[RecoveryComparison]) -> List[Dict[str, float]]:
    """Figure 5 data: normalised recovery time per app per scheme."""
    rows = []
    for cmp in comparisons:
        for scheme in ("reexec", "ml", "ccl"):
            rows.append(
                {
                    "app": cmp.app_name,
                    "scheme": scheme,
                    "normalized_time": cmp.normalized(scheme),
                    "reduction_pct": 100.0 * cmp.reduction(scheme),
                }
            )
    return rows


def render_fig5(comparisons: Sequence[RecoveryComparison]) -> str:
    """ASCII rendering of Figure 5 (crash recovery speed)."""
    lines = [
        "Figure 5 -- Impacts of Logging Protocols on Recovery Time",
        "(normalised to re-execution from the initial state)",
        "",
    ]
    label = {
        "reexec": "Re-Execution",
        "ml": "ML-Recovery ",
        "ccl": "Our Recovery",
    }
    for cmp in comparisons:
        lines.append(cmp.app_name)
        for scheme in ("reexec", "ml", "ccl"):
            v = cmp.normalized(scheme)
            red = 100.0 * cmp.reduction(scheme)
            suffix = "" if scheme == "reexec" else f"  (-{red:.1f}%)"
            lines.append(f"  {label[scheme]} {v:5.3f} |{_bar(v, 1.0)}{suffix}")
        lines.append("")
    return "\n".join(lines)


def write_csv(rows: List[Dict], path: str) -> None:
    """Write figure/table rows to a CSV file."""
    if not rows:
        raise ValueError("no rows to write")
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def rows_to_csv_text(rows: List[Dict]) -> str:
    """CSV text for embedding in reports."""
    if not rows:
        return ""
    import csv

    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()
