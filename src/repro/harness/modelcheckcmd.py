"""The ``repro modelcheck`` command: bounded schedule/crash exploration.

Drives the small-scope model checker (:mod:`repro.analysis.modelcheck`)
from the CLI.  Default invocation exhaustively explores every relevant
message-delivery interleaving of a 2-node, 1-page lock program under
CCL, checking the invariant catalogue and bit-exact recovery from every
reachable crash point::

    python -m repro modelcheck --nodes 2 --pages 1

Larger bounded configs (up to 4 nodes, 2 pages, the ``barrier``
program) explore until exhaustion or ``--budget`` schedules.  A
violation prints a one-line command that replays exactly the failing
schedule::

    python -m repro modelcheck --program lock --nodes 3 --pages 1 \
        --protocol ccl --schedule 0.2.1

``--no-dpor`` disables the sleep-set reduction (for measuring how much
it prunes); ``--no-recovery`` skips the crash-point recovery checks and
only verifies the live invariants.  Exit status is non-zero when any
violation is found or the exploration was truncated by the budget.
"""

from __future__ import annotations

from ..obs.console import get_console

__all__ = ["run_modelcheck_cmd"]


def run_modelcheck_cmd(args) -> int:
    """Entry point for ``repro modelcheck``; returns an exit code."""
    from ..analysis.modelcheck import run_modelcheck

    con = get_console()
    try:
        report = run_modelcheck(
            program=args.program,
            nodes=args.nodes,
            pages=args.pages,
            protocol=args.protocol,
            budget=args.budget,
            use_dpor=not args.no_dpor,
            check_recovery=not args.no_recovery,
            schedule=args.schedule,
        )
    except ValueError as exc:  # bad small-scope bounds / unknown program
        con.error(str(exc))
        return 2
    con.result(report.render())
    con.emit("modelcheck", {
        "program": report.program,
        "protocol": report.protocol,
        "nodes": report.nodes,
        "pages": report.pages,
        "dpor": report.use_dpor,
        "explored": report.explored,
        "pruned": report.pruned,
        "transitions": report.transitions,
        "recovery_checks": report.recovery_checks,
        "truncated": report.truncated,
        "violations": len(report.violations),
    })
    if not report.ok:
        return 1
    if report.truncated and args.schedule is None:
        if getattr(args, "allow_truncated", False):
            con.info("state space not exhausted within --budget "
                     f"{args.budget} (coverage run, --allow-truncated)")
            return 0
        con.error("state space not exhausted within --budget "
                  f"{args.budget}; raise the budget for a proof")
        return 1
    return 0
