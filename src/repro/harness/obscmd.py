"""The ``repro timeline`` / ``critical-path`` / ``compare`` commands.

Three entry points over the telemetry layer (:mod:`repro.obs`):

* ``repro timeline <run>`` -- export a Chrome trace-event / Perfetto
  JSON timeline from a run bundle (``runs/<id>``), a saved
  ``trace.jsonl``, or a fresh traced run of ``--apps``;
* ``repro critical-path [<run>]`` -- extract the causal critical path
  and report the flush/communication overlap fraction (the paper's CCL
  claim, measured per run);
* ``repro compare A B`` -- diff two run bundles' numeric results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Tuple

from ..config import ClusterConfig
from ..errors import HarnessError
from ..obs import (
    chrome_trace,
    compare_bundles,
    critical_path,
    flush_overlap,
    get_console,
    load_bundle,
    render_compare,
    render_overlap,
    summarize_path,
    validate_chrome_trace,
    write_bundle,
)
from ..obs.artifacts import config_dict, result_summary
from ..obs.critical import render_path
from ..obs.metrics import MetricsRegistry
from ..sim.trace import Tracer

__all__ = ["run_timeline", "run_critical_path", "run_compare"]


def _load_tracer(path: str) -> Tracer:
    """A tracer from a bundle dir, a manifest path, or a JSONL trace."""
    p = Path(path)
    if p.name == "manifest.json":
        p = p.parent
    if p.is_dir():
        manifest = load_bundle(str(p))
        trace_file = manifest.get("trace_file")
        if trace_file is None:
            raise HarnessError(f"bundle {p} has no recorded trace")
        p = p / trace_file
    if not p.exists():
        raise HarnessError(f"no trace at {p}")
    return Tracer.load(str(p))


def _record_traced(
    app: str, protocol: str, config: ClusterConfig, scale: str
) -> Tuple[Any, Tracer]:
    """One traced run of ``app`` under ``protocol``."""
    from ..analysis.sanitize import traced
    from .runner import run_application

    with traced():
        result, system = run_application(app, protocol, config, scale)
    return result, system.tracer


# ----------------------------------------------------------------------
def run_timeline(args, config: ClusterConfig) -> int:
    """Export a Perfetto-loadable timeline; returns exit code."""
    con = get_console()
    if args.trace is not None:
        tracer = _load_tracer(args.trace)
        source = args.trace
        default_out = (
            str(Path(args.trace) / "timeline.json")
            if Path(args.trace).is_dir() else "timeline.json"
        )
    else:
        app = args.apps[0]
        result, tracer = _record_traced(app, args.protocol, config, args.scale)
        source = f"{app}/{args.protocol}@{args.scale}"
        default_out = "timeline.json"
        if not args.no_artifacts:
            manifest = {
                "command": "timeline",
                "config": config_dict(config),
                "results": [result_summary(result)],
                "metrics": MetricsRegistry.from_run(result, tracer).snapshot(),
            }
            bundle = write_bundle(args.runs_dir, manifest, tracer=tracer,
                                  timeline=chrome_trace(tracer))
            con.info(f"run bundle: {bundle}")
            default_out = str(bundle / "timeline.json")

    doc = chrome_trace(tracer)
    problems = validate_chrome_trace(doc)
    out = args.out or default_out
    with open(out, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    con.result(
        f"timeline written to {out}: {len(doc['traceEvents'])} trace events "
        f"({len(tracer.spans)} spans, {len(tracer.edges)} edges) from {source}"
    )
    con.emit("timeline", {"out": out, "events": len(doc["traceEvents"]),
                          "problems": problems})
    if problems:
        con.error(f"schema problems: {problems[:5]}")
        return 1
    con.result("schema check: ok (load it at https://ui.perfetto.dev)")
    return 0


# ----------------------------------------------------------------------
def _report_one(
    label: str, tracer: Tracer, con, payload: dict, protocol: str
) -> None:
    path = critical_path(tracer)
    con.result(f"== {label} ==")
    con.result(render_path(path, limit=args_limit(path)))
    overlap = flush_overlap(tracer)
    con.result(render_overlap(overlap, protocol))
    con.result("")
    payload[label] = {
        "by_cat": summarize_path(path),
        "segments": len(path),
        "overlap_fraction": overlap.overlap_fraction,
        "flush_s": overlap.total_flush_s,
        "hidden_s": overlap.hidden_s,
    }


def args_limit(path) -> int:
    """Show full short paths, tails of long ones."""
    return 0 if len(path) <= 20 else 12


def run_critical_path(args, config: ClusterConfig) -> int:
    """Critical-path + flush-overlap report; returns exit code."""
    con = get_console()
    payload: dict = {}
    if args.trace is not None:
        tracer = _load_tracer(args.trace)
        _report_one(args.trace, tracer, con, payload, args.protocol)
    else:
        summaries = []
        overlaps = {}
        for app in args.apps:
            result, tracer = _record_traced(app, args.protocol, config,
                                            args.scale)
            label = f"{app}/{args.protocol}@{args.scale}"
            _report_one(label, tracer, con, payload, args.protocol)
            summaries.append(result_summary(result))
            overlaps[app] = payload[label]["overlap_fraction"]
        if not args.no_artifacts:
            manifest = {
                "command": "critical-path",
                "config": config_dict(config),
                "results": summaries,
                "overlap": overlaps,
            }
            bundle = write_bundle(args.runs_dir, manifest)
            con.info(f"run bundle: {bundle}")
    con.emit("critical_path", payload)
    return 0


# ----------------------------------------------------------------------
def run_compare(args) -> int:
    """Diff two run bundles; returns exit code."""
    con = get_console()
    if args.trace is None or args.trace2 is None:
        con.error("compare needs two run bundles: repro compare A B")
        return 2
    cmp = compare_bundles(load_bundle(args.trace), load_bundle(args.trace2))
    con.result(render_compare(cmp))
    con.emit("compare", cmp)
    return 0
