"""The ``repro perf`` microbenchmark suite.

Measures the hot kernels the paper's protocols exercise at every
release/barrier -- diff creation, merging, application, the packed
wire/log encoding -- plus the simulator's raw event throughput and
end-to-end application wall times, and writes everything to
``BENCH_perf.json`` so later performance PRs have a recorded trajectory
to compare against.

Each diff kernel is timed twice: the production (vectorised) kernel and
the preserved pre-vectorisation reference from
:mod:`repro.memory.reference`, so the reported ``speedup`` is a live
measurement, not a changelog claim.  ``check_kernels`` runs the same
pairings for *correctness only* (randomised inputs, byte-equality
asserts) and is what CI's ``perf-smoke`` job executes -- no timing
gate, so slow shared runners cannot flake it.

This module reads the host's wall clock on purpose: it benchmarks real
CPU work, unlike everything under :mod:`repro.sim`, which must use
virtual time only.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..memory.diff import (
    Diff,
    apply_diff,
    create_diff,
    decode_diff,
    encode_diff,
    merge_diffs,
)
from ..memory.reference import (
    reference_apply_diff,
    reference_create_diff,
    reference_encode_diff,
    reference_merge_diffs,
)

__all__ = [
    "run_perf_suite",
    "run_kernel_benchmarks",
    "run_app_benchmarks",
    "run_log_truncation_bench",
    "run_target_headline",
    "check_kernels",
    "write_perf_json",
    "append_perf_history",
]

#: Page size the diff kernels are benchmarked at (the simulator default).
BENCH_PAGE_BYTES = 4096


# ----------------------------------------------------------------------
# timing scaffolding
# ----------------------------------------------------------------------

def _time_ns_per_op(fn: Callable[[], Any], repeat: int = 5) -> float:
    """Best-of-``repeat`` nanoseconds per call, auto-calibrated.

    The inner iteration count is chosen so one timed batch takes at
    least ~2 ms, which keeps the clock-read overhead negligible without
    making the whole suite slow.
    """
    iters = 1
    while True:
        t0 = time.perf_counter_ns()  # lint: ignore[DET001] - benchmarks real work
        for _ in range(iters):
            fn()
        dt = time.perf_counter_ns() - t0  # lint: ignore[DET001]
        if dt >= 2_000_000 or iters >= 1_000_000:
            break
        iters *= 4
    best = dt / iters
    for _ in range(repeat - 1):
        t0 = time.perf_counter_ns()  # lint: ignore[DET001]
        for _ in range(iters):
            fn()
        dt = time.perf_counter_ns() - t0  # lint: ignore[DET001]
        best = min(best, dt / iters)
    return best


# ----------------------------------------------------------------------
# workload construction (deterministic)
# ----------------------------------------------------------------------

def _dense_pair() -> tuple:
    """Twin/current differing in every word (full-page diff)."""
    twin = np.zeros(BENCH_PAGE_BYTES, dtype=np.uint8)
    cur = np.empty(BENCH_PAGE_BYTES, dtype=np.uint8)
    cur.view(np.uint32)[:] = np.arange(BENCH_PAGE_BYTES // 4, dtype=np.uint32) + 1
    return twin, cur


def _scattered_pair(stride: int = 2) -> tuple:
    """Twin/current differing at every ``stride``-th word (worst-case runs)."""
    twin = np.zeros(BENCH_PAGE_BYTES, dtype=np.uint8)
    cur = twin.copy()
    cur.view(np.uint32)[::stride] = 0xDEADBEEF
    return twin, cur


def _random_pair(rng: np.random.Generator, density: float) -> tuple:
    twin = rng.integers(0, 256, BENCH_PAGE_BYTES, dtype=np.uint8)
    cur = twin.copy()
    nwords = BENCH_PAGE_BYTES // 4
    k = max(1, int(density * nwords))
    idx = rng.choice(nwords, size=k, replace=False)
    cur.view(np.uint32)[idx] ^= rng.integers(
        1, 2**32, k, dtype=np.uint64
    ).astype(np.uint32)
    return twin, cur


# ----------------------------------------------------------------------
# kernel benchmarks
# ----------------------------------------------------------------------

def run_kernel_benchmarks(repeat: int = 5) -> Dict[str, Dict[str, float]]:
    """ns/op for every hot kernel, vectorised vs reference."""
    dense_twin, dense_cur = _dense_pair()
    scat_twin, scat_cur = _scattered_pair()

    d_dense_a = create_diff(0, dense_twin, dense_cur)
    d_dense_b = create_diff(0, dense_twin, np.roll(dense_cur, 4))
    d_scat = create_diff(0, scat_twin, scat_cur)
    target = dense_twin.copy()
    packed = encode_diff(d_scat)

    kernels: Dict[str, Dict[str, Callable[[], Any]]] = {
        "create_diff_dense": {
            "new": lambda: create_diff(0, dense_twin, dense_cur),
            "ref": lambda: reference_create_diff(0, dense_twin, dense_cur),
        },
        "create_diff_scattered": {
            "new": lambda: create_diff(0, scat_twin, scat_cur),
            "ref": lambda: reference_create_diff(0, scat_twin, scat_cur),
        },
        "merge_diffs_dense_fullpage": {
            "new": lambda: merge_diffs(d_dense_a, d_dense_b),
            "ref": lambda: reference_merge_diffs(d_dense_a, d_dense_b),
        },
        "merge_diffs_scattered": {
            "new": lambda: merge_diffs(d_scat, d_dense_a),
            "ref": lambda: reference_merge_diffs(d_scat, d_dense_a),
        },
        "apply_diff_dense": {
            "new": lambda: apply_diff(d_dense_a, target),
            "ref": lambda: reference_apply_diff(d_dense_a, target),
        },
        "apply_diff_scattered": {
            "new": lambda: apply_diff(d_scat, target),
            "ref": lambda: reference_apply_diff(d_scat, target),
        },
        "stablelog_encode": {
            "new": lambda: encode_diff(d_scat),
            "ref": lambda: reference_encode_diff(d_scat),
        },
        "stablelog_decode": {
            "new": lambda: decode_diff(packed),
        },
        "diff_instantiation": {
            "new": lambda: Diff.from_flat(0, d_scat.offsets, d_scat.words),
        },
    }

    out: Dict[str, Dict[str, float]] = {}
    for name, variants in kernels.items():
        row: Dict[str, float] = {
            "ns_per_op": _time_ns_per_op(variants["new"], repeat)
        }
        if "ref" in variants:
            row["reference_ns_per_op"] = _time_ns_per_op(variants["ref"], repeat)
            row["speedup"] = row["reference_ns_per_op"] / row["ns_per_op"]
        out[name] = {k: round(v, 2) for k, v in row.items()}
    out["message_instantiation"] = _message_instantiation_bench(repeat)
    out["sim_event_throughput"] = _sim_event_bench(repeat)
    return out


def _message_instantiation_bench(repeat: int) -> Dict[str, float]:
    """Construction rate of the slotted hot message/process types.

    Tracks the ``__slots__`` satellite: slotted dataclasses allocate no
    per-instance ``__dict__``, which this number makes visible.
    """
    from ..dsm.interval import VectorClock
    from ..dsm.messages import DiffBatch, PageRequest

    vt = VectorClock.zero(8)
    d = Diff(0)

    def body():
        PageRequest(1, 2)
        DiffBatch(0, 1, vt, [d])

    return {"ns_per_op": round(_time_ns_per_op(body, repeat), 2)}


def _sim_event_bench(repeat: int, events: int = 20_000) -> Dict[str, float]:
    """Raw engine throughput: timeout events processed per second.

    Yields bare floats — the canonical zero-allocation timeout idiom
    the DSM hot paths use (``Timeout`` is the validated wrapper form).
    """
    from ..sim.engine import Simulator

    def run_once():
        sim = Simulator()

        def body():
            for _ in range(events):
                yield 0.001

        sim.spawn(body(), name="bench")
        sim.run()

    ns = _time_ns_per_op(run_once, repeat=max(2, repeat - 2))
    return {
        "ns_per_event": round(ns / events, 2),
        "events_per_sec": round(events / (ns * 1e-9), 0),
    }


# ----------------------------------------------------------------------
# campaign headline: ``repro perf --target``
# ----------------------------------------------------------------------

def run_target_headline(
    repeat: int = 5,
    nodes: int = 64,
    app: str = "sor",
    scale: str = "bench",
    protocol: str = "ccl",
) -> Dict[str, Any]:
    """The speed-campaign headline numbers, as a minimal perf report.

    Two figures only: raw engine throughput (events/s) and the host
    wall-clock of one long 64-node application run -- the two numbers
    the event-loop rewrite is judged by.  Returns a report shaped like
    :func:`run_perf_suite` (so :func:`append_perf_history` accepts it)
    with an extra ``target`` block.
    """
    from ..config import ClusterConfig
    from .runner import run_application

    sim_row = _sim_event_bench(repeat)
    config = ClusterConfig.ultra5(num_nodes=nodes)
    t0 = time.perf_counter()  # lint: ignore[DET001] - benchmarks real work
    run_application(app, protocol, config, scale)
    wall = round(time.perf_counter() - t0, 4)  # lint: ignore[DET001]
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "kernels": {"sim_event_throughput": sim_row},
        "target": {
            "events_per_sec": sim_row["events_per_sec"],
            "ns_per_event": sim_row["ns_per_event"],
            "longrun_app": app,
            "longrun_nodes": nodes,
            "longrun_scale": scale,
            "longrun_protocol": protocol,
            "longrun_wall_s": wall,
        },
    }


# ----------------------------------------------------------------------
# end-to-end application wall times
# ----------------------------------------------------------------------

def run_app_benchmarks(
    apps: Optional[List[str]] = None, scale: str = "test", protocol: str = "ccl"
) -> Dict[str, float]:
    """Host wall-clock seconds for one full simulated run per app."""
    from ..config import ClusterConfig
    from .runner import run_application

    apps = apps or ["sor", "mg"]
    config = ClusterConfig.ultra5(num_nodes=8)
    out: Dict[str, float] = {}
    for name in apps:
        t0 = time.perf_counter()  # lint: ignore[DET001] - benchmarks real work
        run_application(name, protocol, config, scale)
        out[name] = round(time.perf_counter() - t0, 4)  # lint: ignore[DET001]
    return out


# ----------------------------------------------------------------------
# checkpoint-driven log truncation accounting
# ----------------------------------------------------------------------

def run_log_truncation_bench() -> Dict[str, float]:
    """Live/reclaimed log bytes for one checkpoint-truncated run.

    One small SHALLOW/ML recovery experiment with checkpoints every 4
    seals and a retention depth of 2, so the committed perf record
    tracks how many log bytes truncation reclaims (virtual quantities:
    deterministic, unlike the wall-clock numbers above).
    """
    from ..apps import make_app
    from ..config import ClusterConfig
    from ..core.recovery import run_recovery_experiment

    result = run_recovery_experiment(
        make_app("shallow", n=16, steps=8),
        ClusterConfig.ultra5(num_nodes=4),
        "ml",
        failed_node=1,
        checkpoint_every=4,
        retention=2,
    )
    a = result.phase_a
    return {
        "bytes_flushed": float(a.total_log_bytes),
        "live_log_bytes": float(a.live_log_bytes),
        "reclaimed_bytes": float(a.reclaimed_log_bytes),
        "recovery_ok": float(result.ok),
    }


# ----------------------------------------------------------------------
# correctness check (CI perf-smoke mode)
# ----------------------------------------------------------------------

def check_kernels(cases: int = 200, seed: int = 0) -> int:
    """Assert vectorised kernels match the references byte-for-byte.

    Randomised twin/current pairs across densities, covering create,
    merge (second wins on overlap), apply, and the packed encoding
    roundtrip.  Returns the number of cases checked; raises
    ``AssertionError`` on any divergence.
    """
    rng = np.random.default_rng(seed)
    checked = 0
    for i in range(cases):
        density = float(rng.choice([0.001, 0.01, 0.1, 0.5, 1.0]))
        twin1, cur1 = _random_pair(rng, density)
        twin2, cur2 = _random_pair(rng, density)

        d1 = create_diff(7, twin1, cur1)
        r1 = reference_create_diff(7, twin1, cur1)
        assert np.array_equal(d1.offsets, r1.offsets), "create_diff offsets"
        assert np.array_equal(d1.words, r1.words), "create_diff words"
        assert d1.nbytes == r1.nbytes, "create_diff nbytes"

        d2 = create_diff(7, twin2, cur2)
        m = merge_diffs(d1, d2)
        rm = reference_merge_diffs(r1, d2)
        assert np.array_equal(m.offsets, rm.offsets), "merge_diffs offsets"
        assert np.array_equal(m.words, rm.words), "merge_diffs words"
        assert m.nbytes == rm.nbytes, "merge_diffs nbytes"

        t_new = twin1.copy()
        t_ref = twin1.copy()
        assert apply_diff(m, t_new) == reference_apply_diff(rm, t_ref)
        assert np.array_equal(t_new, t_ref), "apply_diff contents"

        packed = encode_diff(d1)
        assert packed.size == d1.nbytes, "encode_diff size == modelled nbytes"
        assert np.array_equal(packed, reference_encode_diff(r1)), "encode bytes"
        rt = decode_diff(packed)
        assert np.array_equal(rt.offsets, d1.offsets), "decode offsets"
        assert np.array_equal(rt.words, d1.words), "decode words"

        # dense fast path explicitly: a full-page single-run diff takes
        # the cached-span slice branch of apply_diff; reapplying the
        # *same* object hits the cache, both must stay byte-exact
        full = create_diff(7, twin1, np.where(twin1 != cur1, cur1, twin1 + 1))
        if full.run_count == 1:
            a_new = twin1.copy()
            a_ref = twin1.copy()
            assert apply_diff(full, a_new) == reference_apply_diff(full, a_ref)
            assert apply_diff(full, a_new) == full.word_count, "span cache"
            assert np.array_equal(a_new, a_ref), "dense apply contents"
        checked += 1
    return checked


# ----------------------------------------------------------------------
# suite driver + JSON emission
# ----------------------------------------------------------------------

def run_perf_suite(
    apps: Optional[List[str]] = None,
    repeat: int = 5,
    scale: str = "test",
) -> Dict[str, Any]:
    """Full suite: correctness check, kernel timings, app wall times."""
    checked = check_kernels(cases=50)
    report: Dict[str, Any] = {
        "schema": 1,
        "page_bytes": BENCH_PAGE_BYTES,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "correctness_cases": checked,
        "kernels": run_kernel_benchmarks(repeat=repeat),
        "apps_wall_s": run_app_benchmarks(apps=apps, scale=scale),
        "log_truncation": run_log_truncation_bench(),
    }
    return report


def write_perf_json(report: Dict[str, Any], path: str) -> None:
    """Write the perf report as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def append_perf_history(
    report: Dict[str, Any],
    path: str = "benchmark_results/history.jsonl",
) -> Dict[str, Any]:
    """Append one compact trajectory entry; returns the entry.

    ``history.jsonl`` is the committed perf record: one line per
    ``repro perf`` run with the timestamp, git revision, and the
    headline numbers (kernel ns/op, simulator events/s, and app wall
    times), so regressions show up as a diff in review instead of
    vanishing with the runner.  ``benchmarks/check_perf_gate.py`` reads
    the last line back as its regression baseline.
    """
    from ..obs.artifacts import git_rev

    entry: Dict[str, Any] = {
        "schema": 1,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": git_rev(),
        "python": report.get("python"),
        "numpy": report.get("numpy"),
        "kernels_ns_per_op": {
            name: row["ns_per_op"]
            for name, row in report.get("kernels", {}).items()
            if row.get("ns_per_op") is not None
        },
        "apps_wall_s": dict(report.get("apps_wall_s", {})),
        "log_truncation": dict(report.get("log_truncation", {})),
    }
    sim = report.get("kernels", {}).get("sim_event_throughput")
    if sim:
        entry["sim_events_per_sec"] = sim.get("events_per_sec")
        entry["sim_ns_per_event"] = sim.get("ns_per_event")
    if report.get("target"):
        entry["target"] = dict(report["target"])
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry
