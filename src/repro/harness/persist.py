"""Result persistence: JSON-serialisable snapshots of experiment output.

Runs are deterministic, but the paper-scale simulations take minutes;
persisting their measurements lets EXPERIMENTS.md numbers be traced to
a concrete artefact and lets notebooks post-process results without
re-simulating.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..core import MultiRecoveryResult, RecoveryResult
from ..dsm.system import RunResult

__all__ = [
    "run_result_to_dict",
    "recovery_result_to_dict",
    "multi_recovery_result_to_dict",
    "save_json",
    "load_json",
]


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A JSON-friendly snapshot of a failure-free run."""
    return {
        "kind": "run",
        "app": result.app_name,
        "protocol": result.protocol,
        "completed": result.completed,
        "blocked": list(result.blocked),
        "total_time_s": result.total_time,
        "num_nodes": len(result.node_stats),
        "network_bytes": result.network_bytes,
        "network_msgs": result.network_msgs,
        "bytes_by_kind": dict(result.bytes_by_kind),
        "log": {
            "num_flushes": result.num_flushes,
            "total_bytes": result.total_log_bytes,
            "mean_flush_bytes": result.mean_flush_bytes,
        },
        "nodes": [s.as_dict() for s in result.node_stats],
    }


def recovery_result_to_dict(result: RecoveryResult) -> Dict[str, Any]:
    """A JSON-friendly snapshot of a single-failure recovery."""
    return {
        "kind": "recovery",
        "app": result.app_name,
        "protocol": result.protocol,
        "failed_node": result.failed_node,
        "at_seal": result.at_seal,
        "recovery_time_s": result.recovery_time,
        "verified": result.verified,
        "bit_exact": result.ok,
        "mismatches": list(result.mismatches),
        "replay": result.replay_stats.as_dict(),
    }


def multi_recovery_result_to_dict(result: MultiRecoveryResult) -> Dict[str, Any]:
    """A JSON-friendly snapshot of a multi-failure recovery."""
    return {
        "kind": "multi_recovery",
        "app": result.app_name,
        "protocol": result.protocol,
        "failed_nodes": list(result.failed_nodes),
        "at_seals": {str(k): v for k, v in result.at_seals.items()},
        "recovery_time_s": result.recovery_time,
        "per_node_times_s": {str(k): v for k, v in result.recovery_times.items()},
        "bit_exact": result.ok,
    }


def save_json(results: List[Any], path: str) -> None:
    """Serialise a heterogeneous list of results to one JSON file."""
    payload = []
    for r in results:
        if isinstance(r, RunResult):
            payload.append(run_result_to_dict(r))
        elif isinstance(r, RecoveryResult):
            payload.append(recovery_result_to_dict(r))
        elif isinstance(r, MultiRecoveryResult):
            payload.append(multi_recovery_result_to_dict(r))
        elif isinstance(r, dict):
            payload.append(r)
        else:
            raise TypeError(f"cannot serialise {type(r).__name__}")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)


def load_json(path: str) -> List[Dict[str, Any]]:
    """Load results previously written by :func:`save_json`."""
    with open(path) as fh:
        return json.load(fh)
