"""The ``repro query`` / ``repro explain`` commands.

Two entry points over the columnar analytics layer
(:mod:`repro.obs.analytics` / :mod:`repro.obs.explain`):

* ``repro query <run> [--report locks|pages|phases|flows|all]`` -- run
  the built-in aggregation reports over a run's columnar trace index
  (built and cached on first use); with no run argument, records a
  fresh traced run of ``--apps [0]`` first and writes its bundle;
* ``repro explain <runA> <runB>`` -- attribute the wall-clock delta
  between two run bundles to protocol phases, spans, and counters;
  ``repro explain A B --from-history`` instead diffs two entries of
  ``benchmark_results/history.jsonl`` by integer index (argparse eats
  leading-dash tokens, so count from the front: with N entries,
  ``N-2 N-1`` is "what changed in the last perf run").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..config import ClusterConfig
from ..errors import HarnessError
from ..obs import analytics
from ..obs.artifacts import config_dict, load_bundle, result_summary, write_bundle
from ..obs.console import get_console
from ..obs.explain import explain_history, explain_manifests, render_explain
from ..obs.metrics import MetricsRegistry

__all__ = ["run_query", "run_explain"]


def _bundle_dir(path: str) -> Path:
    """Normalise a bundle dir / manifest / trace path to the directory."""
    p = Path(path)
    return p.parent if p.is_file() else p


def _record_query_bundle(args, config: ClusterConfig) -> str:
    """Record one traced run and write its bundle; returns the dir."""
    from .obscmd import _record_traced

    app = args.apps[0]
    result, tracer = _record_traced(app, args.protocol, config, args.scale)
    manifest = {
        "command": "query",
        "config": config_dict(config),
        "results": [result_summary(result)],
        "metrics": MetricsRegistry.from_run(result, tracer).snapshot(),
    }
    bundle = write_bundle(args.runs_dir, manifest, tracer=tracer)
    get_console().info(
        f"recorded {app}/{args.protocol}@{args.scale} -> bundle {bundle}")
    return str(bundle)


def run_query(args, config: ClusterConfig) -> int:
    """Aggregate built-in reports over a run's columnar index."""
    con = get_console()
    source = args.trace
    if source is None:
        source = _record_query_bundle(args, config)

    trace_path = analytics.resolve_trace_path(source)
    if not Path(trace_path).exists():
        con.error(f"no trace at {trace_path} -- record one with "
                  f"`repro query --apps <app>` or `repro timeline`")
        return 2
    ct = analytics.load_or_ingest(trace_path)
    con.info(f"columnar index: {ct.summary()} (from {ct.source})")

    names = (list(analytics.REPORTS) if args.report == "all"
             else [args.report])
    payload: Dict[str, Any] = {"source": source, "index": ct.summary(),
                               "index_source": ct.source}
    for name in names:
        doc = analytics.run_report(ct, name)
        payload[name] = doc
        con.result(analytics.render_report(doc))
        con.result("")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        con.info(f"report document written to {args.out}")
    con.emit("query", payload)
    return 0


def _history_entries(path: str) -> List[Dict[str, Any]]:
    try:
        with open(path) as fh:
            return [json.loads(ln) for ln in fh if ln.strip()]
    except OSError as exc:
        raise HarnessError(f"cannot read history {path}: {exc}") from exc


def _maybe_columnar(path: str) -> Optional[analytics.ColumnarTrace]:
    trace_path = analytics.resolve_trace_path(path)
    if not Path(trace_path).exists():
        return None
    return analytics.load_or_ingest(trace_path)


def run_explain(args) -> int:
    """Attribute the delta between two runs or two history entries."""
    con = get_console()
    if args.trace is None or args.trace2 is None:
        con.error("explain needs two runs: repro explain A B "
                  "(or --from-history A B with integer indices)")
        return 2

    if args.from_history:
        entries = _history_entries(args.history)
        if not entries:
            con.error(f"history {args.history} is empty")
            return 2
        try:
            ia, ib = int(args.trace), int(args.trace2)
            ea, eb = entries[ia], entries[ib]
        except (ValueError, IndexError):
            con.error(f"--from-history wants two indices into the "
                      f"{len(entries)}-entry history (e.g. "
                      f"{max(0, len(entries) - 2)} {len(entries) - 1})")
            return 2
        doc = explain_history(ea, eb)
    else:
        doc = explain_manifests(
            load_bundle(args.trace), load_bundle(args.trace2),
            ct_a=_maybe_columnar(args.trace),
            ct_b=_maybe_columnar(args.trace2),
        )
    con.result(render_explain(doc))
    con.emit("explain", doc)
    return 0
