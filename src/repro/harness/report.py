"""One-shot evaluation report generator.

``python -m repro report`` (or :func:`generate_report`) runs the whole
evaluation -- Table 1, the four Table 2 panels in both configurations,
Figures 4 and 5 -- and emits a single self-contained Markdown document
with every artefact and the headline claim checks, suitable for
committing next to EXPERIMENTS.md after a calibration change.
"""

from __future__ import annotations

from typing import List, Optional

from ..apps import PAPER_APPS
from ..config import ClusterConfig
from .figures import render_fig4, render_fig5
from .runner import logging_comparison, recovery_comparison
from .tables import render_table1, render_table2_panel

__all__ = ["generate_report"]


def generate_report(
    config: Optional[ClusterConfig] = None,
    scale: str = "test",
    apps: Optional[List[str]] = None,
    failed_node: int = 3,
    include_recovery: bool = True,
) -> str:
    """Run the evaluation and return the full Markdown report."""
    config = config or ClusterConfig.ultra5()
    apps = list(apps or PAPER_APPS)
    lines: List[str] = [
        "# Evaluation report",
        "",
        f"Cluster: {config.num_nodes} nodes, {config.page_size} B pages, "
        f"scale `{scale}`.",
        "",
        "## Table 1 — application characteristics",
        "",
        "```",
        render_table1(apps),
        "```",
        "",
        "## Table 2 — overhead details",
        "",
    ]

    sound, paper = [], []
    for name in apps:
        sound.append(logging_comparison(name, config, scale))
        paper.append(logging_comparison(name, config, scale, paper_mode=True))

    for s_cmp, p_cmp in zip(sound, paper):
        lines += [
            "```",
            render_table2_panel(s_cmp),
            "",
            "[paper-faithful configuration]",
            render_table2_panel(p_cmp),
            "```",
            "",
        ]

    lines += [
        "## Figure 4 — failure-free execution time",
        "",
        "```",
        render_fig4(sound),
        "```",
        "",
    ]

    checks = []
    for cmp in sound:
        checks.append(
            f"- {cmp.app_name}: CCL {cmp.normalized_time('ccl'):.3f} < "
            f"ML {cmp.normalized_time('ml'):.3f} -- "
            + ("OK" if cmp.normalized_time("ccl") < cmp.normalized_time("ml")
               else "VIOLATED")
        )
    for cmp in paper:
        checks.append(
            f"- {cmp.app_name} (paper-mode): CCL log = "
            f"{100 * cmp.ccl_log_fraction:.1f}% of ML -- "
            + ("OK" if cmp.ccl_log_fraction < 0.25 else "ABOVE BAND")
        )

    if include_recovery:
        recoveries = [
            recovery_comparison(name, config, scale, failed_node=failed_node)
            for name in apps
        ]
        lines += [
            "## Figure 5 — crash recovery time",
            "",
            "```",
            render_fig5(recoveries),
            "```",
            "",
        ]
        for rec in recoveries:
            checks.append(
                f"- {rec.app_name}: recovery bit-exact "
                f"(ML {100 * rec.reduction('ml'):.0f}%, "
                f"CCL {100 * rec.reduction('ccl'):.0f}% faster than "
                "re-execution) -- "
                + ("OK" if rec.ml.ok and rec.ccl.ok
                   and rec.normalized("ml") < 1 and rec.normalized("ccl") < 1
                   else "VIOLATED")
            )

    lines += ["## Claim checks", ""]
    lines += checks
    lines.append("")
    return "\n".join(lines)
