"""Experiment runners for the paper's evaluation (Section 4).

Three entry points mirror the paper's three measurement campaigns:

* :func:`run_application` -- one app under one logging protocol;
* :func:`logging_comparison` -- Table 2 / Figure 4: the same app under
  None, ML, and CCL, with log-size and flush statistics;
* :func:`recovery_comparison` -- Figure 5: re-execution (the
  failure-free run's duration) vs ML-recovery vs CCL recovery, with the
  crash injected at the failed node's final interval by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps import make_app
from ..config import ClusterConfig
from ..core import RecoveryResult, make_hooks_factory, run_recovery_experiment
from ..dsm import DsmSystem, RunResult
from ..errors import HarnessError
from .scales import app_kwargs

__all__ = [
    "run_application",
    "ProtocolRow",
    "LoggingComparison",
    "logging_comparison",
    "logging_comparison_task",
    "RecoveryComparison",
    "recovery_comparison",
    "recovery_comparison_task",
]


def _hooks_factory(protocol: str, paper_mode: bool,
                   recovery_budget: Optional[float] = None):
    if paper_mode and protocol == "ccl":
        from ..core import CoherenceCentricLogging

        return lambda _i: CoherenceCentricLogging(log_home_diffs=False)
    return make_hooks_factory(protocol, recovery_budget=recovery_budget)


def run_application(
    app_name: str,
    protocol: str = "none",
    config: Optional[ClusterConfig] = None,
    scale: str = "bench",
    verify: bool = True,
    paper_mode: bool = False,
    recovery_budget: Optional[float] = None,
    replication: int = 1,
    **app_overrides,
) -> Tuple[RunResult, DsmSystem]:
    """Run one application once; optionally verify its numerics.

    ``paper_mode=True`` selects the configuration the paper's numbers
    imply: writer-aligned (first-touch-style) home assignment and CCL
    *without* the home-write-diff extension.  It reproduces the paper's
    log-size ratios; crash recovery in this mode would require the
    paper's home-rollback worst case, so the recovery experiments use
    the sound default instead (see EXPERIMENTS.md).
    """
    config = config or ClusterConfig.ultra5()
    kwargs = app_kwargs(app_name, scale)
    kwargs.update(app_overrides)
    if paper_mode:
        kwargs.setdefault("home_policy", "aligned")
    app = make_app(app_name, **kwargs)
    system = DsmSystem(
        app, config,
        _hooks_factory(protocol, paper_mode, recovery_budget=recovery_budget),
        protocol_name=protocol,
        replication=replication,
    )
    result = system.run()
    if verify and not app.verify(system):
        raise HarnessError(
            f"{app_name} failed numerical verification under {protocol!r}"
        )
    return result, system


@dataclass
class ProtocolRow:
    """One row of a Table 2 panel."""

    protocol: str
    exec_time_s: float
    mean_log_kb: float
    total_log_mb: float
    num_flushes: int

    @classmethod
    def from_result(cls, result: RunResult) -> "ProtocolRow":
        return cls(
            protocol=result.protocol,
            exec_time_s=result.total_time,
            mean_log_kb=result.mean_flush_bytes / 1024.0,
            total_log_mb=result.total_log_bytes / (1024.0 * 1024.0),
            num_flushes=result.num_flushes,
        )


@dataclass
class LoggingComparison:
    """Table 2 panel for one application (plus Figure 4's bar group)."""

    app_name: str
    rows: List[ProtocolRow]
    results: Dict[str, RunResult] = field(repr=False, default_factory=dict)

    def row(self, protocol: str) -> ProtocolRow:
        for r in self.rows:
            if r.protocol == protocol:
                return r
        raise HarnessError(f"no row for protocol {protocol!r}")

    def normalized_time(self, protocol: str) -> float:
        """Execution time normalised to the no-logging run (Figure 4)."""
        return self.row(protocol).exec_time_s / self.row("none").exec_time_s

    @property
    def ccl_log_fraction(self) -> float:
        """CCL total log size as a fraction of ML's (Section 4.2 prose)."""
        ml = self.row("ml").total_log_mb
        return self.row("ccl").total_log_mb / ml if ml else 0.0


def logging_comparison(
    app_name: str,
    config: Optional[ClusterConfig] = None,
    scale: str = "bench",
    protocols: Tuple[str, ...] = ("none", "ml", "ccl"),
    verify: bool = True,
    paper_mode: bool = False,
    **app_overrides,
) -> LoggingComparison:
    """Run one app under each protocol; assemble its Table 2 panel."""
    rows: List[ProtocolRow] = []
    results: Dict[str, RunResult] = {}
    for protocol in protocols:
        result, _system = run_application(
            app_name, protocol, config, scale, verify,
            paper_mode=paper_mode, **app_overrides,
        )
        rows.append(ProtocolRow.from_result(result))
        results[protocol] = result
    return LoggingComparison(app_name, rows, results)


def logging_comparison_task(spec: Dict) -> LoggingComparison:
    """Picklable :func:`logging_comparison` wrapper for process fan-out.

    ``spec`` carries the keyword arguments; the returned comparison is
    stripped of live node objects (they hold generators and cannot
    cross a process boundary; nothing downstream of the CLI renders
    from them).  Serial runs use the same wrapper so serial and
    parallel outputs come from identical code.
    """
    cmp = logging_comparison(**spec)
    for result in cmp.results.values():
        result.nodes = []
    return cmp


@dataclass
class RecoveryComparison:
    """Figure 5 bar group for one application."""

    app_name: str
    reexecution_s: float
    ml: RecoveryResult
    ccl: RecoveryResult

    def normalized(self, which: str) -> float:
        """Recovery time normalised to re-execution (Figure 5's y-axis)."""
        if which == "reexec":
            return 1.0
        res = self.ml if which == "ml" else self.ccl
        return res.recovery_time / self.reexecution_s

    def reduction(self, which: str) -> float:
        """Recovery-time reduction vs re-execution (Section 4.3 prose)."""
        return 1.0 - self.normalized(which)


def recovery_comparison(
    app_name: str,
    config: Optional[ClusterConfig] = None,
    scale: str = "bench",
    failed_node: int = 3,
    at_seal: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    **app_overrides,
) -> RecoveryComparison:
    """Run the Figure 5 experiment for one application.

    Re-execution is the paper's baseline: restarting from the global
    initial state costs one failure-free (no-logging) run.  Both
    recovery experiments verify bit-exact state reconstruction; a
    mismatch raises.
    """
    config = config or ClusterConfig.ultra5()
    kwargs = app_kwargs(app_name, scale)
    kwargs.update(app_overrides)
    reexec, _sys = run_application(
        app_name, "none", config, scale, verify=False, **app_overrides
    )
    out: Dict[str, RecoveryResult] = {}
    for protocol in ("ml", "ccl"):
        res = run_recovery_experiment(
            make_app(app_name, **kwargs),
            config,
            protocol,
            failed_node=failed_node,
            at_seal=at_seal,
            checkpoint_every=checkpoint_every,
        )
        if not res.ok:
            raise HarnessError(
                f"{app_name}/{protocol} recovery diverged: {res.mismatches[:3]}"
            )
        out[protocol] = res
    return RecoveryComparison(
        app_name, reexec.total_time, out["ml"], out["ccl"]
    )


def recovery_comparison_task(spec: Dict) -> RecoveryComparison:
    """Picklable :func:`recovery_comparison` wrapper for process fan-out.

    Strips the phase-A run results (live nodes again); Figure 5 renders
    purely from the recovery/re-execution times and replay statistics.
    """
    cmp = recovery_comparison(**spec)
    cmp.ml.phase_a = None
    cmp.ccl.phase_a = None
    return cmp
