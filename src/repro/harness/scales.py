"""Benchmark dataset scales.

The paper's Table 1 datasets (100 iterations of 3D-FFT, 200 MG cycles,
5000 Shallow steps, 120 Water steps on 512 molecules) take minutes of
simulation in pure Python, so the benchmark harness runs a *bench
scale*: large enough that per-interval protocol traffic is in the
paper's regime (tens of pages per interval, intervals much longer than
per-event overheads), small enough that the whole Table 2 / Figure 4/5
sweep finishes in a couple of minutes under pytest-benchmark.  The
``paper`` scale is available for longer runs; ``test`` matches the unit
tests.  EXPERIMENTS.md records which scale produced each reported
number.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["SCALES", "app_kwargs"]

#: scale -> app -> constructor kwargs
SCALES: Dict[str, Dict[str, Dict[str, Any]]] = {
    "test": {
        "fft3d": dict(n=16, iters=4),
        "mg": dict(n=16, cycles=3),
        "shallow": dict(n=32, steps=6),
        "water": dict(molecules=64, steps=3),
        "sor": dict(n=32, iters=4),
        "lu": dict(n=32, block=8),
    },
    "bench": {
        "fft3d": dict(n=32, iters=6),
        "mg": dict(n=32, cycles=3),
        "shallow": dict(n=128, steps=10),
        "water": dict(molecules=216, steps=4),
        "sor": dict(n=128, iters=10),
        "lu": dict(n=64, block=8),
    },
    "paper": {
        "fft3d": dict(paper_scale=True),
        "mg": dict(paper_scale=True),
        "shallow": dict(paper_scale=True),
        "water": dict(paper_scale=True),
        "sor": dict(paper_scale=True),
        "lu": dict(paper_scale=True),
    },
}


def app_kwargs(name: str, scale: str = "bench") -> Dict[str, Any]:
    """Constructor kwargs for an application at a given scale."""
    try:
        return dict(SCALES[scale][name])
    except KeyError:
        raise KeyError(f"no scale {scale!r} for app {name!r}") from None
