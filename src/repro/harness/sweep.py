"""Parameter sweeps for the ablation benches, serial or fanned out.

:func:`sweep` runs a measurement function over variants of the cluster
configuration (disk speed, page size, network latency, node count, home
policy...) and tabulates one metric per variant -- the machinery behind
the A1-A5 ablations in DESIGN.md.

Simulated runs are deterministic and share nothing, so variants (and,
at the CLI level, applications) fan out safely across processes:
``jobs > 1`` dispatches the measurement function through a
:class:`~concurrent.futures.ProcessPoolExecutor` while preserving the
variant order, which makes parallel output byte-identical to a serial
run.  The measurement callable must then be picklable -- a module-level
function or :func:`functools.partial`, not a closure.  The default
stays serial so timing tables quoted in EXPERIMENTS.md remain collected
under identical single-process conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

__all__ = ["SweepPoint", "sweep", "render_sweep", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class SweepPoint:
    """One sweep variant and its measured metrics."""

    label: str
    params: Dict[str, Any]
    metrics: Dict[str, float]


def parallel_map(fn: Callable[[T], R], items: Sequence[T], jobs: int = 1) -> List[R]:
    """``[fn(item) for item in items]``, optionally across processes.

    With ``jobs <= 1`` (or fewer than two items) this is a plain serial
    loop -- same process, same behaviour as before the parallel harness
    existed.  Otherwise items are dispatched to a process pool and
    results are returned **in input order**, so any output rendered
    from them is byte-identical to the serial run.  ``fn`` and the
    items must be picklable, and ``fn`` must not rely on mutated global
    state (each worker imports the module fresh under spawn-style start
    methods).
    """
    items = list(items)
    if jobs <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def _measure_variant(
    task: Tuple[Callable[[str, Dict[str, Any]], Dict[str, float]], str, Dict[str, Any]],
) -> SweepPoint:
    measure, label, params = task
    return SweepPoint(label, dict(params), measure(label, params))


def sweep(
    variants: Iterable[Tuple[str, Dict[str, Any]]],
    measure: Callable[[str, Dict[str, Any]], Dict[str, float]],
    jobs: int = 1,
) -> List[SweepPoint]:
    """Run ``measure(label, params)`` for every variant.

    ``jobs > 1`` fans the variants out over a process pool (see
    :func:`parallel_map` for the determinism and picklability rules).
    """
    return parallel_map(
        _measure_variant,
        [(measure, label, params) for label, params in variants],
        jobs=jobs,
    )


def render_sweep(title: str, points: List[SweepPoint]) -> str:
    """Aligned-text table of a sweep's metrics."""
    if not points:
        return f"{title}\n(no data)"
    metric_names = list(points[0].metrics.keys())
    label_w = max(len("variant"), *(len(p.label) for p in points))
    cols = [max(len(m), 12) for m in metric_names]
    lines = [
        title,
        "variant".ljust(label_w)
        + "".join(f"  {m:>{w}}" for m, w in zip(metric_names, cols)),
    ]
    for p in points:
        cells = "".join(
            f"  {p.metrics[m]:>{w}.4g}" for m, w in zip(metric_names, cols)
        )
        lines.append(p.label.ljust(label_w) + cells)
    return "\n".join(lines)
