"""Parameter sweeps for the ablation benches.

:func:`sweep` runs a measurement function over variants of the cluster
configuration (disk speed, page size, network latency, node count, home
policy...) and tabulates one metric per variant -- the machinery behind
the A1-A5 ablations in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Tuple

__all__ = ["SweepPoint", "sweep", "render_sweep"]


@dataclass
class SweepPoint:
    """One sweep variant and its measured metrics."""

    label: str
    params: Dict[str, Any]
    metrics: Dict[str, float]


def sweep(
    variants: Iterable[Tuple[str, Dict[str, Any]]],
    measure: Callable[[str, Dict[str, Any]], Dict[str, float]],
) -> List[SweepPoint]:
    """Run ``measure(label, params)`` for every variant."""
    points = []
    for label, params in variants:
        points.append(SweepPoint(label, dict(params), measure(label, params)))
    return points


def render_sweep(title: str, points: List[SweepPoint]) -> str:
    """Aligned-text table of a sweep's metrics."""
    if not points:
        return f"{title}\n(no data)"
    metric_names = list(points[0].metrics.keys())
    label_w = max(len("variant"), *(len(p.label) for p in points))
    cols = [max(len(m), 12) for m in metric_names]
    lines = [
        title,
        "variant".ljust(label_w)
        + "".join(f"  {m:>{w}}" for m, w in zip(metric_names, cols)),
    ]
    for p in points:
        cells = "".join(
            f"  {p.metrics[m]:>{w}.4g}" for m, w in zip(metric_names, cols)
        )
        lines.append(p.label.ljust(label_w) + cells)
    return "\n".join(lines)
