"""Text renderers for the paper's tables.

:func:`render_table1` reproduces Table 1 (application characteristics);
:func:`render_table2_panel` reproduces one panel of Table 2 (overhead
details under the three logging protocols), formatted like the paper's::

    Logging    Execution    Mean Log    Total Log    # of
    Protocol   Time (sec.)  Size (KB)   Size (MB)    Flushes
    None       ...          --          --           --
    ML         ...
    CCL        ...
"""

from __future__ import annotations

from typing import Iterable, List

from ..apps import make_app
from .runner import LoggingComparison

__all__ = ["render_table1", "render_table2_panel", "table1_rows"]


def table1_rows(app_names: Iterable[str], paper_scale: bool = True) -> List[dict]:
    """Table 1 data: one dict per application.

    Defaults to the paper-scale datasets, since Table 1 documents the
    paper's configuration (the harness runs scaled-down datasets; see
    :mod:`repro.harness.scales`).
    """
    rows = []
    for name in app_names:
        app = make_app(name, paper_scale=paper_scale)
        rows.append(app.characteristics())
    return rows


def render_table1(app_names: Iterable[str]) -> str:
    """Format Table 1 as aligned text."""
    rows = table1_rows(app_names)
    headers = ("Program", "Data Set Size", "Synchronization")
    data = [(r["program"], r["data_set"], r["synchronization"]) for r in rows]
    widths = [
        max(len(h), *(len(d[i]) for d in data)) for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for d in data:
        lines.append("  ".join(c.ljust(w) for c, w in zip(d, widths)))
    return "\n".join(lines)


def render_table2_panel(cmp: LoggingComparison) -> str:
    """Format one Table 2 panel (one application) as aligned text."""
    header = (
        f"Table 2 -- Overhead Details under Different Logging Protocols"
        f" ({cmp.app_name})\n"
        f"{'Logging':<10}{'Execution':>12}{'Mean Log':>12}"
        f"{'Total Log':>12}{'# of':>10}\n"
        f"{'Protocol':<10}{'Time (sec.)':>12}{'Size (KB)':>12}"
        f"{'Size (MB)':>12}{'Flushes':>10}"
    )
    lines = [header]
    label = {"none": "None", "ml": "ML", "ccl": "CCL"}
    for row in cmp.rows:
        if row.protocol == "none":
            lines.append(
                f"{label[row.protocol]:<10}{row.exec_time_s:>12.3f}"
                f"{'--':>12}{'--':>12}{'--':>10}"
            )
        else:
            lines.append(
                f"{label[row.protocol]:<10}{row.exec_time_s:>12.3f}"
                f"{row.mean_log_kb:>12.2f}{row.total_log_mb:>12.3f}"
                f"{row.num_flushes:>10d}"
            )
    ml = cmp.row("ml")
    if ml.total_log_mb:
        lines.append(
            f"(CCL total log = {100.0 * cmp.ccl_log_fraction:.1f}% of ML's;"
            f" paper reports 4.5%-12.5% across the four applications)"
        )
    return "\n".join(lines)
