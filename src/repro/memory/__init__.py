"""Paged shared-memory substrate.

This package implements the memory machinery every software DSM needs:
a page-granular shared address space (:mod:`repro.memory.addrspace`),
per-node page tables with twin support (:mod:`repro.memory.pagetable`),
word-granularity diff creation and application (:mod:`repro.memory.diff`),
and NumPy-backed views of shared variables
(:mod:`repro.memory.sharedarray`).

Diffs here are *real*: they are computed by comparing actual page
contents, so every log-size number reported by the harness is measured
rather than modelled.
"""

from .page import PageState
from .pagetable import PageEntry, PageTable
from .bufferpool import BufferPool
from .diff import Diff, create_diff, apply_diff, merge_diffs, encode_diff, decode_diff
from .addrspace import SharedAddressSpace, SharedVar
from .sharedarray import LocalMemory, SharedArray, pages_in_byte_range

__all__ = [
    "PageState",
    "PageEntry",
    "PageTable",
    "BufferPool",
    "Diff",
    "create_diff",
    "apply_diff",
    "merge_diffs",
    "encode_diff",
    "decode_diff",
    "SharedAddressSpace",
    "SharedVar",
    "LocalMemory",
    "SharedArray",
    "pages_in_byte_range",
]
