"""The shared virtual address space.

Applications allocate named shared variables before the run starts
(mirroring ``Tmk_malloc`` at program initialisation).  Allocations are
page-aligned by default, which both matches how real DSM allocators lay
out large arrays and lets tests construct deliberate false sharing by
disabling alignment.

The space also records optional initial contents per variable.  All
nodes start with identical initial memory -- the paper's model, where
recovery begins "from the most recent checkpoint", and the experiments'
only checkpoint is the initial state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import MemoryLayoutError
from .bufferpool import BufferPool

__all__ = ["SharedVar", "SharedAddressSpace"]


@dataclass(frozen=True)
class SharedVar:
    """Descriptor of one shared allocation (not bound to any node)."""

    name: str
    offset: int
    nbytes: int
    shape: Tuple[int, ...]
    dtype: np.dtype

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.offset + self.nbytes

    def byte_range(self, start_elem: int, stop_elem: int) -> Tuple[int, int]:
        """Global byte range of flat elements ``[start_elem, stop_elem)``."""
        count = int(np.prod(self.shape)) if self.shape else 1
        if not (0 <= start_elem <= stop_elem <= count):
            raise MemoryLayoutError(
                f"element range [{start_elem}, {stop_elem}) outside {self.name}"
                f" of {count} elements"
            )
        item = self.dtype.itemsize
        return (self.offset + start_elem * item, self.offset + stop_elem * item)


class SharedAddressSpace:
    """Allocator and layout registry for the global shared segment."""

    def __init__(self, page_size: int):
        if page_size <= 0:
            raise MemoryLayoutError(f"bad page size {page_size}")
        self.page_size = page_size
        self._vars: Dict[str, SharedVar] = {}
        self._initial: Dict[str, np.ndarray] = {}
        self._end = 0
        self._sealed = False
        self._pool: Optional[BufferPool] = None

    @property
    def buffer_pool(self) -> BufferPool:
        """Shared page-buffer recycler for every node over this space.

        All page-sized scratch buffers (twins, replay frames) of one
        simulated cluster are interchangeable, so a single free list
        per address space captures the whole release-time churn.
        """
        if self._pool is None:
            self._pool = BufferPool(self.page_size)
        return self._pool

    # ------------------------------------------------------------------
    def allocate(
        self,
        name: str,
        shape: Tuple[int, ...] | int,
        dtype: object = np.float64,
        page_align: bool = True,
        init: Optional[np.ndarray] = None,
    ) -> SharedVar:
        """Reserve a shared variable; returns its descriptor.

        ``init`` supplies deterministic initial contents replicated to
        every node at startup (the initial checkpoint).  Allocation is
        forbidden once the space has been sealed by the DSM system.
        """
        if self._sealed:
            raise MemoryLayoutError("address space is sealed; allocate before running")
        if name in self._vars:
            raise MemoryLayoutError(f"shared variable {name!r} already allocated")
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dt.itemsize
        if nbytes <= 0:
            raise MemoryLayoutError(f"empty allocation for {name!r}")
        offset = self._end
        if page_align:
            offset = -(-offset // self.page_size) * self.page_size
        var = SharedVar(name, offset, nbytes, tuple(shape), dt)
        self._vars[name] = var
        self._end = var.end
        if init is not None:
            arr = np.asarray(init, dtype=dt)
            if arr.shape != var.shape:
                raise MemoryLayoutError(
                    f"init shape {arr.shape} != allocation shape {var.shape}"
                )
            self._initial[name] = arr.copy()
        return var

    def seal(self) -> None:
        """Freeze the layout (called when the DSM system instantiates memory)."""
        self._sealed = True

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Page-aligned size of the whole segment."""
        return self.npages * self.page_size

    @property
    def npages(self) -> int:
        """Number of pages spanned by all allocations."""
        return -(-self._end // self.page_size) if self._end else 0

    @property
    def variables(self) -> List[SharedVar]:
        """All allocations in layout order."""
        return sorted(self._vars.values(), key=lambda v: v.offset)

    def var(self, name: str) -> SharedVar:
        """Look up an allocation by name."""
        try:
            return self._vars[name]
        except KeyError:
            raise MemoryLayoutError(f"no shared variable named {name!r}") from None

    def initial_contents(self, name: str) -> Optional[np.ndarray]:
        """The ``init`` array registered for ``name``, if any."""
        return self._initial.get(name)

    def pages_of(self, var: SharedVar) -> range:
        """All page ids the variable touches."""
        first = var.offset // self.page_size
        last = (var.end - 1) // self.page_size
        return range(first, last + 1)
