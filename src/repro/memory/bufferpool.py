"""Recycled fixed-size page buffers.

Release-time twin churn used to allocate a fresh page-sized array at
every write fault and drop it at every interval end -- for long runs
that is one allocation per (page, interval) pair.  A :class:`BufferPool`
keeps a bounded free list of page-sized ``uint8`` arrays so the steady
state allocates nothing: :meth:`take_copy` reuses a retired buffer and
overwrites it, :meth:`give` retires one.

Safety contract: a buffer handed to :meth:`give` must no longer be
referenced by anyone else.  The page table honours this by recycling a
twin only when the protocol discards it (``drop_twin`` after the diff
has been created -- diffs copy the words they keep -- or
``invalidate``); buffers that escape into messages or logs are plain
copies and never pooled.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["BufferPool"]


class BufferPool:
    """Bounded free list of same-sized 1-D ``uint8`` buffers."""

    __slots__ = ("nbytes", "max_free", "_free", "allocations", "reuses")

    def __init__(self, nbytes: int, max_free: int = 512):
        if nbytes <= 0:
            raise ValueError(f"bad buffer size {nbytes}")
        self.nbytes = nbytes
        self.max_free = max_free
        self._free: List[np.ndarray] = []
        #: Fresh arrays handed out (pool misses).
        self.allocations = 0
        #: Recycled arrays handed out (pool hits).
        self.reuses = 0

    def take(self) -> np.ndarray:
        """An uninitialised buffer of :attr:`nbytes` bytes."""
        if self._free:
            self.reuses += 1
            return self._free.pop()
        self.allocations += 1
        return np.empty(self.nbytes, dtype=np.uint8)

    def take_copy(self, contents: np.ndarray) -> np.ndarray:
        """A buffer pre-filled with a copy of ``contents``.

        ``contents`` must already be exactly one buffer's worth of
        bytes: silently letting numpy broadcast a scalar or tile a
        short array would hand out a twin that only partially matches
        the page it claims to copy.
        """
        if contents.shape != (self.nbytes,):
            raise ValueError(
                f"take_copy needs shape ({self.nbytes},), got {contents.shape}"
            )
        buf = self.take()
        np.copyto(buf, contents)
        return buf

    def give(self, buf: np.ndarray) -> None:
        """Retire a buffer for reuse (silently drops foreign shapes/views).

        Read-only or externally-owned arrays are rejected loudly: a
        pooled buffer is overwritten by the next :meth:`take_copy`, so
        accepting a non-writeable array would defer the crash to an
        unrelated call site, and accepting a view (``owndata`` false)
        would let the pool scribble over memory someone else still
        references.
        """
        if not buf.flags.writeable:
            raise ValueError("cannot pool a read-only buffer")
        if not buf.flags.owndata:
            raise ValueError("cannot pool a view; the base array outlives it")
        if (
            len(self._free) < self.max_free
            and buf.dtype == np.uint8
            and buf.ndim == 1
            and buf.size == self.nbytes
        ):
            self._free.append(buf)

    @property
    def free_count(self) -> int:
        """Buffers currently parked in the free list."""
        return len(self._free)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BufferPool {self.nbytes}B free={self.free_count} "
            f"alloc={self.allocations} reuse={self.reuses}>"
        )
