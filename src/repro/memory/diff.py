"""Word-granularity diffs (summaries of modifications).

TreadMarks-style DSMs propagate writes as *diffs*: a run-length encoding
of the 4-byte words that differ between a page's *twin* (the pristine
copy made before the first write of an interval) and its current
contents.  Multiple concurrent writers of one page are merged by
applying their diffs to the home copy; for data-race-free programs the
touched word sets are disjoint, so application order between concurrent
diffs does not matter.

The encoded size (:attr:`Diff.nbytes`) follows the classic wire format:
a fixed header plus, per run, an (offset, length) pair and the run's
words.  Log-size statistics in the evaluation are sums of these real
encoded sizes.

Representation
--------------

A diff is stored *flat*: one sorted ``offsets`` integer array naming
every modified word and one parallel ``words`` ``uint32`` array with
the new contents.  The run-length view (:attr:`Diff.runs`) is derived
lazily for code that walks runs (tracing, log inspection); the hot
kernels -- :func:`create_diff`, :func:`merge_diffs`, :func:`apply_diff`
-- operate on the flat arrays with pure NumPy run algebra and never
loop per word or per run in Python.  :func:`encode_diff` /
:func:`decode_diff` translate between the flat form and the packed
run-length wire/log byte layout; the words block is shared zero-copy
in both directions.

The pre-vectorisation implementations are preserved verbatim in
:mod:`repro.memory.reference` and serve as oracles for the property
tests and as the baseline the microbenchmarks measure speedups against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import WORD_SIZE
from ..errors import DiffError

__all__ = [
    "Diff",
    "create_diff",
    "apply_diff",
    "merge_diffs",
    "encode_diff",
    "decode_diff",
]

#: Encoded bytes for the diff header (page id, word count, run count, flags).
DIFF_HEADER_BYTES = 16
#: Encoded bytes per run header (word offset, run length).
RUN_HEADER_BYTES = 8

_EMPTY_OFFSETS = np.empty(0, dtype=np.int64)
_EMPTY_WORDS = np.empty(0, dtype=np.uint32)
_EMPTY_OFFSETS.setflags(write=False)
_EMPTY_WORDS.setflags(write=False)


class Diff:
    """A summary of modifications to one page.

    ``offsets`` holds the ascending word offsets of every modified word
    and ``words`` the corresponding new ``uint32`` contents; both own
    their data (safe to keep after the source page mutates).  An empty
    pair is a legal "no changes" diff.  :attr:`runs` presents the same
    data as ``(word_offset, words)`` pairs, built on first access; the
    per-run arrays are views into :attr:`words`, so mutating them (the
    tests do) stays coherent with the flat form.
    """

    __slots__ = ("page", "offsets", "words", "_runs", "_span")

    def __init__(self, page: int, runs: Optional[List[Tuple[int, np.ndarray]]] = None):
        self.page = page
        self._runs: Optional[List[Tuple[int, np.ndarray]]] = None
        self._span: Optional[Tuple[int, int, bool]] = None
        if not runs:
            self.offsets = _EMPTY_OFFSETS
            self.words = _EMPTY_WORDS
            return
        off_parts = []
        word_parts = []
        for off, words in runs:
            w = np.ascontiguousarray(words, dtype=np.uint32)
            off_parts.append(np.arange(off, off + len(w), dtype=np.int64))
            word_parts.append(w)
        self.offsets = np.concatenate(off_parts)
        self.words = np.concatenate(word_parts)

    @classmethod
    def from_flat(cls, page: int, offsets: np.ndarray, words: np.ndarray) -> "Diff":
        """Wrap pre-built flat arrays (must be sorted, strictly increasing).

        The arrays are adopted without copying; callers hand over
        ownership.  This is the constructor the vectorised kernels use.
        """
        d = cls.__new__(cls)
        d.page = page
        d.offsets = offsets
        d.words = words
        d._runs = None
        d._span = None
        return d

    def span(self) -> Tuple[int, int, bool]:
        """``(first, last, dense)`` word-offset bounds, cached.

        ``dense`` is True when the diff is one contiguous run.  The same
        diff is applied more than once on the hot path (home copy and
        twin, plus recovery replays), so the numpy-scalar extraction is
        paid once per diff instead of once per apply.  ``(0, -1, False)``
        for an empty diff.
        """
        span = self._span
        if span is None:
            if self.offsets.size == 0:
                span = (0, -1, False)
            else:
                first = int(self.offsets[0])
                last = int(self.offsets[-1])
                span = (first, last, last - first + 1 == self.offsets.size)
            self._span = span
        return span

    @property
    def word_count(self) -> int:
        """Total modified words across all runs."""
        return int(self.offsets.size)

    @property
    def run_count(self) -> int:
        """Number of coalesced runs of consecutive modified words."""
        if self.offsets.size == 0:
            return 0
        return int(np.count_nonzero(np.diff(self.offsets) > 1)) + 1

    @property
    def nbytes(self) -> int:
        """Encoded wire/log size in bytes."""
        return (
            DIFF_HEADER_BYTES
            + RUN_HEADER_BYTES * self.run_count
            + WORD_SIZE * self.word_count
        )

    @property
    def is_empty(self) -> bool:
        """True when no words changed."""
        return self.offsets.size == 0

    @property
    def runs(self) -> List[Tuple[int, np.ndarray]]:
        """Run-length view: ``(word_offset, words)`` pairs, ascending."""
        if self._runs is None:
            if self.offsets.size == 0:
                self._runs = []
            else:
                breaks = np.flatnonzero(np.diff(self.offsets) > 1) + 1
                starts = self.offsets[np.concatenate(([0], breaks))]
                self._runs = [
                    (int(s), seg)
                    for s, seg in zip(starts, np.split(self.words, breaks))
                ]
        return self._runs

    def word_offsets(self) -> np.ndarray:
        """All modified word offsets, ascending (for overlap checks)."""
        return self.offsets

    def copy(self) -> "Diff":
        """Deep copy (the recovery path replays diffs multiple times)."""
        return Diff.from_flat(self.page, self.offsets.copy(), self.words.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Diff(page={self.page}, words={self.word_count}, "
            f"runs={self.run_count})"
        )


def _as_words(buf: np.ndarray) -> np.ndarray:
    if buf.dtype != np.uint8 or buf.ndim != 1:
        raise DiffError(f"expected 1-D uint8 page buffer, got {buf.dtype}/{buf.ndim}-D")
    if len(buf) % WORD_SIZE:
        raise DiffError(f"page length {len(buf)} not a multiple of {WORD_SIZE}")
    return buf.view(np.uint32)


def create_diff(page: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Compare ``twin`` against ``current`` and encode the changed words.

    Both arguments are 1-D ``uint8`` buffers of equal page-sized length.
    Runs of consecutive changed words are coalesced, exactly as the
    TreadMarks diff encoder does, which is what makes small scattered
    writes cheap to ship.
    """
    if twin.shape != current.shape:
        raise DiffError(f"twin/current shape mismatch: {twin.shape} vs {current.shape}")
    tw = _as_words(twin)
    cw = _as_words(current)
    changed = np.flatnonzero(tw != cw)
    if changed.size == 0:
        return Diff(page)
    # fancy indexing copies, so the diff owns its words
    return Diff.from_flat(
        page, changed.astype(np.int64, copy=False), cw[changed]
    )


def merge_diffs(first: Diff, second: Diff) -> Diff:
    """Combine two diffs of one page; ``second``'s words win on overlap.

    Needed when a page produces two diffs within one interval: an
    *early* diff created when a write-invalidation notice hits a dirty
    page mid-interval, followed by a normal end-of-interval diff after
    the page was refetched and written again.  The log keeps one merged
    diff per (page, interval) so recovery lookups stay unambiguous.

    Pure run algebra on the flat arrays: concatenate, stable-sort by
    offset, and keep the last entry of every duplicate offset (which is
    ``second``'s, because it was concatenated after ``first``).
    """
    if first.page != second.page:
        raise DiffError(
            f"cannot merge diffs of pages {first.page} and {second.page}"
        )
    if first.is_empty:
        return second.copy()
    if second.is_empty:
        return first.copy()
    offsets = np.concatenate([first.offsets, second.offsets])
    words = np.concatenate([first.words, second.words])
    order = np.argsort(offsets, kind="stable")
    offsets = offsets[order]
    words = words[order]
    keep = np.empty(offsets.size, dtype=bool)
    keep[-1] = True
    np.not_equal(offsets[1:], offsets[:-1], out=keep[:-1])
    return Diff.from_flat(first.page, offsets[keep], words[keep])


def apply_diff(diff: Diff, target: np.ndarray) -> int:
    """Write the diff's words into ``target`` (1-D uint8); returns words applied."""
    tw = _as_words(target)
    first, last, dense = diff.span()
    if last < 0:
        return 0
    if first < 0 or last >= tw.size:
        raise DiffError(
            f"diff words [{first}, {last}] outside page of {tw.size} words"
        )
    if dense:
        # one dense run (the common shape for array-section writes):
        # a straight slice copy beats fancy indexing
        tw[first : last + 1] = diff.words
        return last - first + 1
    tw[diff.offsets] = diff.words
    return int(diff.offsets.size)


# ----------------------------------------------------------------------
# packed wire/log encoding
# ----------------------------------------------------------------------

def encode_diff(diff: Diff) -> np.ndarray:
    """Pack a diff into its wire/log byte layout (a 1-D ``uint8`` array).

    Layout (little-endian, exactly :attr:`Diff.nbytes` bytes)::

        uint32 page | uint32 word_count | uint32 run_count | uint32 flags
        int32 (start, length) per run
        uint32 word per modified word

    The run table is derived with vectorised run algebra and the words
    block is the diff's ``words`` array viewed as bytes (no per-word
    Python work anywhere).
    """
    wc = diff.word_count
    if wc == 0:
        header = np.array([diff.page, 0, 0, 0], dtype=np.uint32)
        return header.view(np.uint8).copy()
    offsets = diff.offsets
    breaks = np.flatnonzero(np.diff(offsets) > 1) + 1
    bounds = np.concatenate(([0], breaks, [wc]))
    run_table = np.empty((bounds.size - 1, 2), dtype=np.int32)
    run_table[:, 0] = offsets[bounds[:-1]]
    run_table[:, 1] = np.diff(bounds)
    header = np.array([diff.page, wc, run_table.shape[0], 0], dtype=np.uint32)
    return np.concatenate(
        [
            header.view(np.uint8),
            run_table.reshape(-1).view(np.uint8),
            np.ascontiguousarray(diff.words).view(np.uint8),
        ]
    )


def decode_diff(buf: np.ndarray) -> Diff:
    """Unpack :func:`encode_diff` output back into a :class:`Diff`.

    The words array of the returned diff is a zero-copy view into
    ``buf``; the offsets are rebuilt from the run table with one
    ``repeat``/``cumsum`` pass.
    """
    if buf.dtype != np.uint8 or buf.ndim != 1 or buf.size < DIFF_HEADER_BYTES:
        raise DiffError("malformed packed diff: bad buffer")
    header = buf[:DIFF_HEADER_BYTES].view(np.uint32)
    page, wc, rc = int(header[0]), int(header[1]), int(header[2])
    expected = DIFF_HEADER_BYTES + RUN_HEADER_BYTES * rc + WORD_SIZE * wc
    if buf.size != expected:
        raise DiffError(
            f"malformed packed diff: {buf.size} bytes, header implies {expected}"
        )
    if wc == 0:
        return Diff(page)
    run_end = DIFF_HEADER_BYTES + RUN_HEADER_BYTES * rc
    run_table = buf[DIFF_HEADER_BYTES:run_end].view(np.int32).reshape(rc, 2)
    starts = run_table[:, 0].astype(np.int64)
    lengths = run_table[:, 1].astype(np.int64)
    if int(lengths.sum()) != wc:
        raise DiffError("malformed packed diff: run lengths != word count")
    # offsets = for each run, start + 0..length-1, concatenated
    base = np.repeat(starts - np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths)
    offsets = base + np.arange(wc, dtype=np.int64)
    words = buf[run_end:].view(np.uint32)
    return Diff.from_flat(page, offsets, words)
