"""Word-granularity diffs (summaries of modifications).

TreadMarks-style DSMs propagate writes as *diffs*: a run-length encoding
of the 4-byte words that differ between a page's *twin* (the pristine
copy made before the first write of an interval) and its current
contents.  Multiple concurrent writers of one page are merged by
applying their diffs to the home copy; for data-race-free programs the
touched word sets are disjoint, so application order between concurrent
diffs does not matter.

The encoded size (:attr:`Diff.nbytes`) follows the classic wire format:
a fixed header plus, per run, an (offset, length) pair and the run's
words.  Log-size statistics in the evaluation are sums of these real
encoded sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..config import WORD_SIZE
from ..errors import DiffError

__all__ = ["Diff", "create_diff", "apply_diff", "merge_diffs"]

#: Encoded bytes for the diff header (page id, word count, run count, flags).
DIFF_HEADER_BYTES = 16
#: Encoded bytes per run header (word offset, run length).
RUN_HEADER_BYTES = 8


@dataclass
class Diff:
    """A summary of modifications to one page.

    ``runs`` holds ``(word_offset, words)`` pairs where ``words`` is a
    ``uint32`` array owning its data (safe to keep after the source page
    mutates).  An empty run list is a legal "no changes" diff.
    """

    page: int
    runs: List[Tuple[int, np.ndarray]] = field(default_factory=list)

    @property
    def word_count(self) -> int:
        """Total modified words across all runs."""
        return sum(len(words) for _off, words in self.runs)

    @property
    def nbytes(self) -> int:
        """Encoded wire/log size in bytes."""
        return (
            DIFF_HEADER_BYTES
            + RUN_HEADER_BYTES * len(self.runs)
            + WORD_SIZE * self.word_count
        )

    @property
    def is_empty(self) -> bool:
        """True when no words changed."""
        return not self.runs

    def word_offsets(self) -> np.ndarray:
        """All modified word offsets, ascending (for overlap checks)."""
        if not self.runs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.arange(off, off + len(words)) for off, words in self.runs]
        )

    def copy(self) -> "Diff":
        """Deep copy (the recovery path replays diffs multiple times)."""
        return Diff(self.page, [(off, words.copy()) for off, words in self.runs])


def _as_words(buf: np.ndarray) -> np.ndarray:
    if buf.dtype != np.uint8 or buf.ndim != 1:
        raise DiffError(f"expected 1-D uint8 page buffer, got {buf.dtype}/{buf.ndim}-D")
    if len(buf) % WORD_SIZE:
        raise DiffError(f"page length {len(buf)} not a multiple of {WORD_SIZE}")
    return buf.view(np.uint32)


def create_diff(page: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Compare ``twin`` against ``current`` and encode the changed words.

    Both arguments are 1-D ``uint8`` buffers of equal page-sized length.
    Runs of consecutive changed words are coalesced, exactly as the
    TreadMarks diff encoder does, which is what makes small scattered
    writes cheap to ship.
    """
    if twin.shape != current.shape:
        raise DiffError(f"twin/current shape mismatch: {twin.shape} vs {current.shape}")
    tw = _as_words(twin)
    cw = _as_words(current)
    changed = np.flatnonzero(tw != cw)
    if changed.size == 0:
        return Diff(page)
    # split the sorted changed-word indices into consecutive runs
    breaks = np.flatnonzero(np.diff(changed) > 1) + 1
    runs: List[Tuple[int, np.ndarray]] = []
    for segment in np.split(changed, breaks):
        off = int(segment[0])
        runs.append((off, cw[off : off + len(segment)].copy()))
    return Diff(page, runs)


def merge_diffs(first: Diff, second: Diff) -> Diff:
    """Combine two diffs of one page; ``second``'s words win on overlap.

    Needed when a page produces two diffs within one interval: an
    *early* diff created when a write-invalidation notice hits a dirty
    page mid-interval, followed by a normal end-of-interval diff after
    the page was refetched and written again.  The log keeps one merged
    diff per (page, interval) so recovery lookups stay unambiguous.
    """
    if first.page != second.page:
        raise DiffError(
            f"cannot merge diffs of pages {first.page} and {second.page}"
        )
    words: dict[int, int] = {}
    for d in (first, second):
        for off, run in d.runs:
            for k, w in enumerate(run):
                words[off + k] = int(w)
    if not words:
        return Diff(first.page)
    offsets = sorted(words)
    runs: List[Tuple[int, np.ndarray]] = []
    start = prev = offsets[0]
    vals = [words[start]]
    for o in offsets[1:]:
        if o == prev + 1:
            vals.append(words[o])
        else:
            runs.append((start, np.array(vals, dtype=np.uint32)))
            start = o
            vals = [words[o]]
        prev = o
    runs.append((start, np.array(vals, dtype=np.uint32)))
    return Diff(first.page, runs)


def apply_diff(diff: Diff, target: np.ndarray) -> int:
    """Write the diff's words into ``target`` (1-D uint8); returns words applied."""
    tw = _as_words(target)
    applied = 0
    for off, words in diff.runs:
        if off < 0 or off + len(words) > len(tw):
            raise DiffError(
                f"diff run [{off}, {off + len(words)}) outside page of {len(tw)} words"
            )
        tw[off : off + len(words)] = words
        applied += len(words)
    return applied
