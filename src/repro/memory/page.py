"""Page protection states.

A node's copy of a shared page is in one of three states, mirroring the
virtual-memory protections a trap-based DSM would install:

* :attr:`PageState.INVALID` -- no access; any touch faults and fetches
  the page from its home node.
* :attr:`PageState.CLEAN` -- read-only; a write faults, creates a twin,
  and upgrades to DIRTY.
* :attr:`PageState.DIRTY` -- read-write; the page has a twin against
  which a diff will be created at the next release/barrier.

Home copies are special: they are permanently valid at their home node
(one of HLRC's selling points) and never carry a twin -- home writes
are propagated through write notices, not diffs.
"""

from __future__ import annotations

import enum

__all__ = ["PageState"]


class PageState(enum.Enum):
    """Access state of one node's copy of a shared page."""

    INVALID = "invalid"
    CLEAN = "clean"
    DIRTY = "dirty"

    @property
    def readable(self) -> bool:
        """Whether a read proceeds without a fault."""
        return self is not PageState.INVALID

    @property
    def writable(self) -> bool:
        """Whether a write proceeds without a fault."""
        return self is PageState.DIRTY
