"""Per-node page tables.

Each node keeps a :class:`PageTable` describing its copy of every shared
page: protection state, home node, the twin (when DIRTY), and an opaque
``version`` slot that the coherence layer uses for vector-timestamp
bookkeeping.  The table also tallies transition counters that feed the
harness's fault statistics.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

import numpy as np

from ..errors import PageError
from .bufferpool import BufferPool
from .page import PageState

__all__ = ["PageEntry", "PageTable", "TransitionFn"]

#: Callback fired on every page-state transition:
#: ``fn(page, old_state, new_state, reason)``.
TransitionFn = Callable[[int, PageState, PageState, str], None]


class PageEntry:
    """State of one node's copy of one shared page."""

    __slots__ = ("page", "home", "state", "twin", "version")

    def __init__(self, page: int, home: int):
        self.page = page
        self.home = home
        #: Protection state of the local copy.
        self.state = PageState.INVALID
        #: Pristine copy made before the first write of an interval.
        self.twin: Optional[np.ndarray] = None
        #: Opaque coherence version (a vector timestamp in the DSM layer).
        self.version: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        t = "twin" if self.twin is not None else "no-twin"
        return f"<PageEntry p{self.page} home={self.home} {self.state.value} {t}>"


class PageTable:
    """All page entries of one node, plus transition counters."""

    def __init__(
        self,
        node: int,
        npages: int,
        homes: List[int],
        pool: Optional[BufferPool] = None,
    ):
        if len(homes) != npages:
            raise PageError(f"{npages} pages but {len(homes)} home assignments")
        self.node = node
        self.npages = npages
        #: Optional recycler for twin buffers; None allocates per twin.
        self.pool = pool
        self._entries = [PageEntry(p, homes[p]) for p in range(npages)]
        #: Pages written during the current interval (home and non-home).
        self.dirty_pages: set[int] = set()
        self.invalidations = 0
        self.twin_creations = 0
        #: Optional observer of state-machine transitions (the coherence
        #: sanitizer's tracer hook); None keeps transitions free.
        self.on_transition: Optional[TransitionFn] = None

    # ------------------------------------------------------------------
    def entry(self, page: int) -> PageEntry:
        """The entry for ``page`` (raises on out-of-range)."""
        if not (0 <= page < self.npages):
            raise PageError(f"page {page} out of range [0, {self.npages})")
        return self._entries[page]

    def is_home(self, page: int) -> bool:
        """Whether this node is the home of ``page``."""
        return self.entry(page).home == self.node

    def home_pages(self) -> Iterator[int]:
        """All pages homed at this node."""
        return (p for p in range(self.npages) if self._entries[p].home == self.node)

    # ------------------------------------------------------------------
    def set_state(self, page: int, state: PageState, reason: str = "") -> PageEntry:
        """Move ``page`` to ``state``, notifying :attr:`on_transition`.

        All protocol-level state changes funnel through here so the
        state machine is observable; a same-state call is a no-op (no
        event fires).
        """
        entry = self.entry(page)
        old = entry.state
        if old is not state:
            entry.state = state
            if self.on_transition is not None:
                self.on_transition(page, old, state, reason)
        return entry

    def invalidate(self, page: int) -> bool:
        """Drop the local copy of a non-home page; returns True if it was valid.

        Home copies are never invalidated (they are the repository of
        updates); attempting to is a protocol bug.
        """
        entry = self.entry(page)
        if entry.home == self.node:
            raise PageError(f"node {self.node} cannot invalidate its home page {page}")
        was_valid = entry.state is not PageState.INVALID
        self.set_state(page, PageState.INVALID, "invalidate")
        self._retire_twin(entry)
        if was_valid:
            self.invalidations += 1
        return was_valid

    def make_twin(self, page: int, contents: np.ndarray) -> np.ndarray:
        """Record a pristine copy of ``page`` before its first write.

        ``contents`` is the node's current copy; the twin owns its data.
        """
        entry = self.entry(page)
        if entry.twin is not None:
            raise PageError(f"page {page} already has a twin")
        if self.pool is not None:
            entry.twin = self.pool.take_copy(contents)
        else:
            entry.twin = contents.copy()
        self.twin_creations += 1
        return entry.twin

    def drop_twin(self, page: int) -> None:
        """Discard the twin after its diff has been created.

        The buffer goes back to the pool: by this point the diff owns
        copies of every word it kept, and nothing else references the
        twin (served page replies copy out of it).
        """
        self._retire_twin(self.entry(page))

    def _retire_twin(self, entry: PageEntry) -> None:
        if entry.twin is not None and self.pool is not None:
            self.pool.give(entry.twin)
        entry.twin = None

    def mark_dirty(self, page: int) -> None:
        """Add ``page`` to the current interval's dirty set."""
        self.dirty_pages.add(page)

    def take_dirty(self) -> List[int]:
        """Return and clear the dirty set (called at release/barrier)."""
        pages = sorted(self.dirty_pages)
        self.dirty_pages.clear()
        return pages
