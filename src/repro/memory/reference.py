"""Pre-vectorisation diff kernels, kept as correctness oracles.

These are the original Python-loop implementations of the diff hot
path, preserved verbatim when :mod:`repro.memory.diff` was rewritten as
flat NumPy run algebra.  They exist for two reasons:

* the property tests assert the vectorised kernels are byte-identical
  to these references on randomised twin/current pairs;
* the microbenchmarks (``benchmarks/bench_micro.py`` / ``repro perf``)
  measure the vectorised kernels' speedup against them, so the
  before/after trajectory in ``BENCH_perf.json`` is a real measurement
  rather than a remembered number.

They are **not** used on any production path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import DiffError
from .diff import Diff, _as_words

__all__ = [
    "reference_create_diff",
    "reference_merge_diffs",
    "reference_apply_diff",
    "reference_encode_diff",
]


def reference_create_diff(page: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Original ``create_diff``: per-run Python loop over split segments."""
    if twin.shape != current.shape:
        raise DiffError(f"twin/current shape mismatch: {twin.shape} vs {current.shape}")
    tw = _as_words(twin)
    cw = _as_words(current)
    changed = np.flatnonzero(tw != cw)
    if changed.size == 0:
        return Diff(page)
    # split the sorted changed-word indices into consecutive runs
    breaks = np.flatnonzero(np.diff(changed) > 1) + 1
    runs: List[Tuple[int, np.ndarray]] = []
    for segment in np.split(changed, breaks):
        off = int(segment[0])
        runs.append((off, cw[off : off + len(segment)].copy()))
    return Diff(page, runs)


def reference_merge_diffs(first: Diff, second: Diff) -> Diff:
    """Original ``merge_diffs``: per-word dict rebuild, O(words) Python ops."""
    if first.page != second.page:
        raise DiffError(
            f"cannot merge diffs of pages {first.page} and {second.page}"
        )
    words: dict[int, int] = {}
    for d in (first, second):
        for off, run in d.runs:
            for k, w in enumerate(run):
                words[off + k] = int(w)
    if not words:
        return Diff(first.page)
    offsets = sorted(words)
    runs: List[Tuple[int, np.ndarray]] = []
    start = prev = offsets[0]
    vals = [words[start]]
    for o in offsets[1:]:
        if o == prev + 1:
            vals.append(words[o])
        else:
            runs.append((start, np.array(vals, dtype=np.uint32)))
            start = o
            vals = [words[o]]
        prev = o
    runs.append((start, np.array(vals, dtype=np.uint32)))
    return Diff(first.page, runs)


def reference_apply_diff(diff: Diff, target: np.ndarray) -> int:
    """Original ``apply_diff``: per-run Python loop of slice assignments."""
    tw = _as_words(target)
    applied = 0
    for off, words in diff.runs:
        if off < 0 or off + len(words) > len(tw):
            raise DiffError(
                f"diff run [{off}, {off + len(words)}) outside page of {len(tw)} words"
            )
        tw[off : off + len(words)] = words
        applied += len(words)
    return applied


def reference_encode_diff(diff: Diff) -> np.ndarray:
    """Per-run Python encoder producing the packed wire/log layout.

    Semantically identical to :func:`repro.memory.diff.encode_diff`;
    builds the buffer with a Python loop and ``bytes`` concatenation the
    way a straightforward implementation would.
    """
    parts = [
        np.array(
            [diff.page, diff.word_count, len(diff.runs), 0], dtype=np.uint32
        ).tobytes()
    ]
    for off, words in diff.runs:
        parts.append(np.array([off, len(words)], dtype=np.int32).tobytes())
    for _off, words in diff.runs:
        parts.append(np.ascontiguousarray(words).tobytes())
    return np.frombuffer(b"".join(parts), dtype=np.uint8).copy()
