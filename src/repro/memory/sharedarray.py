"""Node-local memory images and NumPy views of shared variables.

Every node holds a full image of the shared segment
(:class:`LocalMemory`), exactly as a page-based DSM maps the same
virtual range on every host.  :class:`SharedArray` binds a
:class:`~repro.memory.addrspace.SharedVar` to one node's image and
exposes it as a NumPy array, plus the element-range -> page-set mapping
the access-annotation API needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import MemoryLayoutError
from .addrspace import SharedAddressSpace, SharedVar

__all__ = ["LocalMemory", "SharedArray", "pages_in_byte_range"]


def pages_in_byte_range(byte_lo: int, byte_hi: int, page_size: int) -> range:
    """Page ids covering global bytes ``[byte_lo, byte_hi)``."""
    if byte_hi <= byte_lo:
        return range(0)
    return range(byte_lo // page_size, (byte_hi - 1) // page_size + 1)


class LocalMemory:
    """One node's image of the shared segment.

    The image starts from the replicated initial contents registered in
    the address space, which double as the initial checkpoint that
    recovery rolls back to.
    """

    def __init__(self, space: SharedAddressSpace):
        space.seal()
        self.space = space
        self.page_size = space.page_size
        self.buffer = np.zeros(space.total_bytes, dtype=np.uint8)
        for var in space.variables:
            init = space.initial_contents(var.name)
            if init is not None:
                self._var_bytes(var)[:] = init.reshape(-1).view(np.uint8)

    # ------------------------------------------------------------------
    def page_bytes(self, page: int) -> np.ndarray:
        """Mutable uint8 view of one page."""
        if not (0 <= page < self.space.npages):
            raise MemoryLayoutError(f"page {page} out of range")
        lo = page * self.page_size
        return self.buffer[lo : lo + self.page_size]

    def view(self, var: SharedVar) -> np.ndarray:
        """Typed, shaped, mutable view of a shared variable."""
        return self._var_bytes(var).view(var.dtype).reshape(var.shape)

    def snapshot(self) -> np.ndarray:
        """A copy of the whole image (used by checkpoints and tests)."""
        return self.buffer.copy()

    def restore(self, image: np.ndarray) -> None:
        """Overwrite the image (checkpoint restoration)."""
        if image.shape != self.buffer.shape:
            raise MemoryLayoutError("checkpoint image has wrong size")
        self.buffer[:] = image

    # ------------------------------------------------------------------
    def _var_bytes(self, var: SharedVar) -> np.ndarray:
        return self.buffer[var.offset : var.end]


class SharedArray:
    """A shared variable bound to one node's local memory."""

    def __init__(self, memory: LocalMemory, var: SharedVar):
        self.memory = memory
        self.var = var
        #: The live NumPy view; mutations hit the node's page frames.
        self.array = memory.view(var)

    @property
    def name(self) -> str:
        """Name of the underlying allocation."""
        return self.var.name

    @property
    def flat_size(self) -> int:
        """Total element count."""
        return int(np.prod(self.var.shape))

    def pages_for_elements(self, start: int, stop: int) -> range:
        """Page ids covering flat elements ``[start, stop)``."""
        lo, hi = self.var.byte_range(start, stop)
        return pages_in_byte_range(lo, hi, self.memory.page_size)

    def element_range_bytes(self, start: int, stop: int) -> Tuple[int, int]:
        """Global byte range of flat elements ``[start, stop)``."""
        return self.var.byte_range(start, stop)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedArray {self.var.name} {self.var.shape} {self.var.dtype}>"
