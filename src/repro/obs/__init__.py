"""Observability: causal spans, exporters, metrics, run artifacts.

The telemetry layer on top of :mod:`repro.sim.trace`'s span/edge
substrate:

* :mod:`repro.obs.critical` -- causal critical-path extraction and the
  flush/communication overlap metric (the paper's central claim,
  measured directly);
* :mod:`repro.obs.export` -- Chrome trace-event / Perfetto JSON
  timelines from a recorded trace;
* :mod:`repro.obs.metrics` -- a typed metrics registry
  (counters/gauges/histograms) with Prometheus text rendering;
* :mod:`repro.obs.latency` -- the streaming log-bucketed latency
  recorder (HDR-style, bounded memory, mergeable across nodes) the
  protocol hot paths feed;
* :mod:`repro.obs.analytics` -- columnar (numpy struct-of-arrays)
  trace store with cached per-run indexes and the built-in
  ``repro query`` reports (imported directly, not re-exported here,
  to keep package import cheap);
* :mod:`repro.obs.explain` -- perf-regression attribution between two
  runs or two perf-trajectory entries (``repro explain``);
* :mod:`repro.obs.artifacts` -- per-run ``runs/<id>/manifest.json``
  bundles, bundle loading, and bundle diffing for ``repro compare``;
* :mod:`repro.obs.console` -- the harness's console output layer
  (``--quiet`` / ``--json``).

Everything here is read-only over a finished run: recording stays in
the simulator layer, gated on ``Tracer.enabled``, so that tracing off
remains byte-identical to the pre-telemetry behaviour.
"""

from .artifacts import (
    compare_bundles,
    git_rev,
    load_bundle,
    render_compare,
    write_bundle,
)
from .console import Console, get_console
from .critical import critical_path, flush_overlap, render_overlap, summarize_path
from .export import chrome_trace, validate_chrome_trace, write_chrome_trace
from .latency import LatencyRecorder
from .metrics import MetricsRegistry

__all__ = [
    "Console",
    "get_console",
    "LatencyRecorder",
    "MetricsRegistry",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "critical_path",
    "summarize_path",
    "flush_overlap",
    "render_overlap",
    "git_rev",
    "write_bundle",
    "load_bundle",
    "compare_bundles",
    "render_compare",
]
