"""Columnar trace analytics: struct-of-arrays tables over run traces.

A recorded trace (``runs/<id>/trace.jsonl``) is a few hundred thousand
JSON records; answering "which lock is contended" by re-parsing it every
time is seconds of work.  :class:`ColumnarTrace` ingests a trace once
into numpy struct-of-arrays tables -- all strings interned to int ids,
event details flattened to fixed int columns -- so every aggregation is
a vectorised groupby running in milliseconds, and caches the columns as
``trace.columns.npz`` beside the JSONL (keyed by the source's size and
mtime, so a re-recorded trace re-ingests automatically).

Tables (missing int values are -1):

* ``events`` -- ``t, node, ev`` plus flattened detail columns
  ``lock, page, to, home, aux`` covering the protocol schema of
  :class:`repro.sim.trace.Ev`;
* ``spans`` -- ``parent, node, strand, name, cat, t0, t1, lock, page``
  (row index == span id, preserving the parent tree);
* ``edges`` -- ``src, dst, kind, size, ts, tr`` message hops;
* ``pagerows`` -- the multi-page ``diff_send``/``diff_apply`` events
  exploded to one ``t, node, ev, page, peer`` row per page, so per-page
  diff traffic aggregates without touching Python lists.

On top sit the built-in reports -- :func:`report_locks`,
:func:`report_pages`, :func:`report_phases`, :func:`report_flows` --
each returning a JSON-safe dict with a matching ``render_*`` for the
``repro query`` CLI.  This module deliberately does not import the
simulator: tracers are duck-typed (``.events/.spans/.edges``), keeping
``repro.obs`` import-light.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "StringTable",
    "ColumnarTrace",
    "load_or_ingest",
    "report_locks",
    "report_pages",
    "report_phases",
    "report_flows",
    "REPORTS",
    "run_report",
    "render_report",
]

#: Columnar cache layout version (bump on any column change).
COLUMNS_SCHEMA = 1

#: Cache file names, written beside the source ``trace.jsonl``.
CACHE_NPZ = "trace.columns.npz"
CACHE_META = "trace.columns.meta.json"

_EVENT_TABLE = ("t", "node", "ev", "lock", "page", "to", "home", "aux")
_SPAN_TABLE = ("parent", "node", "strand", "name", "cat", "t0", "t1",
               "lock", "page")
_EDGE_TABLE = ("src", "dst", "kind", "size", "ts", "tr")
_PAGEROW_TABLE = ("t", "node", "ev", "page", "peer")

_FLOAT_COLS = frozenset({"t", "t0", "t1", "ts", "tr"})
_WIDE_COLS = frozenset({"size"})


class StringTable:
    """Bidirectional string <-> int id interning (insertion-ordered)."""

    def __init__(self, strings: Optional[Sequence[str]] = None):
        self.strings: List[str] = list(strings or [])
        self._ids: Dict[str, int] = {s: i for i, s in enumerate(self.strings)}

    def intern(self, s: str) -> int:
        """The id of ``s``, assigning the next one on first sight."""
        i = self._ids.get(s)
        if i is None:
            i = self._ids[s] = len(self.strings)
            self.strings.append(s)
        return i

    def get(self, s: str) -> int:
        """The id of ``s``, or -1 if never interned (no mutation)."""
        return self._ids.get(s, -1)

    def lookup(self, i: int) -> str:
        """The string for id ``i`` ("?" for -1/out of range)."""
        return self.strings[i] if 0 <= i < len(self.strings) else "?"

    def __len__(self) -> int:
        return len(self.strings)


def _as_int(value: Any) -> int:
    """Flatten one detail value to an int column cell (-1 if absent)."""
    return value if isinstance(value, int) and not isinstance(value, bool) else -1


class _Builder:
    """Column-list accumulator for one table."""

    def __init__(self, columns: Tuple[str, ...]):
        self.columns = columns
        self.rows: Dict[str, List[Any]] = {c: [] for c in columns}

    def finish(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for c in self.columns:
            if c in _FLOAT_COLS:
                out[c] = np.asarray(self.rows[c], dtype=np.float64)
            elif c in _WIDE_COLS:
                out[c] = np.asarray(self.rows[c], dtype=np.int64)
            else:
                out[c] = np.asarray(self.rows[c], dtype=np.int32)
        return out


class ColumnarTrace:
    """Struct-of-arrays view of one run's trace.

    ``source`` records how the instance was materialised: ``"tracer"``
    (from an in-memory tracer), ``"jsonl"`` (parsed from disk), or
    ``"cache"`` (loaded from the columnar ``.npz`` without touching the
    JSONL).
    """

    def __init__(
        self,
        strings: StringTable,
        events: Dict[str, np.ndarray],
        spans: Dict[str, np.ndarray],
        edges: Dict[str, np.ndarray],
        pagerows: Dict[str, np.ndarray],
        source: str = "tracer",
    ):
        self.strings = strings
        self.events = events
        self.spans = spans
        self.edges = edges
        self.pagerows = pagerows
        self.source = source

    # -- sizes ---------------------------------------------------------
    @property
    def num_events(self) -> int:
        return int(self.events["t"].shape[0])

    @property
    def num_spans(self) -> int:
        return int(self.spans["t0"].shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edges["ts"].shape[0])

    def summary(self) -> Dict[str, int]:
        """Row counts per table (for logs and tests)."""
        return {
            "events": self.num_events,
            "spans": self.num_spans,
            "edges": self.num_edges,
            "pagerows": int(self.pagerows["t"].shape[0]),
            "strings": len(self.strings),
        }

    # -- construction --------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer: Any) -> "ColumnarTrace":
        """Ingest an in-memory tracer (anything with events/spans/edges)."""
        records = _tracer_records(tracer)
        return cls._build(records, source="tracer")

    @classmethod
    def from_jsonl(cls, path: str) -> "ColumnarTrace":
        """Ingest a ``trace.jsonl`` file from disk."""
        return cls._build(_parse_jsonl(path), source="jsonl")

    @classmethod
    def _build(cls, records: Dict[str, List[Any]], source: str) -> "ColumnarTrace":
        strings = StringTable()
        ev_b = _Builder(_EVENT_TABLE)
        page_b = _Builder(_PAGEROW_TABLE)
        # legacy scalar events carry a bare id in detail; map it to the
        # column the structured schema would have used
        scalar_col = {"acquire": "lock", "release": "lock",
                      "barrier": "aux", "seal": "aux", "fault": "page"}
        multi_peer = {"diff_send": "home", "diff_apply": "writer"}
        for t, node, name, detail in records["events"]:
            ev = strings.intern(name)
            lock = page = to = home = aux = -1
            if isinstance(detail, dict):
                lock = _as_int(detail.get("lock"))
                page = _as_int(detail.get("page"))
                to = _as_int(detail.get("to"))
                home = _as_int(detail.get("home"))
                aux = _as_int(detail.get("writer", detail.get("requester",
                              detail.get("index", detail.get("episode")))))
                peer_key = multi_peer.get(name)
                if peer_key is not None:
                    peer = _as_int(detail.get(peer_key))
                    for p in detail.get("pages") or ():
                        page_b.rows["t"].append(t)
                        page_b.rows["node"].append(node)
                        page_b.rows["ev"].append(ev)
                        page_b.rows["page"].append(_as_int(p))
                        page_b.rows["peer"].append(peer)
            elif isinstance(detail, int) and name in scalar_col:
                if scalar_col[name] == "lock":
                    lock = detail
                elif scalar_col[name] == "page":
                    page = detail
                else:
                    aux = detail
            row = ev_b.rows
            row["t"].append(t)
            row["node"].append(node)
            row["ev"].append(ev)
            row["lock"].append(lock)
            row["page"].append(page)
            row["to"].append(to)
            row["home"].append(home)
            row["aux"].append(aux)

        sp_b = _Builder(_SPAN_TABLE)
        for parent, node, strand, name, cat, t0, t1, detail in records["spans"]:
            row = sp_b.rows
            row["parent"].append(parent)
            row["node"].append(node)
            row["strand"].append(strings.intern(strand))
            row["name"].append(strings.intern(name))
            row["cat"].append(strings.intern(cat))
            row["t0"].append(t0)
            row["t1"].append(t1)
            if isinstance(detail, dict):
                row["lock"].append(_as_int(detail.get("lock")))
                row["page"].append(_as_int(detail.get("page")))
            else:
                row["lock"].append(-1)
                row["page"].append(-1)

        ed_b = _Builder(_EDGE_TABLE)
        for src, dst, kind, size, ts, tr in records["edges"]:
            row = ed_b.rows
            row["src"].append(src)
            row["dst"].append(dst)
            row["kind"].append(strings.intern(kind))
            row["size"].append(size)
            row["ts"].append(ts)
            row["tr"].append(tr)

        return cls(strings, ev_b.finish(), sp_b.finish(), ed_b.finish(),
                   page_b.finish(), source=source)

    # -- cache ---------------------------------------------------------
    def save_cache(self, trace_path: str) -> Path:
        """Write the columnar cache beside ``trace_path``; returns it."""
        directory = Path(trace_path).parent
        npz = directory / CACHE_NPZ
        arrays: Dict[str, np.ndarray] = {}
        for table, cols in (("events", self.events), ("spans", self.spans),
                            ("edges", self.edges),
                            ("pagerows", self.pagerows)):
            for name, arr in cols.items():
                arrays[f"{table}.{name}"] = arr
        with open(npz, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        meta = {
            "schema": COLUMNS_SCHEMA,
            "source": _signature(trace_path),
            "strings": self.strings.strings,
        }
        with open(directory / CACHE_META, "w") as fh:
            json.dump(meta, fh, separators=(",", ":"))
        return npz

    @classmethod
    def load_cache(cls, trace_path: str) -> Optional["ColumnarTrace"]:
        """Load the cache beside ``trace_path`` if fresh; else None."""
        directory = Path(trace_path).parent
        npz, meta_path = directory / CACHE_NPZ, directory / CACHE_META
        if not npz.exists() or not meta_path.exists():
            return None
        try:
            with open(meta_path) as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return None
        if (meta.get("schema") != COLUMNS_SCHEMA
                or meta.get("source") != _signature(trace_path)):
            return None
        with np.load(npz) as data:
            tables: Dict[str, Dict[str, np.ndarray]] = {
                "events": {}, "spans": {}, "edges": {}, "pagerows": {}}
            for key in data.files:
                table, _, col = key.partition(".")
                tables[table][col] = data[key]
        return cls(StringTable(meta.get("strings", [])),
                   tables["events"], tables["spans"], tables["edges"],
                   tables["pagerows"], source="cache")


def _signature(path: str) -> Optional[Dict[str, int]]:
    """Freshness key of the source JSONL (None when it is absent)."""
    try:
        st = os.stat(path)
    except OSError:
        return None
    return {"size": st.st_size, "mtime_ns": st.st_mtime_ns}


def _tracer_records(tracer: Any) -> Dict[str, List[Any]]:
    """Normalise an in-memory tracer's lists to plain tuples."""
    return {
        "events": [(e.time, e.node, e.event, e.detail)
                   for e in tracer.events],
        "spans": [(s.parent, s.node, s.strand, s.name, s.cat, s.t0, s.t1,
                   s.detail) for s in tracer.spans],
        "edges": [(m.src, m.dst, m.kind, m.size, m.t_send, m.t_recv)
                  for m in tracer.edges],
    }


def _parse_jsonl(path: str) -> Dict[str, List[Any]]:
    """Parse a ``trace.jsonl`` into plain record tuples.

    Kept as a module-level function so tests can monkeypatch it to
    prove cached loads never re-parse the JSONL.
    """
    events: List[Any] = []
    spans: List[Any] = []
    edges: List[Any] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "e" in obj:
                events.append((obj["t"], obj["n"], obj["e"], obj.get("d")))
            elif "ei" in obj:
                edges.append((obj["src"], obj["dst"], obj["k"], obj["sz"],
                              obj["ts"], obj["tr"]))
            else:
                spans.append((obj["p"], obj["n"], obj["st"], obj["nm"],
                              obj["c"], obj["t0"], obj["t1"], obj.get("d")))
    return {"events": events, "spans": spans, "edges": edges}


def load_or_ingest(path: str) -> ColumnarTrace:
    """The columnar view of a run's trace, from cache when fresh.

    ``path`` may be a bundle directory (``runs/<id>``), its
    ``manifest.json``, or the ``trace.jsonl`` itself.  A cache miss
    parses the JSONL and writes the cache for next time.
    """
    trace_path = resolve_trace_path(path)
    cached = ColumnarTrace.load_cache(trace_path)
    if cached is not None:
        return cached
    ct = ColumnarTrace.from_jsonl(trace_path)
    try:
        ct.save_cache(trace_path)
    except OSError:
        pass  # read-only bundle: still serve the parsed view
    return ct


def resolve_trace_path(path: str) -> str:
    """Map a bundle dir / manifest / trace path to the trace JSONL."""
    p = Path(path)
    if p.is_dir():
        return str(p / "trace.jsonl")
    if p.name == "manifest.json":
        return str(p.parent / "trace.jsonl")
    return str(p)


# ----------------------------------------------------------------------
# groupby helpers
# ----------------------------------------------------------------------

def _group_sum(keys: np.ndarray, values: np.ndarray) -> Dict[int, float]:
    """Sum ``values`` per distinct key (vectorised)."""
    if keys.size == 0:
        return {}
    uniq, inv = np.unique(keys, return_inverse=True)
    sums = np.bincount(inv, weights=values, minlength=uniq.size)
    return {int(k): float(v) for k, v in zip(uniq, sums)}


def _group_count(keys: np.ndarray) -> Dict[int, int]:
    """Row count per distinct key."""
    if keys.size == 0:
        return {}
    uniq, counts = np.unique(keys, return_counts=True)
    return {int(k): int(n) for k, n in zip(uniq, counts)}


# ----------------------------------------------------------------------
# built-in reports
# ----------------------------------------------------------------------

def report_locks(ct: ColumnarTrace, top: int = 10,
                 chain_len: int = 12) -> Dict[str, Any]:
    """Per-lock contention profile: wait-time distribution + holder chain.

    Wait times come from the ``lock_wait`` spans (one per queued
    acquire); holder chains from the manager's ``lock_grant`` events in
    grant order.
    """
    sp = ct.spans
    wait_id = ct.strings.get("lock_wait")
    closed = (sp["name"] == wait_id) & (sp["t1"] >= 0) & (sp["lock"] >= 0)
    locks = sp["lock"][closed]
    waits = (sp["t1"] - sp["t0"])[closed]

    ev = ct.events
    grant_id = ct.strings.get("lock_grant")
    grants = ev["ev"] == grant_id
    g_lock, g_to = ev["lock"][grants], ev["to"][grants]

    rows: List[Dict[str, Any]] = []
    totals = _group_sum(locks, waits)
    counts = _group_count(locks)
    all_locks = sorted(set(totals) | set(_group_count(g_lock)))
    for lock in all_locks:
        mask = locks == lock
        w = waits[mask]
        chain = g_to[g_lock == lock]
        rows.append({
            "lock": lock,
            "acquires": int((g_lock == lock).sum()),
            "queued_waits": counts.get(lock, 0),
            "wait_total": totals.get(lock, 0.0),
            "wait_mean": float(w.mean()) if w.size else 0.0,
            "wait_max": float(w.max()) if w.size else 0.0,
            "wait_p99": float(np.quantile(w, 0.99)) if w.size else 0.0,
            "holder_chain": [int(h) for h in chain[:chain_len]],
        })
    rows.sort(key=lambda r: (-r["wait_total"], r["lock"]))
    return {
        "report": "locks",
        "total_wait": float(waits.sum()) if waits.size else 0.0,
        "locks": rows[:top],
        "num_locks": len(rows),
    }


def report_pages(ct: ColumnarTrace, top: int = 10) -> Dict[str, Any]:
    """Hot-page / home heatmap: fetch and diff traffic per page.

    Combines single-page ``page_fetch``/``page_serve``/``fault`` events
    with the exploded per-page diff rows, and summarises per-home load
    (fetches served + diffs applied at each home) with an imbalance
    factor ``max/mean``.
    """
    ev = ct.events
    fetch_id = ct.strings.get("page_fetch")
    fault_id = ct.strings.get("fault")
    pr = ct.pagerows
    send_id = ct.strings.get("diff_send")
    apply_id = ct.strings.get("diff_apply")

    fetch_rows = ev["ev"] == fetch_id
    fetches = _group_count(ev["page"][fetch_rows])
    faults = _group_count(ev["page"][ev["ev"] == fault_id])
    diff_sends = _group_count(pr["page"][pr["ev"] == send_id])
    diff_applies = _group_count(pr["page"][pr["ev"] == apply_id])

    pages = sorted(set(fetches) | set(faults) | set(diff_sends)
                   | set(diff_applies))
    page_home: Dict[int, int] = {}
    fp, fh = ev["page"][fetch_rows], ev["home"][fetch_rows]
    for p, h in zip(fp.tolist(), fh.tolist()):
        if h >= 0:
            page_home.setdefault(p, h)
    sp, sh = pr["page"][pr["ev"] == send_id], pr["peer"][pr["ev"] == send_id]
    for p, h in zip(sp.tolist(), sh.tolist()):
        if h >= 0:
            page_home.setdefault(p, h)

    rows = []
    for page in pages:
        if page < 0:
            continue
        rows.append({
            "page": page,
            "home": page_home.get(page, -1),
            "fetches": fetches.get(page, 0),
            "faults": faults.get(page, 0),
            "diff_sends": diff_sends.get(page, 0),
            "diff_applies": diff_applies.get(page, 0),
        })
    rows.sort(key=lambda r: (-(r["fetches"] + r["diff_sends"]), r["page"]))

    home_load: Dict[int, int] = {}
    for h, n in _group_count(ev["home"][fetch_rows]).items():
        if h >= 0:
            home_load[h] = home_load.get(h, 0) + n
    apply_rows = pr["ev"] == apply_id
    for h, n in _group_count(pr["node"][apply_rows]).items():
        if h >= 0:
            home_load[h] = home_load.get(h, 0) + n
    loads = list(home_load.values())
    mean_load = (sum(loads) / len(loads)) if loads else 0.0
    return {
        "report": "pages",
        "pages": rows[:top],
        "num_pages": len(rows),
        "home_load": {str(h): n for h, n in sorted(home_load.items())},
        "home_imbalance": (max(loads) / mean_load) if mean_load else 0.0,
    }


def report_phases(ct: ColumnarTrace, top: int = 12) -> Dict[str, Any]:
    """Per-node protocol-phase breakdown by span *self time*.

    Self time is a span's duration minus its closed children's
    durations, so nested phases (a ``log_flush`` inside an ``acquire``)
    are not double counted.  Grouped per ``node x category`` and per
    span name across the cluster.
    """
    sp = ct.spans
    closed = sp["t1"] >= 0
    dur = np.where(closed, sp["t1"] - sp["t0"], 0.0)
    self_time = dur.copy()
    parents = sp["parent"]
    child = closed & (parents >= 0)
    if child.any():
        np.subtract.at(self_time, parents[child], dur[child])
    self_time = np.maximum(self_time, 0.0)

    per_node: Dict[str, Dict[str, float]] = {}
    nodes = np.unique(sp["node"]) if sp["node"].size else np.array([], int)
    for node in nodes.tolist():
        mask = (sp["node"] == node) & closed
        cats = _group_sum(sp["cat"][mask], self_time[mask])
        per_node[str(node)] = {ct.strings.lookup(c): v
                               for c, v in sorted(cats.items())}

    by_name = _group_sum(sp["name"][closed], self_time[closed])
    name_rows = [{"name": ct.strings.lookup(n), "self_time": v,
                  "count": _group_count(sp["name"][closed]).get(n, 0)}
                 for n, v in by_name.items()]
    name_rows.sort(key=lambda r: (-r["self_time"], r["name"]))
    return {
        "report": "phases",
        "per_node": per_node,
        "by_name": name_rows[:top],
        "total_self_time": float(self_time[closed].sum()) if closed.any() else 0.0,
    }


def report_flows(ct: ColumnarTrace, top: int = 15) -> Dict[str, Any]:
    """src -> dst x message-kind flow matrix with latency and bytes."""
    ed = ct.edges
    n = ed["ts"].shape[0]
    if n == 0:
        return {"report": "flows", "flows": [], "num_messages": 0,
                "total_bytes": 0, "undelivered": 0}
    # composite key: (src, dst, kind) packed into one int64
    key = ((ed["src"].astype(np.int64) << 40)
           | (ed["dst"].astype(np.int64) << 20)
           | ed["kind"].astype(np.int64))
    uniq, inv = np.unique(key, return_inverse=True)
    counts = np.bincount(inv, minlength=uniq.size)
    bytes_ = np.bincount(inv, weights=ed["size"].astype(np.float64),
                         minlength=uniq.size)
    delivered = ed["tr"] >= 0
    lat_sum = np.bincount(inv, weights=np.where(delivered,
                                                ed["tr"] - ed["ts"], 0.0),
                          minlength=uniq.size)
    lat_n = np.bincount(inv, weights=delivered.astype(np.float64),
                        minlength=uniq.size)
    rows = []
    for i, k in enumerate(uniq.tolist()):
        src, dst, kind = (k >> 40) & 0xFFFFF, (k >> 20) & 0xFFFFF, k & 0xFFFFF
        rows.append({
            "src": int(src), "dst": int(dst),
            "kind": ct.strings.lookup(int(kind)),
            "count": int(counts[i]),
            "bytes": int(bytes_[i]),
            "mean_latency": float(lat_sum[i] / lat_n[i]) if lat_n[i] else 0.0,
        })
    rows.sort(key=lambda r: (-r["bytes"], r["src"], r["dst"], r["kind"]))
    return {
        "report": "flows",
        "flows": rows[:top],
        "num_messages": n,
        "total_bytes": int(ed["size"].sum()),
        "undelivered": int((~delivered).sum()),
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _fmt_s(seconds: float) -> str:
    """Compact seconds (ms/us below 1s)."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _render_locks(doc: Dict[str, Any]) -> str:
    lines = [f"lock contention  (total queued wait {_fmt_s(doc['total_wait'])}, "
             f"{doc['num_locks']} lock(s))"]
    if not doc["locks"]:
        lines.append("  no lock activity in trace")
    for r in doc["locks"]:
        chain = "->".join(str(h) for h in r["holder_chain"])
        lines.append(
            f"  lock {r['lock']:>4}: acquires={r['acquires']:<6} "
            f"queued={r['queued_waits']:<6} wait total={_fmt_s(r['wait_total'])} "
            f"mean={_fmt_s(r['wait_mean'])} p99={_fmt_s(r['wait_p99'])} "
            f"max={_fmt_s(r['wait_max'])}"
        )
        if chain:
            lines.append(f"            holders: {chain}"
                         + ("..." if r["acquires"] > len(r["holder_chain"]) else ""))
    return "\n".join(lines)


def _render_pages(doc: Dict[str, Any]) -> str:
    lines = [f"hot pages  ({doc['num_pages']} page(s) with traffic, "
             f"home imbalance x{doc['home_imbalance']:.2f})"]
    if not doc["pages"]:
        lines.append("  no page traffic in trace")
    for r in doc["pages"]:
        lines.append(
            f"  page {r['page']:>5} @home {r['home']:>2}: "
            f"fetches={r['fetches']:<6} faults={r['faults']:<6} "
            f"diff_sends={r['diff_sends']:<6} diff_applies={r['diff_applies']}"
        )
    if doc["home_load"]:
        load = "  ".join(f"home {h}: {n}" for h, n in doc["home_load"].items())
        lines.append(f"  home load (serves+applies): {load}")
    return "\n".join(lines)


def _render_phases(doc: Dict[str, Any]) -> str:
    lines = [f"protocol phases  (total self time "
             f"{_fmt_s(doc['total_self_time'])})"]
    for node, cats in doc["per_node"].items():
        parts = "  ".join(f"{c}={_fmt_s(v)}" for c, v in cats.items())
        lines.append(f"  node {node}: {parts}")
    if doc["by_name"]:
        lines.append("  top spans by self time:")
        for r in doc["by_name"]:
            lines.append(f"    {r['name']:<16} {_fmt_s(r['self_time']):>10} "
                         f"({r['count']} span(s))")
    else:
        lines.append("  no spans in trace (was tracing enabled?)")
    return "\n".join(lines)


def _render_flows(doc: Dict[str, Any]) -> str:
    lines = [f"message flows  ({doc['num_messages']} msgs, "
             f"{doc['total_bytes']} bytes, {doc['undelivered']} undelivered)"]
    if not doc["flows"]:
        lines.append("  no message edges in trace")
    for r in doc["flows"]:
        lines.append(
            f"  {r['src']:>2} -> {r['dst']:>2} {r['kind']:<14} "
            f"count={r['count']:<7} bytes={r['bytes']:<10} "
            f"mean latency={_fmt_s(r['mean_latency'])}"
        )
    return "\n".join(lines)


#: report name -> (aggregate, render) for the CLI and tests.
REPORTS: Dict[str, Tuple[Callable[[ColumnarTrace], Dict[str, Any]],
                         Callable[[Dict[str, Any]], str]]] = {
    "locks": (report_locks, _render_locks),
    "pages": (report_pages, _render_pages),
    "phases": (report_phases, _render_phases),
    "flows": (report_flows, _render_flows),
}


def run_report(ct: ColumnarTrace, name: str) -> Dict[str, Any]:
    """Aggregate one built-in report by name."""
    if name not in REPORTS:
        raise KeyError(f"unknown report {name!r}; "
                       f"choose from {sorted(REPORTS)}")
    return REPORTS[name][0](ct)


def render_report(doc: Dict[str, Any]) -> str:
    """Render a report dict produced by :func:`run_report`."""
    name = doc.get("report")
    if name not in REPORTS:
        raise KeyError(f"not a report document: {doc.get('report')!r}")
    return REPORTS[name][1](doc)
