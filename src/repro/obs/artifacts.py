"""Per-run artifact bundles: ``runs/<run_id>/manifest.json`` (+ trace).

Every harness invocation that produces results writes one bundle so
runs are comparable after the fact:

* ``manifest.json`` -- run id, creation time, git revision, the CLI
  command, the cluster configuration, per-run metric snapshots
  (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), and headline
  numbers per (app, protocol);
* ``trace.jsonl`` -- the span/edge/event trace, when one was recorded;
* ``timeline.json`` -- the Perfetto export, when requested.

:func:`compare_bundles` diffs the numeric leaves of two manifests; the
CLI's ``repro compare A B`` renders it.  Bundle writing is harness-side
plumbing: nothing here touches the deterministic simulator layer.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "MANIFEST_SCHEMA",
    "git_rev",
    "git_sha",
    "provenance",
    "new_run_id",
    "config_dict",
    "result_summary",
    "write_bundle",
    "load_bundle",
    "compare_bundles",
    "render_compare",
]

#: Manifest layout version.  2 added the ``provenance`` block (full git
#: SHA, CLI argv, seeds) and per-operation latency percentiles in
#: result summaries.
MANIFEST_SCHEMA = 2


def _rev_parse(args: List[str], cwd: Optional[str] = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", *args],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def git_rev(cwd: Optional[str] = None) -> str:
    """Short git revision of the working tree ("unknown" outside git)."""
    return _rev_parse(["--short", "HEAD"], cwd)


def git_sha(cwd: Optional[str] = None) -> str:
    """Full git SHA of the working tree ("unknown" outside git)."""
    return _rev_parse(["HEAD"], cwd)


def provenance(seeds: Optional[List[int]] = None) -> Dict[str, Any]:
    """What produced this run: full git SHA, CLI argv, seeds.

    ``repro explain`` uses this block to label the two sides of a
    comparison, so every manifest should carry one (``write_bundle``
    adds it automatically).
    """
    import sys

    return {
        "git_sha": git_sha(),
        "argv": list(sys.argv),
        "seeds": list(seeds) if seeds is not None else [],
    }


def new_run_id(runs_dir: str, prefix: str = "run") -> str:
    """A unique, sortable id under ``runs_dir`` (timestamped)."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    base = f"{prefix}-{stamp}"
    run_id = base
    n = 1
    while (Path(runs_dir) / run_id).exists():
        run_id = f"{base}.{n}"
        n += 1
    return run_id


def config_dict(config: Any) -> Dict[str, Any]:
    """JSON-safe snapshot of a ClusterConfig (best effort)."""
    doc: Dict[str, Any] = {"repr": repr(config)}
    for attr in ("num_nodes", "page_size"):
        value = getattr(config, attr, None)
        if isinstance(value, (int, float)):
            doc[attr] = value
    return doc


def result_summary(result: Any) -> Dict[str, Any]:
    """Headline numbers of one RunResult for the manifest."""
    doc = {
        "app": result.app_name,
        "protocol": result.protocol,
        "total_time": result.total_time,
        "completed": result.completed,
        "network_bytes": result.network_bytes,
        "network_msgs": result.network_msgs,
        "num_flushes": result.num_flushes,
        "total_log_bytes": result.total_log_bytes,
        "counters": dict(result.aggregate.counters),
        "time": result.aggregate.time.as_dict(),
    }
    latency = getattr(result.aggregate, "latency", None)
    if latency:
        doc["latency"] = {op: rec.percentiles()
                          for op, rec in sorted(latency.items())}
    return doc


def write_bundle(
    runs_dir: str,
    manifest: Dict[str, Any],
    tracer: Any = None,
    timeline: Optional[Dict[str, Any]] = None,
    run_id: Optional[str] = None,
    seeds: Optional[List[int]] = None,
) -> Path:
    """Write one run bundle; returns the bundle directory."""
    run_id = run_id or new_run_id(runs_dir)
    bundle = Path(runs_dir) / run_id
    os.makedirs(bundle, exist_ok=True)
    manifest = dict(manifest)
    manifest.setdefault("run_id", run_id)
    manifest.setdefault("schema", MANIFEST_SCHEMA)
    manifest.setdefault("created", time.strftime("%Y-%m-%dT%H:%M:%S"))
    manifest.setdefault("git_rev", git_rev())
    manifest.setdefault("provenance", provenance(seeds=seeds))
    if tracer is not None and (tracer.spans or tracer.events or tracer.edges):
        tracer.save(str(bundle / "trace.jsonl"))
        manifest["trace_file"] = "trace.jsonl"
    if timeline is not None:
        with open(bundle / "timeline.json", "w") as fh:
            json.dump(timeline, fh, separators=(",", ":"))
        manifest["timeline_file"] = "timeline.json"
    with open(bundle / "manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return bundle


def load_bundle(path: str) -> Dict[str, Any]:
    """Load a bundle's manifest (accepts the dir or the file itself)."""
    p = Path(path)
    if p.is_dir():
        p = p / "manifest.json"
    with open(p) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------

def _numeric_leaves(doc: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten every numeric leaf to a dotted path -> value map."""
    out: Dict[str, float] = {}
    if isinstance(doc, bool):
        return out
    if isinstance(doc, (int, float)):
        out[prefix or "value"] = float(doc)
    elif isinstance(doc, dict):
        for key in doc:
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(doc[key], sub))
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            # results lists are keyed by (app, protocol) when possible
            tag = str(i)
            if isinstance(item, dict) and "app" in item and "protocol" in item:
                tag = f"{item['app']}/{item['protocol']}"
            out.update(_numeric_leaves(item, f"{prefix}[{tag}]"))
    return out


def compare_bundles(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Diff the numeric leaves of two manifests' result sections."""
    keys = ("results", "metrics", "overlap")
    la = {k: v for key in keys
          for k, v in _numeric_leaves(a.get(key), key).items()}
    lb = {k: v for key in keys
          for k, v in _numeric_leaves(b.get(key), key).items()}
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(la) | set(lb)):
        va, vb = la.get(key), lb.get(key)
        row: Dict[str, Any] = {"key": key, "a": va, "b": vb}
        if va is not None and vb is not None:
            row["delta"] = vb - va
            row["ratio"] = vb / va if va else None
        rows.append(row)
    return {
        "a": {"run_id": a.get("run_id"), "git_rev": a.get("git_rev")},
        "b": {"run_id": b.get("run_id"), "git_rev": b.get("git_rev")},
        "rows": rows,
    }


def render_compare(cmp: Dict[str, Any], only_changed: bool = True,
                   tolerance: float = 0.0) -> str:
    """Human-readable bundle diff table."""
    head_a = f"{cmp['a']['run_id']} ({cmp['a']['git_rev']})"
    head_b = f"{cmp['b']['run_id']} ({cmp['b']['git_rev']})"
    lines = [f"compare: A={head_a}  B={head_b}"]
    changed = 0
    for row in cmp["rows"]:
        va, vb, delta = row["a"], row["b"], row.get("delta")
        if only_changed and delta is not None and abs(delta) <= tolerance:
            continue
        changed += 1
        fa = "-" if va is None else f"{va:g}"
        fb = "-" if vb is None else f"{vb:g}"
        extra = ""
        if delta is not None:
            sign = "+" if delta >= 0 else ""
            extra = f"  ({sign}{delta:g})"
        lines.append(f"  {row['key']}: {fa} -> {fb}{extra}")
    if changed == 0:
        lines.append("  no differences")
    lines.append(f"{changed} differing metric(s), "
                 f"{len(cmp['rows'])} compared")
    return "\n".join(lines)
