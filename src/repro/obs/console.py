"""Console output for the harness CLI (``--quiet`` / ``--json``).

Every user-facing line the harness produces goes through the process
:class:`Console` instead of bare ``print()`` (enforced by lint rule
OBS001).  Three channels:

* :meth:`Console.result` -- primary artefact text (tables, reports).
  Printed normally; under ``--json`` it is buffered and emitted inside
  the final JSON document instead.
* :meth:`Console.info` -- progress and diagnostics.  Suppressed by
  ``--quiet`` and by ``--json``.
* :meth:`Console.emit` -- structured payloads keyed by name; only
  rendered (as JSON) under ``--json``.

``main()`` calls :meth:`Console.finish` once at the end so JSON mode
produces exactly one document on stdout.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

__all__ = ["Console", "get_console", "configure"]


class Console:
    """One process's output sink with quiet/JSON modes."""

    def __init__(self, quiet: bool = False, json_mode: bool = False):
        self.quiet = quiet
        self.json_mode = json_mode
        self._lines: List[str] = []
        self._data: Dict[str, Any] = {}

    # -- channels ------------------------------------------------------
    def result(self, text: Any = "") -> None:
        """Primary output: always shown (buffered under ``--json``)."""
        if self.json_mode:
            self._lines.append(str(text))
        else:
            print(text)

    def info(self, text: Any = "") -> None:
        """Progress/diagnostic output: dropped by --quiet and --json."""
        if not self.quiet and not self.json_mode:
            print(text)

    def error(self, text: Any = "") -> None:
        """Failure output: always shown, on stderr in text modes."""
        if self.json_mode:
            self._lines.append(str(text))
        else:
            print(text, file=sys.stderr)

    def emit(self, key: str, value: Any) -> None:
        """Attach a structured payload to the ``--json`` document."""
        self._data[key] = value

    # -- lifecycle -----------------------------------------------------
    def finish(self) -> None:
        """Flush the JSON document (no-op in text modes)."""
        if not self.json_mode:
            return
        doc = dict(self._data)
        doc["output"] = self._lines
        print(json.dumps(doc, indent=2, sort_keys=True, default=str))
        self._lines = []
        self._data = {}


#: Process-wide console; the CLI reconfigures it from parsed flags.
_CONSOLE = Console()


def get_console() -> Console:
    """The process-wide console instance."""
    return _CONSOLE


def configure(quiet: bool = False, json_mode: bool = False) -> Console:
    """Set the process console's modes (returns it for convenience)."""
    _CONSOLE.quiet = quiet
    _CONSOLE.json_mode = json_mode
    return _CONSOLE
