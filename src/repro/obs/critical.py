"""Causal critical-path extraction and the flush/communication overlap.

Two analyses over a recorded span/edge DAG
(:class:`~repro.sim.trace.Tracer`):

**Critical path** (:func:`critical_path`).  Starting from the last span
end in the run, walk *backwards* through causality: at time ``t`` on a
node, the innermost active span owns the time; a ``wait``-category span
is resolved through the message edge that ended it (jumping to the
sender at its send time); a handler span jumps through the inbound
message it serves.  Every step strictly decreases ``t``, so the walk
terminates with a chronological chain of segments whose durations sum
to the run's wall time -- *which* span chain bounds the run, per node
and per interval.

**Flush/communication overlap** (:func:`flush_overlap`).  The paper's
central claim is that CCL hides stable-log flush latency behind the
diff round trip HLRC already performs.  For every ``log_flush`` span F
recorded on a node's disk strand, the hidden time is the length of
F's intersection with the union of that node's ``wait``-category spans
(diff-ACK waits, lock/barrier waits) on the main strand; the overlap
fraction is hidden time over flush time.  Synchronous flushes (ML's
policy, span detail ``mode: "sync"``) hold the main strand by
definition, so their hidden time is zero -- the ML baseline the CCL
numbers are compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Segment",
    "critical_path",
    "summarize_path",
    "render_path",
    "FlushOverlap",
    "flush_overlap",
    "render_overlap",
]

_EPS = 1e-15


@dataclass(frozen=True)
class Segment:
    """One attributed stretch of the critical path."""

    t0: float
    t1: float
    node: int
    name: str
    cat: str

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------

def _active_span(spans_at: Dict[Tuple[int, str], List[Any]], node: int,
                 t: float) -> Optional[Any]:
    """Innermost span active at (node, t) across strands.

    Active means ``t0 < t <= t1`` (strict start keeps the walk
    strictly decreasing); innermost is the latest ``t0``.  Open spans
    (``t1 < 0``) never participate -- they were cut off by a crash.
    """
    best = None
    for strand in ("main", "server", "disk"):
        for span in spans_at.get((node, strand), ()):
            if span.t0 < t and span.t1 >= t:
                if best is None or span.t0 > best.t0:
                    best = span
    return best


def _edge_for_wait(span: Any, t_hi: float, edges_by_dst: Dict[int, List[Any]],
                   edges: List[Any]) -> Optional[Any]:
    """The delivered edge that ended a wait span (detail eid, else the
    latest delivery into the node inside the wait window)."""
    if isinstance(span.detail, dict):
        eid = span.detail.get("eid", -1)
        if isinstance(eid, int) and 0 <= eid < len(edges):
            edge = edges[eid]
            if edge.t_recv >= 0:
                return edge
    best = None
    for edge in edges_by_dst.get(span.node, ()):
        if span.t0 <= edge.t_recv <= t_hi:
            if best is None or edge.t_recv > best.t_recv:
                best = edge
    return best


def critical_path(tracer: Any, end_node: Optional[int] = None) -> List[Segment]:
    """The span chain bounding the run's wall time, chronological.

    ``end_node`` picks which node's last activity anchors the walk
    (default: the node whose main strand finishes last).
    """
    closed = [s for s in tracer.spans if s.t1 >= 0]
    if not closed:
        return []
    spans_at: Dict[Tuple[int, str], List[Any]] = {}
    for s in closed:
        spans_at.setdefault((s.node, s.strand), []).append(s)
    edges_by_dst: Dict[int, List[Any]] = {}
    for e in tracer.edges:
        if e.t_recv >= 0:
            edges_by_dst.setdefault(e.dst, []).append(e)

    if end_node is None:
        mains = [s for s in closed if s.strand == "main"]
        last = max(mains or closed, key=lambda s: s.t1)
        end_node, t = last.node, last.t1
    else:
        ours = [s for s in closed if s.node == end_node]
        t = max((s.t1 for s in ours), default=0.0)

    node = end_node
    segments: List[Segment] = []
    budget = 4 * (len(closed) + len(tracer.edges)) + 64
    while t > _EPS and budget > 0:
        budget -= 1
        span = _active_span(spans_at, node, t)
        if span is None:
            # gap before/between spans: attribute to untracked node time
            prev_end = max(
                (s.t1 for s in closed if s.node == node and s.t1 < t),
                default=0.0,
            )
            segments.append(Segment(prev_end, t, node, "untracked", "cpu"))
            if prev_end <= _EPS:
                break
            t = prev_end
            continue
        if span.cat == "wait":
            edge = _edge_for_wait(span, t, edges_by_dst, tracer.edges)
            if edge is not None and edge.t_send < t:
                if t > edge.t_recv:
                    segments.append(Segment(edge.t_recv, t, node,
                                            span.name, "wait"))
                segments.append(Segment(edge.t_send, min(edge.t_recv, t),
                                        edge.src, edge.kind, "net"))
                node, t = edge.src, edge.t_send
                continue
            segments.append(Segment(span.t0, t, node, span.name, "wait"))
            t = span.t0
            continue
        if (span.cat == "handler" and isinstance(span.detail, dict)
                and 0 <= span.detail.get("eid", -1) < len(tracer.edges)):
            edge = tracer.edges[span.detail["eid"]]
            if edge.t_recv >= 0 and edge.t_send < span.t0:
                segments.append(Segment(span.t0, t, node, span.name,
                                        "handler"))
                segments.append(Segment(edge.t_send, span.t0, edge.src,
                                        edge.kind, "net"))
                node, t = edge.src, edge.t_send
                continue
        segments.append(Segment(span.t0, t, node, span.name, span.cat))
        t = span.t0
    segments.reverse()
    return segments


def summarize_path(segments: List[Segment]) -> Dict[str, float]:
    """Critical-path seconds by category."""
    by_cat: Dict[str, float] = {}
    for seg in segments:
        by_cat[seg.cat] = by_cat.get(seg.cat, 0.0) + seg.duration
    return dict(sorted(by_cat.items(), key=lambda kv: -kv[1]))


def render_path(segments: List[Segment], limit: int = 0) -> str:
    """Human-readable critical-path report."""
    if not segments:
        return "critical path: no closed spans recorded"
    total = segments[-1].t1 - segments[0].t0
    lines = [f"critical path: {len(segments)} segments, "
             f"{total * 1e3:.3f} ms total"]
    for cat, secs in summarize_path(segments).items():
        pct = 100.0 * secs / total if total else 0.0
        lines.append(f"  {cat:<8} {secs * 1e3:9.3f} ms  {pct:5.1f}%")
    shown = segments if limit <= 0 else segments[-limit:]
    if limit > 0 and len(segments) > limit:
        lines.append(f"  ... last {limit} of {len(segments)} segments:")
    for seg in shown:
        lines.append(
            f"  [{seg.t0 * 1e3:10.4f}, {seg.t1 * 1e3:10.4f}] ms  "
            f"n{seg.node} {seg.cat:<7} {seg.name}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# flush/communication overlap (the paper's claim, measured)
# ----------------------------------------------------------------------

@dataclass
class FlushOverlap:
    """Aggregate flush-hiding measurement for one run."""

    #: (node, t0, t1, hidden_s, mode) per closed log_flush span.
    flushes: List[Tuple[int, float, float, float, str]] = field(
        default_factory=list
    )
    total_flush_s: float = 0.0
    hidden_s: float = 0.0
    sync_flush_s: float = 0.0

    @property
    def overlap_fraction(self) -> float:
        """Fraction of flush time hidden behind communication waits."""
        return self.hidden_s / self.total_flush_s if self.total_flush_s else 0.0

    def per_node(self) -> Dict[int, Tuple[float, float]]:
        """node -> (flush seconds, hidden seconds)."""
        out: Dict[int, Tuple[float, float]] = {}
        for node, t0, t1, hidden, _mode in self.flushes:
            f, h = out.get(node, (0.0, 0.0))
            out[node] = (f + (t1 - t0), h + hidden)
        return out


def _merge_intervals(ivals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    if not ivals:
        return []
    ivals = sorted(ivals)
    merged = [ivals[0]]
    for lo, hi in ivals[1:]:
        mlo, mhi = merged[-1]
        if lo <= mhi:
            merged[-1] = (mlo, max(mhi, hi))
        else:
            merged.append((lo, hi))
    return merged


def flush_overlap(tracer: Any) -> FlushOverlap:
    """Measure how much log-flush time communication waits hid."""
    waits_by_node: Dict[int, List[Tuple[float, float]]] = {}
    for s in tracer.spans:
        if s.cat == "wait" and s.strand == "main" and s.t1 >= 0:
            waits_by_node.setdefault(s.node, []).append((s.t0, s.t1))
    merged = {n: _merge_intervals(iv) for n, iv in waits_by_node.items()}

    report = FlushOverlap()
    for s in tracer.spans:
        if s.name != "log_flush" or s.t1 < 0:
            continue
        mode = (s.detail or {}).get("mode", "async") \
            if isinstance(s.detail, dict) else "async"
        duration = s.t1 - s.t0
        hidden = 0.0
        if mode == "async":
            for lo, hi in merged.get(s.node, ()):
                overlap = min(hi, s.t1) - max(lo, s.t0)
                if overlap > 0:
                    hidden += overlap
        else:
            report.sync_flush_s += duration
        report.flushes.append((s.node, s.t0, s.t1, hidden, mode))
        report.total_flush_s += duration
        report.hidden_s += hidden
    return report


def render_overlap(report: FlushOverlap, protocol: str = "") -> str:
    """Human-readable flush-overlap report."""
    tag = f" [{protocol}]" if protocol else ""
    if not report.flushes:
        return f"flush overlap{tag}: no log_flush spans recorded"
    lines = [
        f"flush overlap{tag}: {len(report.flushes)} flushes, "
        f"{report.total_flush_s * 1e3:.3f} ms flushed, "
        f"{report.hidden_s * 1e3:.3f} ms hidden behind communication "
        f"-> overlap fraction {report.overlap_fraction:.3f}"
    ]
    if report.sync_flush_s:
        lines.append(
            f"  synchronous flushes: {report.sync_flush_s * 1e3:.3f} ms "
            "(on the critical path by construction)"
        )
    for node, (flush_s, hidden_s) in sorted(report.per_node().items()):
        frac = hidden_s / flush_s if flush_s else 0.0
        lines.append(
            f"  node {node}: {flush_s * 1e3:8.3f} ms flushed, "
            f"{hidden_s * 1e3:8.3f} ms hidden ({frac:.3f})"
        )
    return "\n".join(lines)
