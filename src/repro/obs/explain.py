"""Perf-regression attribution: ``repro explain A B``.

Given two runs -- manifest bundles under ``runs/``, or two entries of
the committed perf trajectory ``benchmark_results/history.jsonl`` --
attribute the wall-clock / throughput delta to components instead of
reporting a bare number:

* **bundle mode** (:func:`explain_manifests`): per (app, protocol) pair
  present in both manifests, split the ``total_time`` delta over the
  protocol **phase** breakdown (compute / fault / sync / diff /
  log_flush ...), rank phases by contribution, and list the counter
  movements behind them; with columnar traces available, also rank span
  *self-time* deltas by span name (``barrier_wait``, ``page_fault``,
  ``log_flush`` ...);
* **history mode** (:func:`explain_history`): headline events/s delta
  plus ranked kernel ns/op and app wall-time movements between two
  trajectory entries.

The output is a JSON-safe document; :func:`render_explain` renders the
ranked table the CLI and the CI perf gate print.  Attribution is
arithmetic, not magic: a phase's *share* is its delta over the summed
absolute phase deltas, so the top row answers "where did the time go".
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "explain_manifests",
    "explain_history",
    "render_explain",
]


def _label(manifest: Mapping[str, Any]) -> Dict[str, Any]:
    """Identification block for one side of the comparison."""
    prov = manifest.get("provenance") or {}
    return {
        "run_id": manifest.get("run_id", "?"),
        "git": prov.get("git_sha") or manifest.get("git_rev", "?"),
        "created": manifest.get("created"),
        "command": manifest.get("command"),
    }


def _delta_rows(da: Mapping[str, float], db: Mapping[str, float],
                top: int = 0, shared_only: bool = False) -> List[Dict[str, Any]]:
    """Ranked per-key deltas between two numeric dicts.

    ``share`` is each key's fraction of the summed absolute movement, so
    shares add to ~1 and the first row is the dominant contributor.
    With ``shared_only`` keys missing on either side are dropped instead
    of read as zero -- a trajectory entry that simply didn't record a
    metric family is not a 100% regression of it.
    """
    keys = sorted(set(da) & set(db) if shared_only else set(da) | set(db))
    rows = []
    for key in keys:
        va, vb = float(da.get(key, 0.0)), float(db.get(key, 0.0))
        if vb == va:
            continue  # attribution only lists movement
        rows.append({"key": key, "a": va, "b": vb, "delta": vb - va})
    total_abs = sum(abs(r["delta"]) for r in rows)
    for r in rows:
        r["share"] = abs(r["delta"]) / total_abs if total_abs else 0.0
        r["pct"] = (r["delta"] / r["a"]) if r["a"] else None
    rows.sort(key=lambda r: (-abs(r["delta"]), r["key"]))
    return rows[:top] if top else rows


def _result_index(manifest: Mapping[str, Any]) -> Dict[Tuple[str, str], Any]:
    out: Dict[Tuple[str, str], Any] = {}
    for res in manifest.get("results", []) or []:
        if isinstance(res, dict) and "app" in res and "protocol" in res:
            out[(str(res["app"]), str(res["protocol"]))] = res
    return out


def _span_self_times(ct: Any) -> Dict[str, float]:
    """Per-span-name self time of one columnar trace (empty if None)."""
    if ct is None:
        return {}
    from .analytics import report_phases

    doc = report_phases(ct, top=50)
    return {row["name"]: row["self_time"] for row in doc["by_name"]}


def explain_manifests(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    ct_a: Any = None,
    ct_b: Any = None,
    top: int = 10,
) -> Dict[str, Any]:
    """Attribute the A -> B delta between two run manifests."""
    ia, ib = _result_index(a), _result_index(b)
    shared = sorted(set(ia) & set(ib))
    headline: List[Dict[str, Any]] = []
    phases_a: Dict[str, float] = {}
    phases_b: Dict[str, float] = {}
    counters_a: Dict[str, float] = {}
    counters_b: Dict[str, float] = {}
    for key in shared:
        ra, rb = ia[key], ib[key]
        ta, tb = float(ra.get("total_time", 0.0)), float(rb.get("total_time", 0.0))
        headline.append({
            "key": f"{key[0]}/{key[1]} total_time",
            "a": ta, "b": tb, "delta": tb - ta,
            "pct": (tb - ta) / ta if ta else None,
        })
        for dst, src in ((phases_a, ra), (phases_b, rb)):
            for cat, sec in (src.get("time") or {}).items():
                dst[cat] = dst.get(cat, 0.0) + float(sec)
        for dst, src in ((counters_a, ra), (counters_b, rb)):
            for cnt, val in (src.get("counters") or {}).items():
                dst[cnt] = dst.get(cnt, 0.0) + float(val)

    doc: Dict[str, Any] = {
        "explain": "runs",
        "a": _label(a),
        "b": _label(b),
        "shared_results": [f"{app}/{proto}" for app, proto in shared],
        "headline": headline,
        "phases": _delta_rows(phases_a, phases_b, top=top),
        "counters": _delta_rows(counters_a, counters_b, top=top),
    }
    spans_a, spans_b = _span_self_times(ct_a), _span_self_times(ct_b)
    if spans_a or spans_b:
        doc["spans"] = _delta_rows(spans_a, spans_b, top=top)
    return doc


def explain_history(
    ea: Mapping[str, Any],
    eb: Mapping[str, Any],
    top: int = 10,
) -> Dict[str, Any]:
    """Attribute the delta between two perf-trajectory entries."""
    headline: List[Dict[str, Any]] = []
    eps_a, eps_b = ea.get("sim_events_per_sec"), eb.get("sim_events_per_sec")
    if eps_a or eps_b:
        va, vb = float(eps_a or 0.0), float(eps_b or 0.0)
        headline.append({
            "key": "sim_events_per_sec", "a": va, "b": vb,
            "delta": vb - va, "pct": (vb - va) / va if va else None,
        })
    return {
        "explain": "history",
        "a": {"run_id": ea.get("ts", "?"), "git": ea.get("git_rev", "?")},
        "b": {"run_id": eb.get("ts", "?"), "git": eb.get("git_rev", "?")},
        "headline": headline,
        "kernels": _delta_rows(ea.get("kernels_ns_per_op") or {},
                               eb.get("kernels_ns_per_op") or {},
                               top=top, shared_only=True),
        "apps_wall_s": _delta_rows(ea.get("apps_wall_s") or {},
                                   eb.get("apps_wall_s") or {},
                                   top=top, shared_only=True),
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _fmt(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def _render_rows(title: str, rows: List[Dict[str, Any]],
                 unit: str = "") -> List[str]:
    if not rows:
        return []
    lines = [f"  {title}:"]
    width = max(len(str(r["key"])) for r in rows)
    for i, r in enumerate(rows, 1):
        pct = "" if r.get("pct") is None else f" ({r['pct']:+.1%})"
        share = f"  share {r['share']:.0%}" if "share" in r else ""
        sign = "+" if r["delta"] >= 0 else ""
        lines.append(
            f"    #{i} {str(r['key']):<{width}}  "
            f"{_fmt(r['a'])} -> {_fmt(r['b'])}{unit}  "
            f"{sign}{_fmt(r['delta'])}{pct}{share}"
        )
    return lines


def render_explain(doc: Dict[str, Any]) -> str:
    """Human-readable ranked attribution table."""
    a, b = doc["a"], doc["b"]
    lines = [f"explain: A={a.get('run_id')} ({a.get('git')})  "
             f"B={b.get('run_id')} ({b.get('git')})"]
    for r in doc.get("headline", []):
        pct = "" if r.get("pct") is None else f" ({r['pct']:+.1%})"
        lines.append(f"  {r['key']}: {_fmt(r['a'])} -> {_fmt(r['b'])}{pct}")
    if doc.get("explain") == "runs":
        if not doc.get("shared_results"):
            lines.append("  no (app, protocol) results in common -- "
                         "nothing to attribute")
        lines += _render_rows("phase attribution (virtual s)", doc.get("phases", []))
        lines += _render_rows("span self-time attribution (virtual s)",
                              doc.get("spans", []))
        lines += _render_rows("counter movements", doc.get("counters", []))
    else:
        lines += _render_rows("kernel ns/op", doc.get("kernels", []))
        lines += _render_rows("app wall time (s)", doc.get("apps_wall_s", []))
    if len(lines) == 1:
        lines.append("  no comparable metrics")
    return "\n".join(lines)
