"""Chrome trace-event / Perfetto JSON export of a recorded trace.

:func:`chrome_trace` turns a :class:`~repro.sim.trace.Tracer`'s spans
and message edges into the Trace Event Format that ``chrome://tracing``
and https://ui.perfetto.dev load directly:

* every closed span becomes one complete (``ph: "X"``) event, with
  ``pid`` = node, ``tid`` = strand, timestamps in microseconds of
  virtual time;
* every delivered message edge becomes a flow-event pair
  (``ph: "s"`` at the send, ``ph: "f"`` at the receive), drawn by the
  viewers as an arrow between the sender's and receiver's timelines;
* metadata events name each process ``node N`` and each thread after
  its strand, so the timeline reads like the paper's figures.

:func:`validate_chrome_trace` is the schema check CI's obs-smoke job
and the tests run over the emitted document.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["chrome_trace", "validate_chrome_trace", "write_chrome_trace"]

#: Stable thread ids per strand (new strands get ids after these).
STRAND_TIDS = {"main": 0, "server": 1, "disk": 2}


def _us(t: float) -> float:
    """Virtual seconds -> trace-event microseconds."""
    return t * 1e6


def chrome_trace(tracer: Any) -> Dict[str, Any]:
    """Build a Trace Event Format document from a recorded trace."""
    events: List[Dict[str, Any]] = []
    horizon = max((s.t1 for s in tracer.spans if s.t1 >= 0), default=0.0)

    nodes = sorted(
        {s.node for s in tracer.spans}
        | {e.src for e in tracer.edges}
        | {e.dst for e in tracer.edges}
    )
    strands_by_node: Dict[int, set] = {n: set() for n in nodes}
    for s in tracer.spans:
        strands_by_node[s.node].add(s.strand)

    tids = dict(STRAND_TIDS)
    for node in nodes:
        events.append({
            "ph": "M", "name": "process_name", "pid": node, "tid": 0,
            "args": {"name": f"node {node}"},
        })
        for strand in sorted(strands_by_node[node] | {"main"}):
            tid = tids.setdefault(strand, len(tids))
            events.append({
                "ph": "M", "name": "thread_name", "pid": node, "tid": tid,
                "args": {"name": strand},
            })

    for s in tracer.spans:
        end = s.t1 if s.t1 >= 0 else horizon
        event: Dict[str, Any] = {
            "name": s.name, "cat": s.cat, "ph": "X",
            "ts": _us(s.t0), "dur": max(0.0, _us(end) - _us(s.t0)),
            "pid": s.node, "tid": tids.setdefault(s.strand, len(tids)),
        }
        args = {"sid": s.sid, "parent": s.parent}
        if isinstance(s.detail, dict):
            args.update(s.detail)
        elif s.detail is not None:
            args["detail"] = s.detail
        event["args"] = args
        events.append(event)

    for e in tracer.edges:
        if e.t_recv < 0:
            continue  # dropped or still in flight: nothing to draw
        common = {"name": e.kind, "cat": "msg", "id": e.eid,
                  "args": {"size": e.size}}
        events.append({**common, "ph": "s", "ts": _us(e.t_send),
                       "pid": e.src, "tid": tids["main"]})
        events.append({**common, "ph": "f", "bp": "e", "ts": _us(e.t_recv),
                       "pid": e.dst, "tid": tids["server"]})

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": len(tracer.spans),
            "edges": len(tracer.edges),
            "events": len(tracer.events),
        },
    }


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a trace document; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a traceEvents list"]
    flow_starts: Dict[Any, int] = {}
    flow_ends: Dict[Any, int] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in {"X", "M", "s", "f", "B", "E", "i", "C"}:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        if ph in ("s", "f"):
            if "id" not in ev:
                problems.append(f"{where}: flow event needs an id")
            else:
                bucket = flow_starts if ph == "s" else flow_ends
                bucket[ev["id"]] = bucket.get(ev["id"], 0) + 1
    for eid in flow_starts:
        if eid not in flow_ends:
            problems.append(f"flow id {eid}: start without finish")
    for eid in flow_ends:
        if eid not in flow_starts:
            problems.append(f"flow id {eid}: finish without start")
    return problems


def write_chrome_trace(tracer: Any, path: str) -> Dict[str, Any]:
    """Export to ``path``; returns the document (already validated)."""
    doc = chrome_trace(tracer)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(f"invalid trace document: {problems[:3]}")
    with open(path, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return doc
