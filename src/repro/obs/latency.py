"""Streaming log-bucketed latency recording (HDR-histogram style).

:class:`LatencyRecorder` keeps a bounded-memory histogram of positive
durations with geometric buckets: each power of two is split into
:data:`SUBBUCKETS` linear sub-buckets, so any recorded quantile is
reported with a relative error of at most ``1 / (2 * SUBBUCKETS)``
(~3% at the default 16) regardless of the dynamic range.  That is the
HdrHistogram construction, reduced to what the simulator needs:

* ``observe()`` is one ``frexp`` plus a dict increment -- cheap enough
  to stay **always on** in the protocol hot paths (lock acquires,
  barriers, page fetches), with the wall-clock cost bounded by
  ``benchmarks/bench_obs_overhead.py``;
* recorders are **mergeable**: per-node recorders combine into cluster
  distributions without losing quantile accuracy (bucket counts add);
* snapshots are JSON-safe and round-trip, so run manifests can carry
  the full histogram, not just point percentiles.

Quantiles are *upper bounds* of the bucket holding the target rank,
clipped to the observed maximum -- the conservative convention used by
latency SLO tooling (a reported p99 is never below the true p99 by
more than one bucket width).

Durations here are **virtual seconds** (simulated time); recording them
costs zero virtual time, so tracing-off byte-identity is unaffected.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

__all__ = ["LatencyRecorder", "SUBBUCKETS", "QUANTILES"]

#: Linear sub-buckets per power of two.  16 bounds the relative
#: quantile error at 1/32 (~3.1%) with at most 16 * ~60 occupied
#: buckets across the nanosecond..hour range -- a few KB worst case.
SUBBUCKETS = 16

#: Exponent bias keeping bucket indices positive down to ~1e-38 s.
_EXP_BIAS = 128

#: The percentiles reports and manifests quote.
QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


class LatencyRecorder:
    """Bounded-memory latency histogram with mergeable buckets."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        #: Sparse bucket index -> observation count.
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    # -- recording (the hot path) --------------------------------------
    def observe(self, value: float) -> None:
        """Record one duration in seconds (negatives clamp to zero)."""
        if value > 0.0:
            # value = m * 2**e with m in [0.5, 1): the exponent picks the
            # octave, the mantissa the linear sub-bucket within it
            m, e = math.frexp(value)
            idx = ((e + _EXP_BIAS) << 4) + int((m - 0.5) * (2 * SUBBUCKETS))
        else:
            value = 0.0
            idx = 0
        buckets = self.buckets
        buckets[idx] = buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- querying ------------------------------------------------------
    @staticmethod
    def bucket_upper(idx: int) -> float:
        """Upper duration bound of bucket ``idx`` (0.0 for the zero bucket)."""
        if idx <= 0:
            return 0.0
        e = (idx >> 4) - _EXP_BIAS
        sub = idx & (SUBBUCKETS - 1)
        return math.ldexp(0.5 + (sub + 1) / (2.0 * SUBBUCKETS), e)

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 when empty)."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= target:
                return min(self.bucket_upper(idx), self.max)
        return self.max  # pragma: no cover - ranks always land in a bucket

    @property
    def mean(self) -> float:
        """Exact arithmetic mean (totals are tracked outside buckets)."""
        return self.total / self.count if self.count else 0.0

    def percentiles(self) -> Dict[str, float]:
        """The headline summary reports and manifests embed."""
        out: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }
        for name, q in QUANTILES:
            out[name] = self.quantile(q)
        return out

    # -- merging and (de)serialisation ---------------------------------
    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Accumulate another recorder into this one; returns self."""
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    @classmethod
    def merged(cls, recorders: Iterable["LatencyRecorder"]) -> "LatencyRecorder":
        """A fresh recorder holding the union of ``recorders``."""
        out = cls()
        for rec in recorders:
            out.merge(rec)
        return out

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump carrying the full histogram."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "buckets": {str(idx): n for idx, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_snapshot(cls, doc: Dict[str, object]) -> "LatencyRecorder":
        """Rebuild a recorder from :meth:`snapshot` output."""
        rec = cls()
        rec.count = int(doc.get("count", 0))
        rec.total = float(doc.get("total", 0.0))
        if rec.count:
            rec.min = float(doc.get("min", 0.0))
            rec.max = float(doc.get("max", 0.0))
        rec.buckets = {
            int(idx): int(n)
            for idx, n in dict(doc.get("buckets", {})).items()  # type: ignore[arg-type]
        }
        return rec

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencyRecorder(count={self.count}, mean={self.mean:.3g}, "
                f"p99={self.quantile(0.99):.3g})")
