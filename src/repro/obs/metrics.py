"""Typed metrics registry with Prometheus text rendering.

:class:`MetricsRegistry` subsumes the ad-hoc :class:`~repro.sim.stats.Counter`
tallies scattered across the protocol layers with three typed metric
kinds:

* **counter** -- monotone totals (``repro_page_faults_total``);
* **gauge** -- point-in-time values (``repro_run_time_seconds``);
* **histogram** -- bucketed distributions (span durations).

:meth:`MetricsRegistry.from_run` snapshots one finished
:class:`~repro.dsm.system.RunResult` (plus, optionally, its trace) into
a registry; :meth:`MetricsRegistry.render_prometheus` emits the
standard text exposition format and :meth:`MetricsRegistry.snapshot` a
JSON-safe dict for the run manifest.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["MetricsRegistry", "DEFAULT_BUCKETS"]

#: Histogram bucket bounds for virtual-second durations (sim times are
#: micro- to milli-second scale at the paper's parameters).
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and line feed are the three characters the
    format requires escaping inside label values.
    """
    return (value.replace("\\", r"\\")
                 .replace('"', r"\"")
                 .replace("\n", r"\n"))


def _fmt_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


class _Metric:
    """One named metric family (all label combinations)."""

    def __init__(self, name: str, mtype: str, help_text: str,
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.mtype = mtype
        self.help = help_text
        self.buckets = tuple(buckets) if buckets else None
        #: scalar metrics: labels -> value;
        #: histograms: labels -> [counts per bucket + inf, sum, count]
        self.samples: Dict[LabelKey, Any] = {}


class MetricsRegistry:
    """A typed collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # -- recording -----------------------------------------------------
    def _family(self, name: str, mtype: str, help_text: str,
                buckets: Optional[Sequence[float]] = None) -> _Metric:
        m = self._metrics.get(name)
        if m is None:
            m = _Metric(name, mtype, help_text, buckets)
            self._metrics[name] = m
        elif m.mtype != mtype:
            raise ValueError(
                f"metric {name!r} is a {m.mtype}, re-registered as {mtype}"
            )
        return m

    def counter(self, name: str, value: float = 1.0, help_text: str = "",
                **labels: Any) -> None:
        """Add ``value`` to a monotone counter."""
        m = self._family(name, "counter", help_text)
        key = _label_key(labels)
        m.samples[key] = m.samples.get(key, 0.0) + value

    def gauge(self, name: str, value: float, help_text: str = "",
              **labels: Any) -> None:
        """Set a gauge to ``value``."""
        m = self._family(name, "gauge", help_text)
        m.samples[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, help_text: str = "",
                buckets: Sequence[float] = DEFAULT_BUCKETS,
                **labels: Any) -> None:
        """Record one observation into a histogram."""
        m = self._family(name, "histogram", help_text, buckets)
        key = _label_key(labels)
        state = m.samples.get(key)
        if state is None:
            state = {"buckets": [0] * (len(m.buckets) + 1),
                     "sum": 0.0, "count": 0}
            m.samples[key] = state
        for i, bound in enumerate(m.buckets):
            if value <= bound:
                state["buckets"][i] += 1
        state["buckets"][-1] += 1  # +Inf
        state["sum"] += value
        state["count"] += 1

    def get(self, name: str, **labels: Any) -> Any:
        """Current value of one sample (None when absent)."""
        m = self._metrics.get(name)
        if m is None:
            return None
        return m.samples.get(_label_key(labels))

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export --------------------------------------------------------
    def render_prometheus(self) -> str:
        """Standard Prometheus text exposition of every metric."""
        out: List[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.help:
                out.append(f"# HELP {name} {m.help}")
            out.append(f"# TYPE {name} {m.mtype}")
            for key in sorted(m.samples):
                if m.mtype != "histogram":
                    out.append(f"{name}{_fmt_labels(key)} {m.samples[key]:g}")
                    continue
                state = m.samples[key]
                assert m.buckets is not None
                for i, bound in enumerate(m.buckets):
                    le = _fmt_labels(key, [("le", f"{bound:g}")])
                    out.append(f"{name}_bucket{le} {state['buckets'][i]}")
                inf = _fmt_labels(key, [("le", "+Inf")])
                out.append(f"{name}_bucket{inf} {state['buckets'][-1]}")
                out.append(f"{name}_sum{_fmt_labels(key)} {state['sum']:g}")
                out.append(f"{name}_count{_fmt_labels(key)} {state['count']}")
        return "\n".join(out) + ("\n" if out else "")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump (type, help, and every labelled sample)."""
        doc: Dict[str, Any] = {}
        for name, m in sorted(self._metrics.items()):
            doc[name] = {
                "type": m.mtype,
                "help": m.help,
                "samples": [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(m.samples.items())
                ],
            }
            if m.buckets is not None:
                doc[name]["buckets"] = list(m.buckets)
        return doc

    # -- construction from a finished run ------------------------------
    @classmethod
    def from_run(cls, result: Any, tracer: Any = None) -> "MetricsRegistry":
        """Snapshot a :class:`~repro.dsm.system.RunResult` (and trace).

        Subsumes the per-node ``Counter`` tallies and ``TimeBreakdown``
        buckets under typed, labelled metric families; with a trace,
        adds span-duration histograms per category.
        """
        reg = cls()
        reg.gauge("repro_run_time_seconds", result.total_time,
                  help_text="virtual wall time of the run",
                  app=result.app_name, protocol=result.protocol)
        reg.gauge("repro_run_completed", 1.0 if result.completed else 0.0,
                  help_text="1 when the run finished, 0 when it stalled")
        for kind, nbytes in sorted(result.bytes_by_kind.items()):
            reg.counter("repro_network_bytes_total", nbytes,
                        help_text="wire bytes sent, by message kind",
                        kind=kind)
        reg.counter("repro_network_messages_total", result.network_msgs,
                    help_text="messages sent across all nodes")
        for stats in result.node_stats:
            for key, value in sorted(stats.counters.items()):
                reg.counter(f"repro_{key}_total", value,
                            help_text="protocol event counter",
                            node=stats.node_id)
            for cat in stats.time:
                reg.counter("repro_time_seconds_total", stats.time.get(cat),
                            help_text="virtual seconds by breakdown bucket",
                            node=stats.node_id, category=cat)
        for op, rec in sorted(getattr(result.aggregate, "latency", {}).items()):
            for stat, value in rec.percentiles().items():
                reg.gauge("repro_op_latency_seconds", value,
                          help_text="per-operation latency distribution "
                                    "(streaming log-bucketed recorder)",
                          op=op, stat=stat)
        live = reclaimed = 0.0
        mode_bytes = {"ml": 0.0, "ccl": 0.0}
        mode_switches = 0.0
        for summary in result.log_summaries:
            for key, value in sorted(summary.items()):
                if isinstance(value, (int, float)):
                    reg.counter(f"repro_log_{key}_total", value,
                                help_text="stable-log statistic")
            live += summary.get("live_log_bytes", 0)
            reclaimed += summary.get("reclaimed_bytes", 0)
            mode_switches += summary.get("mode_switches", 0)
            for mode in mode_bytes:
                mode_bytes[mode] += summary.get(f"{mode}_mode_bytes", 0)
        if mode_switches or any(mode_bytes.values()):
            # adaptive hybrid logging: how the log volume split between
            # the two modes, and how often the cost model flipped
            reg.counter("repro_log_mode_switches", mode_switches,
                        help_text="adaptive logging mode switches across "
                                  "all nodes")
            for mode, nbytes in sorted(mode_bytes.items()):
                reg.gauge("repro_log_mode_bytes", nbytes,
                          help_text="log bytes appended while the adaptive "
                                    "protocol ran in each mode",
                          mode=mode)
        reg.gauge("repro_log_live_bytes", live,
                  help_text="on-disk log bytes not yet reclaimed by "
                            "checkpoint-driven truncation")
        reg.gauge("repro_log_reclaimed_bytes", reclaimed,
                  help_text="log bytes reclaimed by checkpoint-driven "
                            "truncation")
        for disk in getattr(result, "disk_stats", None) or []:
            for kind, samples in sorted(disk.get("op_latencies", {}).items()):
                for value in samples:
                    reg.observe("repro_disk_op_latency_seconds", value,
                                help_text="disk op latency (queueing + "
                                          "service) by kind",
                                kind=kind, disk=disk.get("name", "disk"))
        if getattr(result, "replication", 1) > 1:
            # quorum-replicated homes: promotion counts and the latency
            # from mirror send to quorum ack, per primary
            for stats in getattr(result, "replication_stats", None) or []:
                node = stats.get("node")
                reg.counter("repro_replication_failovers_total",
                            stats.get("failovers", 0),
                            help_text="replica promotions applied onto "
                                      "this node (it became a primary)",
                            node=node)
                reg.counter("repro_replication_mirror_bytes_total",
                            stats.get("mirror_bytes", 0),
                            help_text="wire bytes of sealed home-state "
                                      "mirrors pushed to followers",
                            node=node)
                for wait in stats.get("quorum_waits", ()):
                    reg.observe("repro_replication_quorum_latency_seconds",
                                wait,
                                help_text="mirror send to quorum ack, one "
                                          "observation per sealed interval",
                                node=node)
        zones = getattr(result, "zones", None)
        if zones is not None:
            dead = set(getattr(result, "dead_nodes", ()) or ())
            for zone in sorted(set(zones)):
                alive = any(
                    n not in dead
                    for n, z in enumerate(zones) if z == zone
                )
                reg.gauge("repro_zone_alive", 1.0 if alive else 0.0,
                          help_text="1 when at least one node in the fault "
                                    "domain survived the run",
                          zone=zone)
        if tracer is not None:
            reg.gauge("repro_trace_events", len(tracer.events),
                      help_text="recorded point events")
            reg.gauge("repro_trace_spans", len(tracer.spans),
                      help_text="recorded causal spans")
            reg.gauge("repro_trace_edges", len(tracer.edges),
                      help_text="recorded message edges")
            for span in tracer.spans:
                if span.t1 >= 0:
                    reg.observe("repro_span_duration_seconds", span.duration,
                                help_text="span durations by category",
                                cat=span.cat)
        return reg
