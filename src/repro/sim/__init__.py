"""Discrete-event simulation substrate.

This package provides the deterministic virtual-time engine on which the
DSM cluster runs: coroutine-style simulated processes
(:mod:`repro.sim.process`), one-shot signals and timeouts
(:mod:`repro.sim.events`), FIFO resources and mailboxes
(:mod:`repro.sim.resources`), plus network and disk models and
statistics collection.
"""

from .engine import PendingChoice, Simulator
from .events import AllOf, Signal, Timeout
from .process import SimProcess
from .resources import FifoServer, Mailbox
from .faults import DiskFaultPlan, DiskFaults, FaultPlan, LinkFaults
from .network import DeliveryLabel, Network, NetMessage
from .disk import Disk
from .stats import Counter, NodeStats, TimeBreakdown

__all__ = [
    "Simulator",
    "PendingChoice",
    "DeliveryLabel",
    "Signal",
    "Timeout",
    "AllOf",
    "SimProcess",
    "FifoServer",
    "Mailbox",
    "FaultPlan",
    "LinkFaults",
    "DiskFaults",
    "DiskFaultPlan",
    "Network",
    "NetMessage",
    "Disk",
    "Counter",
    "NodeStats",
    "TimeBreakdown",
]
