"""Local-disk (stable storage) model.

Each node owns one :class:`Disk`.  Operations queue FIFO and cost a
fixed access latency plus a bandwidth-proportional transfer, per
:class:`~repro.config.DiskConfig`.  Writes may be issued asynchronously
-- the caller receives a completion :class:`~repro.sim.events.Signal`
and chooses whether to wait -- which is exactly the hook coherence-
centric logging exploits to overlap its flush with the diff round trip.

Zero-byte operations complete immediately without queueing: there is no
data to persist or fetch, so charging access latency would bill callers
for I/O that never happens.  Per-operation latencies (queueing plus
service) are recorded per kind for the obs metrics registry.

The disk itself never fails; imperfect stable storage (torn tails,
transient write errors, bit rot) is modelled by the
:class:`~repro.sim.faults.DiskFaultPlan` a harness may attach as
``disk.fault_plan``, which the flush path in
:class:`~repro.core.stablelog.StableLog` consults.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import DiskConfig
from ..errors import SimulationError
from .engine import Simulator
from .events import Signal
from .resources import FifoServer

__all__ = ["Disk"]


class Disk:
    """One node's local disk with FIFO service and I/O statistics."""

    def __init__(self, sim: Simulator, config: DiskConfig, name: str = "disk"):
        self.sim = sim
        self.config = config
        self.name = name
        self._server = FifoServer(sim, name)
        self.bytes_written = 0
        self.bytes_read = 0
        self.num_writes = 0
        self.num_reads = 0
        #: Completed-op latencies (queueing + service, seconds) by kind.
        self.op_latencies: Dict[str, List[float]] = {}
        #: Optional :class:`~repro.sim.faults.DiskFaultPlan`, attached by
        #: the harness; consulted by the StableLog flush path, not here.
        self.fault_plan = None

    def _issue(self, kind: str, service_time: float) -> Signal:
        t0 = self.sim.now
        sig = self._server.request(service_time)
        sig.add_callback(
            lambda _v: self.op_latencies.setdefault(kind, [])
            .append(self.sim.now - t0)
        )
        return sig

    def _immediate(self, kind: str) -> Signal:
        """Zero-byte fast path: complete now, skip the FIFO queue."""
        sig = Signal(f"{self.name}.{kind}0")
        sig.trigger(self.sim.now)
        self.op_latencies.setdefault(kind, []).append(0.0)
        return sig

    def write(self, nbytes: int) -> Signal:
        """Issue a write of ``nbytes``; returns its completion signal."""
        if nbytes < 0:
            raise SimulationError(f"negative write size: {nbytes}")
        self.num_writes += 1
        if nbytes == 0:
            return self._immediate("write")
        self.bytes_written += nbytes
        return self._issue("write", self.config.write_time(nbytes))

    def read(self, nbytes: int) -> Signal:
        """Issue a cold random read; returns its completion signal."""
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        self.num_reads += 1
        if nbytes == 0:
            return self._immediate("read")
        self.bytes_read += nbytes
        return self._issue("read", self.config.read_time(nbytes))

    def read_seq(self, nbytes: int) -> Signal:
        """Issue a sequential-scan read (recovery log consumption)."""
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        self.num_reads += 1
        if nbytes == 0:
            return self._immediate("read_seq")
        self.bytes_read += nbytes
        return self._issue("read_seq", self.config.seq_read_time(nbytes))

    def read_cached(self, nbytes: int) -> Signal:
        """Issue a buffer-cache-warm read (survivor log service)."""
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        self.num_reads += 1
        if nbytes == 0:
            return self._immediate("read_cached")
        self.bytes_read += nbytes
        return self._issue("read_cached", self.config.cached_read_time(nbytes))

    @property
    def busy_time(self) -> float:
        """Total seconds the disk has spent (or is committed to spend) busy."""
        return self._server.busy_time

    def summary(self) -> Dict[str, object]:
        """I/O statistics plus per-kind latency samples (obs metrics)."""
        return {
            "name": self.name,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "num_writes": self.num_writes,
            "num_reads": self.num_reads,
            "busy_time": self.busy_time,
            "op_latencies": {k: list(v) for k, v in self.op_latencies.items()},
        }
