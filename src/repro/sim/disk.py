"""Local-disk (stable storage) model.

Each node owns one :class:`Disk`.  Operations queue FIFO and cost a
fixed access latency plus a bandwidth-proportional transfer, per
:class:`~repro.config.DiskConfig`.  Writes may be issued asynchronously
-- the caller receives a completion :class:`~repro.sim.events.Signal`
and chooses whether to wait -- which is exactly the hook coherence-
centric logging exploits to overlap its flush with the diff round trip.
"""

from __future__ import annotations

from ..config import DiskConfig
from ..errors import SimulationError
from .engine import Simulator
from .events import Signal
from .resources import FifoServer

__all__ = ["Disk"]


class Disk:
    """One node's local disk with FIFO service and I/O statistics."""

    def __init__(self, sim: Simulator, config: DiskConfig, name: str = "disk"):
        self.sim = sim
        self.config = config
        self.name = name
        self._server = FifoServer(sim, name)
        self.bytes_written = 0
        self.bytes_read = 0
        self.num_writes = 0
        self.num_reads = 0

    def write(self, nbytes: int) -> Signal:
        """Issue a write of ``nbytes``; returns its completion signal."""
        if nbytes < 0:
            raise SimulationError(f"negative write size: {nbytes}")
        self.bytes_written += nbytes
        self.num_writes += 1
        return self._server.request(self.config.write_time(nbytes))

    def read(self, nbytes: int) -> Signal:
        """Issue a cold random read; returns its completion signal."""
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        self.bytes_read += nbytes
        self.num_reads += 1
        return self._server.request(self.config.read_time(nbytes))

    def read_seq(self, nbytes: int) -> Signal:
        """Issue a sequential-scan read (recovery log consumption)."""
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        self.bytes_read += nbytes
        self.num_reads += 1
        return self._server.request(self.config.seq_read_time(nbytes))

    def read_cached(self, nbytes: int) -> Signal:
        """Issue a buffer-cache-warm read (survivor log service)."""
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        self.bytes_read += nbytes
        self.num_reads += 1
        return self._server.request(self.config.cached_read_time(nbytes))

    @property
    def busy_time(self) -> float:
        """Total seconds the disk has spent (or is committed to spend) busy."""
        return self._server.busy_time
