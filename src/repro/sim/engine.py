"""The discrete-event simulation core.

:class:`Simulator` owns the virtual clock and a binary-heap event queue.
Events at equal timestamps execute in scheduling order (a monotone
sequence number breaks ties), which makes every simulation fully
deterministic -- a property the recovery tests rely on, since message
logging assumes piecewise-deterministic execution.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError
from .process import SimProcess

__all__ = ["PendingChoice", "Simulator"]


class PendingChoice:
    """A labelled event held back for a controlled scheduler.

    When a :class:`Simulator` runs under a ``choice_fn`` (see
    :meth:`Simulator.run`), events scheduled through
    :meth:`Simulator.schedule_labeled` are parked here instead of the
    heap.  The label identifies the event to the scheduler (the model
    checker keys on it for partial-order reduction); ``time`` is the
    instant the event would have fired under the default policy.
    """

    __slots__ = ("label", "time", "seq", "fn")

    def __init__(
        self, label: Any, time: float, seq: int, fn: Callable[[], None]
    ):
        self.label = label
        self.time = time
        self.seq = seq
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PendingChoice({self.label!r} @ {self.time:.6f})"


class Simulator:
    """Deterministic discrete-event simulator with coroutine processes.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator(), name="worker")
        sim.run()                 # drain all events
        assert proc.finished

    The engine itself knows nothing about networks or disks; those are
    layered on top via :class:`~repro.sim.events.Signal` and
    :class:`~repro.sim.resources.FifoServer`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processes: List[SimProcess] = []
        self._running = False
        #: Controlled-scheduler hook.  When set, labelled events (see
        #: :meth:`schedule_labeled`) are *not* heap-ordered; instead,
        #: whenever the heap drains, ``choice_fn(pending)`` picks which
        #: labelled event fires next (``None`` stops the run).  The model
        #: checker uses this to enumerate delivery interleavings.
        self.choice_fn: Optional[
            Callable[[List[PendingChoice]], Optional[PendingChoice]]
        ] = None
        self._choices: List[PendingChoice] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def schedule_labeled(
        self, delay: float, fn: Callable[[], None], label: Any
    ) -> None:
        """Schedule ``fn`` as a *choice point* when under a controlled
        scheduler; identical to :meth:`schedule` otherwise.

        The label carries whatever identity the scheduler needs (the
        network uses a :class:`~repro.sim.network.DeliveryLabel`).
        """
        if self.choice_fn is None:
            self.schedule(delay, fn)
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        self._choices.append(
            PendingChoice(label, self.now + delay, self._seq, fn)
        )

    def spawn(
        self, gen: Generator[Any, Any, Any], name: str = "proc"
    ) -> SimProcess:
        """Register a generator as a simulated process and start it.

        The first step of the process executes at the current virtual
        time (via a zero-delay event), so spawning during a run is safe.
        """
        proc = SimProcess(self, gen, name=name)
        self._processes.append(proc)
        self.schedule(0.0, proc.start)
        return proc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self, until: Optional[float] = None, detect_deadlock: bool = True
    ) -> float:
        """Drain the event queue; return the final virtual time.

        If ``until`` is given, stop once the clock would pass it (the
        event that lies beyond ``until`` stays queued).  When the queue
        drains while spawned processes are still alive and
        ``detect_deadlock`` is set, a :class:`DeadlockError` is raised
        naming the blocked processes -- the usual symptom of a protocol
        bug such as a barrier that never releases.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            while True:
                while self._heap:
                    t, _seq, fn = self._heap[0]
                    if until is not None and t > until:
                        self.now = until
                        return self.now
                    heapq.heappop(self._heap)
                    if t < self.now:  # pragma: no cover - guarded by schedule()
                        raise SimulationError("time went backwards")
                    self.now = t
                    fn()
                # Heap drained: consult the controlled scheduler, if any.
                # Only when every eager (unlabelled) event has executed is
                # a labelled event picked -- so each choice point sees the
                # system quiescent except for held-back deliveries.
                if self.choice_fn is None or not self._choices:
                    break
                chosen = self.choice_fn(list(self._choices))
                if chosen is None:
                    break
                self._choices.remove(chosen)
                # The clock may already have run past the event's natural
                # firing time (an earlier choice delayed it); deliveries
                # commute with the events in between, so clamping forward
                # preserves causality.
                if chosen.time > self.now:
                    self.now = chosen.time
                chosen.fn()
        finally:
            self._running = False
        if detect_deadlock:
            blocked = [p.name for p in self._processes if p.alive]
            if blocked:
                raise DeadlockError(blocked)
        return self.now

    @property
    def live_processes(self) -> List[SimProcess]:
        """Processes that have neither finished nor been killed."""
        return [p for p in self._processes if p.alive]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={len(self._heap)}>"
