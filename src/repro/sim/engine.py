"""The discrete-event simulation core.

:class:`Simulator` owns the virtual clock and a *calendar-bucket* event
queue: every pending event lives in the list (bucket) of its exact
firing timestamp, buckets are ordered by a binary heap holding one
entry per **distinct** time, and the earliest bucket is cached in a
dedicated slot so the common serial case (one event in flight) never
touches the dict or the heap at all.  Events at equal timestamps
execute in scheduling order -- buckets are appended in call order, and
the monotone heap of distinct times orders everything else -- which
makes every simulation fully deterministic: a property the recovery
tests rely on, since message logging assumes piecewise-deterministic
execution.  The firing order is *identical* to the classic
``(time, seq)`` binary heap this engine replaced (a property test pins
the equivalence against a reference heap scheduler).

Three further mechanics keep the per-event cost low:

* **batched same-timestamp dispatch** -- the run loop pops one bucket
  and drains it by index; events scheduled *at the current time* while
  the batch runs (process resumes, zero-delay follow-ups) are plain
  list appends onto the active batch, with no heap traffic;
* **a bucket freelist** -- drained bucket lists are recycled through a
  small pool instead of being reallocated per timestamp;
* **inlined process stepping** -- :class:`~repro.sim.process.SimProcess`
  instances are queued directly (no per-step closure) and the engine
  steps their generators in the drain loop, dispatching on the yielded
  request type without an intermediate call frame.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import DeadlockError, ProcessKilled, SimulationError
from .events import AllOf, Signal, Timeout
from .process import SimProcess

__all__ = ["PendingChoice", "Simulator"]

#: Retained drained-bucket lists (the slab/freelist); small, since the
#: working set is the number of *distinct* pending timestamps.
_POOL_MAX = 64


class PendingChoice:
    """A labelled event held back for a controlled scheduler.

    When a :class:`Simulator` runs under a ``choice_fn`` (see
    :meth:`Simulator.run`), events scheduled through
    :meth:`Simulator.schedule_labeled` are parked here instead of the
    event queue.  The label identifies the event to the scheduler (the
    model checker keys on it for partial-order reduction); ``time`` is
    the instant the event would have fired under the default policy.
    """

    __slots__ = ("label", "time", "seq", "fn")

    def __init__(
        self, label: Any, time: float, seq: int, fn: Callable[[], None]
    ):
        self.label = label
        self.time = time
        self.seq = seq
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PendingChoice({self.label!r} @ {self.time:.6f})"


class Simulator:
    """Deterministic discrete-event simulator with coroutine processes.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator(), name="worker")
        sim.run()                 # drain all events
        assert proc.finished

    The engine itself knows nothing about networks or disks; those are
    layered on top via :class:`~repro.sim.events.Signal` and
    :class:`~repro.sim.resources.FifoServer`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq = 0
        # earliest pending bucket, cached outside the dict/heap: the
        # serial-chain fast path schedules into and drains out of this
        # slot alone
        self._t0: Optional[float] = None
        self._b0: Optional[List[Any]] = None
        #: Heap of further distinct pending times (one entry per time).
        self._times: List[float] = []
        #: time -> event list, for every time in ``_times``.
        self._buckets: Dict[float, List[Any]] = {}
        #: Bucket being drained; same-time schedules append here.
        self._active: Optional[List[Any]] = None
        #: Recycled bucket lists.
        self._pool: List[List[Any]] = []
        self._processes: List[SimProcess] = []
        self._running = False
        #: Controlled-scheduler hook.  When set, labelled events (see
        #: :meth:`schedule_labeled`) are *not* queue-ordered; instead,
        #: whenever the queue drains, ``choice_fn(pending)`` picks which
        #: labelled event fires next (``None`` stops the run).  The model
        #: checker uses this to enumerate delivery interleavings.
        self.choice_fn: Optional[
            Callable[[List[PendingChoice]], Optional[PendingChoice]]
        ] = None
        self._choices: List[PendingChoice] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Any) -> None:
        """Run ``fn`` after ``delay`` seconds of virtual time.

        ``fn`` is a zero-argument callable -- or, internally, a
        :class:`~repro.sim.process.SimProcess` to step (the engine
        queues processes directly to avoid a closure per step).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        now = self.now
        t = now + delay
        if t == now:
            act = self._active
            if act is not None:
                act.append(fn)
                return
        t0 = self._t0
        if t0 is None:
            # an older bucket at exactly t may already live in the dict
            # tier (scheduled while the slot held an earlier time);
            # append there or newer events would fire first
            b = self._buckets.get(t) if self._times else None
            if b is not None:
                b.append(fn)
                return
            self._t0 = t
            pool = self._pool
            if pool:
                b = pool.pop()
                b.append(fn)
                self._b0 = b
            else:
                self._b0 = [fn]
        elif t == t0:
            self._b0.append(fn)  # type: ignore[union-attr]
        elif t > t0:
            b = self._buckets.get(t)
            if b is None:
                self._buckets[t] = [fn]
                heapq.heappush(self._times, t)
            else:
                b.append(fn)
        else:
            self._demote_front()
            b = self._buckets.get(t) if self._times else None
            if b is not None:
                b.append(fn)
                return
            self._t0 = t
            self._b0 = [fn]

    def _demote_front(self) -> None:
        """Move the cached earliest bucket into the dict/heap tier.

        An existing bucket at the same time always predates the cached
        one (times re-enter the front slot only after their dict entry
        was drained), so dict-first extend order preserves scheduling
        order.
        """
        t0 = self._t0
        b0 = self._b0
        assert t0 is not None and b0 is not None
        ex = self._buckets.get(t0)
        if ex is None:
            self._buckets[t0] = b0
            heapq.heappush(self._times, t0)
        else:  # pragma: no cover - unreachable by invariant, kept safe
            ex.extend(b0)
        self._t0 = None
        self._b0 = None

    def _requeue_front(self, t: float, b: List[Any]) -> None:
        """Reattach an undrained bucket so its events fire first at ``t``.

        Used when ``run(until=...)`` stops short of the bucket and when
        an event raises mid-batch (the unexecuted tail survives, as it
        did in the heap engine).
        """
        t0 = self._t0
        if t0 is None:
            self._t0 = t
            self._b0 = b
        elif t == t0:  # pragma: no cover - unreachable by invariant
            b.extend(self._b0)  # type: ignore[arg-type]
            self._b0 = b
        elif t < t0:
            self._demote_front()
            self._t0 = t
            self._b0 = b
        else:  # pragma: no cover - unreachable by invariant
            ex = self._buckets.get(t)
            if ex is None:
                self._buckets[t] = b
                heapq.heappush(self._times, t)
            else:
                ex[:0] = b

    def schedule_labeled(
        self, delay: float, fn: Callable[[], None], label: Any
    ) -> None:
        """Schedule ``fn`` as a *choice point* when under a controlled
        scheduler; identical to :meth:`schedule` otherwise.

        The label carries whatever identity the scheduler needs (the
        network uses a :class:`~repro.sim.network.DeliveryLabel`).
        """
        if self.choice_fn is None:
            self.schedule(delay, fn)
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        self._choices.append(
            PendingChoice(label, self.now + delay, self._seq, fn)
        )

    def spawn(
        self, gen: Generator[Any, Any, Any], name: str = "proc"
    ) -> SimProcess:
        """Register a generator as a simulated process and start it.

        The first step of the process executes at the current virtual
        time (via a zero-delay event), so spawning during a run is safe.
        """
        proc = SimProcess(self, gen, name=name)
        self._processes.append(proc)
        self.schedule(0.0, proc)
        return proc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self, until: Optional[float] = None, detect_deadlock: bool = True
    ) -> float:
        """Drain the event queue; return the final virtual time.

        If ``until`` is given, stop once the clock would pass it (the
        event that lies beyond ``until`` stays queued).  When the queue
        drains while spawned processes are still alive and
        ``detect_deadlock`` is set, a :class:`DeadlockError` is raised
        naming the blocked processes -- the usual symptom of a protocol
        bug such as a barrier that never releases.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            heappush = heapq.heappush
            heappop = heapq.heappop
            times = self._times
            buckets = self._buckets
            pool = self._pool
            simprocess = SimProcess
            timeout_cls = Timeout
            while True:
                # -- pick the earliest bucket ---------------------------
                t0 = self._t0
                if t0 is not None and (not times or t0 <= times[0]):
                    t = t0
                    b = self._b0
                    self._t0 = None
                    self._b0 = None
                elif times:
                    t = heappop(times)
                    b = buckets.pop(t)
                else:
                    # Queue drained: consult the controlled scheduler, if
                    # any.  Only when every eager (unlabelled) event has
                    # executed is a labelled event picked -- so each
                    # choice point sees the system quiescent except for
                    # held-back deliveries.
                    if self.choice_fn is None or not self._choices:
                        break
                    chosen = self.choice_fn(list(self._choices))
                    if chosen is None:
                        break
                    self._choices.remove(chosen)
                    # The clock may already have run past the event's
                    # natural firing time (an earlier choice delayed it);
                    # deliveries commute with the events in between, so
                    # clamping forward preserves causality.
                    if chosen.time > self.now:
                        self.now = chosen.time
                    chosen.fn()
                    continue
                assert b is not None
                if until is not None and t > until:
                    self._requeue_front(t, b)
                    self.now = until
                    return until
                self.now = t
                # -- batched same-timestamp dispatch --------------------
                self._active = b
                i = 0
                try:
                    while i < len(b):
                        e = b[i]
                        i += 1
                        if e.__class__ is not simprocess:
                            e()
                            continue
                        # ---- inlined SimProcess step (hot path; the
                        # cold-path twin is SimProcess._step/_wait_on,
                        # keep them in sync) ----
                        if e.killed or e.finished:
                            continue
                        e._started = True
                        v = e._value
                        if v is not None:
                            e._value = None
                        while True:
                            try:
                                req = e.gen.send(v)
                            except StopIteration as stop:
                                e.finished = True
                                e.result = stop.value
                                e.done.trigger(stop.value)
                                break
                            except ProcessKilled:
                                e.killed = True
                                break
                            except Exception as exc:
                                e.finished = True
                                e.error = exc
                                raise SimulationError(
                                    f"simulated process {e.name!r} raised "
                                    f"{exc!r}"
                                ) from exc
                            rc = req.__class__
                            if rc is float:
                                delay = req
                            elif rc is timeout_cls:
                                delay = req.delay
                            elif isinstance(req, Signal):
                                if req.triggered:
                                    e._value = req.value
                                    b.append(e)
                                else:
                                    e._waiting_on = req
                                    req._callbacks.append(e._resume_cb)
                                break
                            elif isinstance(req, AllOf):
                                sig = req.as_signal()
                                if sig.triggered:
                                    e._value = sig.value
                                    b.append(e)
                                else:
                                    e._waiting_on = sig
                                    sig._callbacks.append(e._resume_cb)
                                break
                            elif isinstance(req, simprocess):
                                sig = req.done
                                if sig.triggered:
                                    e._value = sig.value
                                    b.append(e)
                                else:
                                    e._waiting_on = sig
                                    sig._callbacks.append(e._resume_cb)
                                break
                            elif isinstance(req, Timeout):
                                delay = req.delay
                            elif isinstance(req, (float, int)) and rc is not bool:
                                # float subclasses (np.float64) and ints
                                delay = float(req)
                            else:
                                raise SimulationError(
                                    f"process {e.name!r} yielded "
                                    f"unsupported request {req!r}"
                                )
                            # -- timeout request --------------------------
                            if delay < 0:
                                raise SimulationError(
                                    f"negative timeout: {delay}"
                                )
                            t2 = t + delay
                            if t2 == t:
                                b.append(e)
                                break
                            if (
                                i == len(b)
                                and self._t0 is None
                                and (not times or t2 < times[0])
                                and (until is None or t2 <= until)
                            ):
                                # serial spin: this process is the only
                                # runnable work and its timeout is the
                                # earliest pending instant -- advance the
                                # clock and step it again with no queue
                                # traffic at all
                                self.now = t = t2
                                v = None
                                continue
                            t0 = self._t0
                            if t0 is None:
                                nb = buckets.get(t2) if times else None
                                if nb is not None:
                                    nb.append(e)
                                    break
                                self._t0 = t2
                                if pool:
                                    nb = pool.pop()
                                    nb.append(e)
                                    self._b0 = nb
                                else:
                                    self._b0 = [e]
                            elif t2 == t0:
                                self._b0.append(e)  # type: ignore[union-attr]
                            elif t2 > t0:
                                nb = buckets.get(t2)
                                if nb is None:
                                    buckets[t2] = [e]
                                    heappush(times, t2)
                                else:
                                    nb.append(e)
                            else:
                                self._demote_front()
                                nb = buckets.get(t2) if times else None
                                if nb is not None:
                                    nb.append(e)
                                    break
                                self._t0 = t2
                                self._b0 = [e]
                            break
                finally:
                    self._active = None
                    if i < len(b):
                        # an event raised: keep the unexecuted tail
                        # queued, exactly as the heap engine did
                        self._requeue_front(t, b[i:])
                del b[:]
                if len(pool) < _POOL_MAX:
                    pool.append(b)
        finally:
            self._running = False
        if detect_deadlock:
            blocked = [p.name for p in self._processes if p.alive]
            if blocked:
                raise DeadlockError(blocked)
        return self.now

    @property
    def live_processes(self) -> List[SimProcess]:
        """Processes that have neither finished nor been killed."""
        return [p for p in self._processes if p.alive]

    @property
    def pending_count(self) -> int:
        """Queued events plus parked :class:`PendingChoice` events."""
        n = sum(len(b) for b in self._buckets.values()) + len(self._choices)
        if self._b0 is not None:
            n += len(self._b0)
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self.pending_count}>"
