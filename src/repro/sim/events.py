"""Waitable primitives for simulated processes.

A simulated process (see :mod:`repro.sim.process`) communicates with the
engine by *yielding* one of the request objects defined here:

* :class:`Timeout` -- resume after a fixed amount of virtual time.
* :class:`Signal` -- resume when another actor triggers the signal;
  the triggering value becomes the result of the ``yield``.
* :class:`AllOf` -- resume when every signal in a set has triggered;
  the result is the list of their values in order.

Signals are **one-shot**: they trigger exactly once and remember their
value, so a process that waits on an already-triggered signal resumes
immediately.  This mirrors completion events (message delivery, disk
I/O, ACK collection) which never "un-happen".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from ..errors import SimulationError

__all__ = ["Timeout", "Signal", "AllOf"]


class Timeout:
    """Request to sleep for ``delay`` seconds of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Signal:
    """A one-shot completion event carrying an optional value.

    Actors call :meth:`trigger` exactly once; processes wait by yielding
    the signal.  Multiple processes may wait on the same signal; all are
    resumed (in registration order) with the same value.
    """

    __slots__ = ("name", "triggered", "value", "_callbacks")

    def __init__(self, name: str = ""):
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter with ``value``.

        Waiter wake-ups are delivered synchronously by whoever drains
        the callback list (the engine schedules resumes at the current
        virtual time, preserving causality).
        """
        if self.triggered:
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Register ``cb``; invoked immediately if already triggered."""
        if self.triggered:
            cb(self.value)
        else:
            self._callbacks.append(cb)

    def discard_callback(self, cb: Callable[[Any], None]) -> None:
        """Remove a pending callback (used when a waiter is killed)."""
        try:
            self._callbacks.remove(cb)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"triggered={self.value!r}" if self.triggered else "pending"
        return f"Signal({self.name!r}, {state})"


class AllOf:
    """Barrier over several signals: resumes when all have triggered.

    The ``yield`` result is the list of signal values, ordered as the
    signals were passed in.  An empty collection completes immediately.
    """

    __slots__ = ("signals",)

    def __init__(self, signals: Iterable[Signal]):
        self.signals: List[Signal] = list(signals)

    def as_signal(self, name: str = "allof") -> Signal:
        """Collapse into a single :class:`Signal` (used by the engine)."""
        out = Signal(name)
        remaining = len(self.signals)
        if remaining == 0:
            out.trigger([])
            return out
        values: List[Optional[Any]] = [None] * remaining
        state = {"left": remaining}

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                values[i] = value
                state["left"] -= 1
                if state["left"] == 0:
                    out.trigger(list(values))

            return cb

        for i, sig in enumerate(self.signals):
            sig.add_callback(make_cb(i))
        return out
