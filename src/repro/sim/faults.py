"""Deterministic network and disk fault injection.

A :class:`FaultPlan` tells the :class:`~repro.sim.network.Network` how to
misbehave: per-link / per-kind probabilities of dropping, duplicating,
delaying, and reordering messages, plus *live kills* at arbitrary
virtual times that discard the victim's queued NIC frames and every
delivery still in flight to or from it.

A :class:`DiskFaultPlan` does the same for stable storage: per-node
probabilities of *torn tails* (a crash mid-flush persists a byte-
granularity prefix of the in-flight segment instead of losing the whole
flush), *transient write errors* (the flush path retries with backoff),
and *latent bit rot* (single-bit flips in already-persistent segments,
caught by the per-frame CRCs at salvage time).

All randomness comes from seeded ``random.Random`` streams.  Faults
consulted in simulator event order (message deliveries, write errors)
draw from one sequential stream; faults that must be stable across
repeated queries (torn tails and bit rot are evaluated per crash
*instant*, and the chaos suite probes many instants of one run) are
pure functions of ``(seed, node, segment)`` via string-seeded RNGs.

``FaultPlan.none()`` / ``DiskFaultPlan.none()`` are inert: consumers
detect them and take the exact fault-free code path, so every statistic
of an unfaulted run stays byte-identical with or without a plan
attached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["LinkFaults", "FaultPlan", "DiskFaults", "DiskFaultPlan"]


@dataclass(frozen=True)
class LinkFaults:
    """Fault rates for one (link, kind) class of traffic.

    ``delay_s`` scales both the plain-delay and the reorder hold-back;
    a reorder is just a hold-back long enough (a few message times) to
    let later traffic on the same link overtake the held frame.
    """

    #: Probability a frame is lost outright.
    drop: float = 0.0
    #: Probability a second copy of the frame is delivered.
    dup: float = 0.0
    #: Probability a frame is delivered late (jittered ``delay_s``).
    delay: float = 0.0
    #: Probability a frame is held back past later traffic on its link.
    reorder: float = 0.0
    #: Base extra latency for delayed/held frames (seconds).
    delay_s: float = 600e-6

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "delay", "reorder"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise SimulationError(f"bad {name} probability {p}")
        if self.delay_s < 0:
            raise SimulationError(f"negative fault delay {self.delay_s}")

    @property
    def quiet(self) -> bool:
        """True when this class of traffic is never disturbed."""
        return not (self.drop or self.dup or self.delay or self.reorder)


class FaultPlan:
    """A seeded, deterministic schedule of network misbehaviour.

    Resolution order for a frame's fault rates: an exact ``kinds``
    override wins, then a ``links`` ``(src, dst)`` override, then the
    plan-wide default.  ``kills`` maps a node id to the virtual time it
    dies; from that instant no frame from or to it is ever delivered.
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[LinkFaults] = None,
        links: Optional[Dict[Tuple[int, int], LinkFaults]] = None,
        kinds: Optional[Dict[str, LinkFaults]] = None,
        kills: Optional[Dict[int, float]] = None,
    ):
        self.seed = seed
        self.default = default or LinkFaults()
        self.links = dict(links or {})
        self.kinds = dict(kinds or {})
        self.kills = dict(kills or {})
        #: Zone-partition windows: ``(side_a, side_b, start, until)``
        #: frozensets of node ranks; frames crossing between the sides
        #: inside the window are discarded (both directions).
        self.partitions: List[Tuple[frozenset, frozenset, float, float]] = []
        self._rng = random.Random(seed)
        #: Fault bookkeeping, reported by the chaos harness.
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.dead_discards = 0
        self.partition_discards = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan that never interferes (and costs nothing)."""
        return cls(seed=0)

    @classmethod
    def uniform(
        cls,
        seed: int,
        drop: float = 0.0,
        dup: float = 0.0,
        delay: float = 0.0,
        reorder: float = 0.0,
        delay_s: float = 600e-6,
    ) -> "FaultPlan":
        """Same fault rates on every link and message kind."""
        return cls(
            seed=seed,
            default=LinkFaults(drop=drop, dup=dup, delay=delay,
                               reorder=reorder, delay_s=delay_s),
        )

    def kill(self, node: int, at_time: float) -> "FaultPlan":
        """Schedule a live kill of ``node`` at virtual time ``at_time``."""
        if node < 0 or at_time < 0:
            raise SimulationError(f"bad kill ({node}, {at_time})")
        self.kills[node] = at_time
        return self

    def kill_zone(self, nodes, at_time: float) -> "FaultPlan":
        """Schedule a live kill of a whole fault domain at one instant."""
        nodes = tuple(nodes)
        if not nodes:
            raise SimulationError("kill_zone needs at least one node")
        for node in nodes:
            self.kill(node, at_time)
        return self

    def partition(self, side_a, side_b, start: float,
                  until: float = float("inf")) -> "FaultPlan":
        """Partition ``side_a`` from ``side_b`` during ``[start, until)``.

        Frames crossing between the two sides inside the window are
        discarded in both directions; traffic within a side is
        untouched.  The partition heals at ``until`` (default: never).
        """
        a, b = frozenset(side_a), frozenset(side_b)
        if not a or not b:
            raise SimulationError("partition sides must be non-empty")
        if a & b:
            raise SimulationError(
                f"partition sides overlap: {sorted(a & b)}"
            )
        if start < 0 or until <= start:
            raise SimulationError(f"bad partition window [{start}, {until})")
        self.partitions.append((a, b, start, until))
        return self

    # ------------------------------------------------------------------
    # queries (called by the network in event order)
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the network must consult this plan at all."""
        if self.kills or self.partitions:
            return True
        if not self.default.quiet:
            return True
        return any(not f.quiet for f in self.links.values()) or any(
            not f.quiet for f in self.kinds.values()
        )

    def faults_for(self, src: int, dst: int, kind: str) -> LinkFaults:
        """The fault rates governing one frame."""
        by_kind = self.kinds.get(kind)
        if by_kind is not None:
            return by_kind
        by_link = self.links.get((src, dst))
        if by_link is not None:
            return by_link
        return self.default

    def delivery_delays(self, src: int, dst: int, kind: str) -> List[float]:
        """Extra latencies for each copy of a frame to deliver.

        An empty list means the frame is dropped; more than one entry
        means duplication.  Consumes RNG draws, so must be called
        exactly once per transmission attempt, at post time.
        """
        f = self.faults_for(src, dst, kind)
        if f.quiet:
            return [0.0]
        rng = self._rng
        if f.drop and rng.random() < f.drop:
            self.dropped += 1
            return []
        extra = 0.0
        if f.delay and rng.random() < f.delay:
            extra += f.delay_s * (0.5 + rng.random())
            self.delayed += 1
        if f.reorder and rng.random() < f.reorder:
            # hold back long enough for later same-link traffic to pass
            extra += f.delay_s * (2.0 + 2.0 * rng.random())
            self.reordered += 1
        delays = [extra]
        if f.dup and rng.random() < f.dup:
            delays.append(extra + f.delay_s * rng.random())
            self.duplicated += 1
        return delays

    def struck_dead(self, src: int, dst: int, at_time: float) -> bool:
        """Whether a delivery at ``at_time`` involves a dead endpoint.

        A frame still in flight (or queued on the victim's NIC) when the
        kill fires completes its delivery *after* the kill instant, so
        checking the delivery time discards exactly the in-flight set.
        """
        t_src = self.kills.get(src)
        if t_src is not None and at_time >= t_src:
            return True
        t_dst = self.kills.get(dst)
        return t_dst is not None and at_time >= t_dst

    def partitioned(self, src: int, dst: int, at_time: float) -> bool:
        """Whether a delivery at ``at_time`` crosses an open partition."""
        for side_a, side_b, start, until in self.partitions:
            if not (start <= at_time < until):
                continue
            if (src in side_a and dst in side_b) or (
                src in side_b and dst in side_a
            ):
                return True
        return False

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Injected-fault counts for reports and tests."""
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "dead_discards": self.dead_discards,
            "partition_discards": self.partition_discards,
        }

    def describe(self) -> str:
        """One-line description used in chaos repro commands."""
        d = self.default
        parts = [f"seed={self.seed}", f"drop={d.drop:g}", f"dup={d.dup:g}",
                 f"delay={d.delay:g}", f"reorder={d.reorder:g}"]
        if self.kills:
            parts.append("kills=" + ",".join(
                f"{n}@{t:g}" for n, t in sorted(self.kills.items())))
        if self.partitions:
            parts.append("partitions=" + ";".join(
                f"{sorted(a)}|{sorted(b)}@[{t0:g},{t1:g})"
                for a, b, t0, t1 in self.partitions))
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.describe()}>"


@dataclass(frozen=True)
class DiskFaults:
    """Stable-storage fault rates for one node's disk."""

    #: Probability a crash mid-flush leaves a byte-granularity prefix of
    #: the in-flight segment on disk (vs. losing the flush whole).
    torn_tail: float = 0.0
    #: Per-flush probability of a transient write error (retried).
    write_error: float = 0.0
    #: Per-segment probability of a latent single-bit flip.
    bitrot: float = 0.0
    #: Transient write errors are retried at most this many times.
    max_retries: int = 6
    #: Base backoff before a retry (seconds, scaled by attempt).
    retry_backoff_s: float = 200e-6

    def __post_init__(self) -> None:
        for name in ("torn_tail", "write_error", "bitrot"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise SimulationError(f"bad {name} probability {p}")
        if self.max_retries < 0:
            raise SimulationError(f"negative max_retries {self.max_retries}")
        if self.retry_backoff_s < 0:
            raise SimulationError(
                f"negative retry backoff {self.retry_backoff_s}"
            )

    @property
    def quiet(self) -> bool:
        """True when this disk never misbehaves."""
        return not (self.torn_tail or self.write_error or self.bitrot)


class DiskFaultPlan:
    """A seeded, deterministic schedule of stable-storage misbehaviour.

    Write-error draws happen in flush order (one per attempt), so they
    come from a sequential stream.  Torn-tail and bit-rot draws must
    give the same answer every time the same segment is examined --
    ``durable_view``/salvage run once per probed crash instant -- so
    they are pure functions of ``(seed, node, segment seq)``.
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[DiskFaults] = None,
        nodes: Optional[Dict[int, DiskFaults]] = None,
    ):
        self.seed = seed
        self.default = default or DiskFaults()
        self.nodes = dict(nodes or {})
        # xor-folded so the write-error stream never aliases the network
        # plan's stream under a shared seed
        self._rng = random.Random(seed ^ 0x5D15C0DE)
        #: Fault bookkeeping, reported by the chaos harness.
        self.write_errors = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "DiskFaultPlan":
        """A plan that never interferes (and costs nothing)."""
        return cls(seed=0)

    @classmethod
    def uniform(
        cls,
        seed: int,
        torn_tail: float = 0.0,
        write_error: float = 0.0,
        bitrot: float = 0.0,
    ) -> "DiskFaultPlan":
        """Same fault rates on every node's disk."""
        return cls(
            seed=seed,
            default=DiskFaults(torn_tail=torn_tail, write_error=write_error,
                               bitrot=bitrot),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the storage layer must consult this plan at all."""
        if not self.default.quiet:
            return True
        return any(not f.quiet for f in self.nodes.values())

    def faults_for(self, node: int) -> DiskFaults:
        """The fault rates governing one node's disk."""
        return self.nodes.get(node, self.default)

    def write_fails(self, node: int) -> bool:
        """Whether this flush attempt hits a transient write error.

        Consumes an RNG draw, so must be called exactly once per
        attempt, in simulator event order.
        """
        f = self.faults_for(node)
        if not f.write_error:
            return False
        if self._rng.random() < f.write_error:
            self.write_errors += 1
            return True
        return False

    def torn_bytes(self, node: int, seq: int, nbytes: int) -> Optional[int]:
        """Surviving byte-prefix length of an in-flight segment, or None.

        ``None`` reproduces the ideal all-or-nothing rule (the whole
        flush is lost); an integer in ``[0, nbytes)`` is how many bytes
        of the segment a crash during this flush leaves on disk.  Pure
        in ``(seed, node, seq)``.
        """
        f = self.faults_for(node)
        if not f.torn_tail or nbytes <= 0:
            return None
        rng = random.Random(f"{self.seed}:{node}:{seq}:torn")
        if rng.random() >= f.torn_tail:
            return None
        return rng.randrange(nbytes)

    def bitrot_flip(self, node: int, seq: int,
                    nbytes: int) -> Optional[Tuple[int, int]]:
        """Latent ``(byte_offset, bit_mask)`` flip in a durable segment.

        ``None`` means the segment is pristine.  Pure in
        ``(seed, node, seq)``, so every examination of one segment sees
        the same damage.
        """
        f = self.faults_for(node)
        if not f.bitrot or nbytes <= 0:
            return None
        rng = random.Random(f"{self.seed}:{node}:{seq}:rot")
        if rng.random() >= f.bitrot:
            return None
        return rng.randrange(nbytes), 1 << rng.randrange(8)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Injected-fault counts for reports and tests."""
        return {"write_errors": self.write_errors}

    def describe(self) -> str:
        """One-line description used in chaos repro commands."""
        d = self.default
        return (
            f"disk-seed={self.seed} torn={d.torn_tail:g} "
            f"werr={d.write_error:g} bitrot={d.bitrot:g}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiskFaultPlan {self.describe()}>"
