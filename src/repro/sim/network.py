"""Switched-Ethernet network model.

Each node owns a transmit NIC (:class:`~repro.sim.resources.FifoServer`)
and a receive :class:`~repro.sim.resources.Mailbox`.  A message from A
to B occupies A's NIC for its serialisation time, then arrives at B's
mailbox after the one-way latency plus the receiver's per-message CPU
overhead.  The switch fabric is non-blocking, matching the full-duplex
100 Mbps switch of the paper's testbed, so cross traffic between other
node pairs never delays a transfer.

Senders call :meth:`Network.send` from inside a simulated process with
``yield from``; the call charges the sender-side CPU overhead and
returns a :class:`~repro.sim.events.Signal` that fires on delivery
(useful when the sender must know its message has landed, e.g. for
modelling the ACK-free fast paths in recovery responders).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..config import NetworkConfig
from ..errors import SimulationError
from .engine import Simulator
from . import trace as _trc
from .events import Signal
from .faults import FaultPlan
from .resources import FifoServer, Mailbox

__all__ = ["DeliveryLabel", "NetMessage", "Network"]


@dataclass(frozen=True)
class DeliveryLabel:
    """Identity of one held-back delivery under a controlled scheduler.

    ``link_seq`` numbers messages per ``(src, dst)`` link in post order;
    because the base network is FIFO per link (one NIC queue, constant
    latency), only the lowest undelivered ``link_seq`` on each link is
    *enabled*.  ``pages`` lists the page ids the payload touches (empty
    for pure control traffic) so the model checker's commutativity
    oracle can reason about data overlap.
    """

    src: int
    dst: int
    kind: str
    link_seq: int
    pages: tuple = ()


def _payload_pages(payload: Any) -> tuple:
    """Best-effort extraction of the page ids a payload refers to."""
    page = getattr(payload, "page", None)
    if isinstance(page, int):
        return (page,)
    diffs = getattr(payload, "diffs", None)
    if diffs is not None:
        try:
            return tuple(sorted({d.page for d in diffs}))
        except (AttributeError, TypeError):
            return ()
    return ()


class NetMessage:
    """One message on the wire.

    ``kind`` is a short protocol tag (``"page_req"``, ``"diff"``, ...);
    ``size`` is the modelled wire size in bytes, which the DSM layer
    computes from real payload contents so that traffic statistics are
    measured rather than assumed.  ``payload`` carries the actual Python
    data and has no timing effect beyond ``size``.

    A hand-written slotted class rather than a dataclass: one of these
    is built per protocol exchange, and the dataclass ``__init__``
    indirection showed up in the message-instantiation benchmark.
    """

    __slots__ = ("src", "dst", "kind", "payload", "size",
                 "delivered_at", "seq", "obs_eid")

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: Any = None,
        size: int = 64,
    ):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size = size
        #: Filled in by the network at delivery time (virtual seconds).
        self.delivered_at = -1.0
        #: Per-link sequence number stamped by the reliable transport;
        #: -1 means unsequenced (fire-and-forget traffic like heartbeats).
        self.seq = -1
        #: Causal-edge id stamped by the network when tracing is on; the
        #: server loop uses it to link handler spans to the inbound message.
        self.obs_eid = -1

    def __repr__(self) -> str:
        return (
            f"NetMessage(src={self.src}, dst={self.dst}, "
            f"kind={self.kind!r}, payload={self.payload!r}, "
            f"size={self.size})"
        )

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not NetMessage:
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.payload == other.payload
            and self.size == other.size
        )


class _Hop:
    """Two-phase scheduled delivery for the fault-free fast path.

    Scheduled once at NIC-finish time; the first call reschedules itself
    after the wire latency + receiver overhead, the second performs the
    delivery.  One allocation replaces the ``tx_done`` signal and the
    nested ``on_tx``/``deliver`` closures, while consuming engine
    sequence numbers at exactly the same two instants (post time and
    NIC-finish time) so event ordering is unchanged.
    """

    __slots__ = ("net", "msg", "signal", "hopped", "extra")

    def __init__(self, net: "Network", msg: NetMessage, signal: Signal,
                 extra: float):
        self.net = net
        self.msg = msg
        self.signal = signal
        self.hopped = False
        # wire latency + receiver overhead (+ the WAN surcharge when the
        # link crosses a zone boundary); fixed at post time
        self.extra = extra

    def __call__(self) -> None:
        net = self.net
        if self.hopped:
            net._deliver(self.msg, self.signal)
        else:
            self.hopped = True
            net.sim.schedule(self.extra, self)


class Network:
    """The cluster interconnect.

    Statistics are kept per node and per message kind so the harness can
    report protocol traffic exactly (bytes of diffs vs. pages vs. sync
    control traffic).
    """

    #: Wire overhead added to every message (UDP/IP + protocol header).
    HEADER_BYTES = 40

    def __init__(
        self,
        sim: Simulator,
        config: NetworkConfig,
        num_nodes: int,
        fault_plan: Optional[FaultPlan] = None,
        zones: Optional[List[int]] = None,
        wan_latency_s: float = 0.0,
    ):
        if num_nodes < 1:
            raise SimulationError("network needs at least one node")
        if zones is not None and len(zones) != num_nodes:
            raise SimulationError(
                f"zones needs one label per node, got {len(zones)} for "
                f"{num_nodes} nodes"
            )
        self.sim = sim
        self.config = config
        self.num_nodes = num_nodes
        self.fault_plan = fault_plan
        # Inactive plans must leave every stat byte-identical, so the
        # fault branch in post() is gated once here, not re-checked on
        # each frame against the plan's tables.
        self._faulty = fault_plan is not None and fault_plan.active
        #: Delivery interception point for the reliable transport; a
        #: hook returning True has consumed the frame (dedup, buffering)
        #: and keeps it out of the destination mailbox.
        self.deliver_hook: Optional[Callable[[NetMessage], bool]] = None
        #: Optional tracer (set by DsmSystem); when enabled, every post
        #: stamps a send->recv MsgEdge so runs yield a causal DAG.
        self.tracer: Optional[Any] = None
        self._nics = [FifoServer(sim, f"nic{i}") for i in range(num_nodes)]
        self._mailboxes = [Mailbox(sim, f"mbox{i}") for i in range(num_nodes)]
        # Per-link constants, precomputed once.  ``_extra`` is the same
        # sum post() used to form per message, so timestamps are
        # bit-identical; ``_bw`` keeps the exact ``wire / bandwidth``
        # division of ``config.transfer_time`` (a reciprocal-multiply
        # would differ in the last ulp and break byte-identity goldens).
        self._extra = config.latency_s + config.recv_overhead_s
        self._bw = config.bandwidth_bps
        # Per-zone WAN profile: a cross-zone hop pays wan_latency_s on
        # top of the LAN constants.  ``None`` (no zones, or a zero WAN
        # surcharge) keeps the scalar path bit-identical to pre-zone
        # behaviour.
        self._zone_extra: Optional[List[List[float]]] = None
        if zones is not None and wan_latency_s > 0.0:
            self._zone_extra = [
                [
                    self._extra + (wan_latency_s if zones[s] != zones[d] else 0.0)
                    for d in range(num_nodes)
                ]
                for s in range(num_nodes)
            ]
        #: Per-(src, dst) post counters backing ``DeliveryLabel.link_seq``
        #: in controlled-scheduler runs; untouched on the normal path.
        self._link_seq: Dict[tuple, int] = {}
        self.bytes_sent: List[int] = [0] * num_nodes
        self.msgs_sent: List[int] = [0] * num_nodes
        self.bytes_by_kind: Dict[str, int] = {}
        self.msgs_by_kind: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def mailbox(self, node: int) -> Mailbox:
        """The receive queue of ``node``."""
        return self._mailboxes[node]

    def send(self, msg: NetMessage) -> Generator[Any, Any, Signal]:
        """Transmit ``msg`` (call with ``yield from``).

        Charges the sender's per-message CPU overhead on the caller's
        timeline, enqueues the frame on the sender NIC, and returns a
        delivery signal.  The caller continues as soon as the CPU
        overhead is paid -- sends are asynchronous, as in TreadMarks.
        """
        self._validate(msg)
        yield self.config.send_overhead_s
        return self.post(msg)

    def post(self, msg: NetMessage) -> Signal:
        """Transmit without charging sender CPU time.

        Used by contexts that have already accounted for handler CPU
        (e.g. the asynchronous update handler, whose cost is charged as
        a lump by the protocol layer).  Returns the delivery signal.
        """
        self._validate(msg)
        src = msg.src
        kind = msg.kind
        wire = msg.size + self.HEADER_BYTES
        self.bytes_sent[src] += wire
        self.msgs_sent[src] += 1
        bk = self.bytes_by_kind
        bk[kind] = bk.get(kind, 0) + wire
        mk = self.msgs_by_kind
        mk[kind] = mk.get(kind, 0) + 1
        tracer = self.tracer
        if tracer is not None and _trc.TRACING_ACTIVE and tracer.enabled:
            msg.obs_eid = tracer.edge_send(
                self.sim.now, src, msg.dst, kind, wire)

        ze = self._zone_extra
        extra = self._extra if ze is None else ze[src][msg.dst]

        sim = self.sim
        if not self._faulty and sim.choice_fn is None:
            # Fast path: arithmetic NIC reservation (same stats updates
            # as FifoServer.request) plus one two-phase _Hop callable in
            # place of the tx_done signal and nested closures.
            nic = self._nics[src]
            now = sim.now
            avail = nic._available_at
            start = avail if avail > now else now
            service = wire / self._bw
            finish = start + service
            nic._available_at = finish
            nic.busy_time += service
            nic.num_requests += 1
            delivered = Signal("net.delivered")
            sim.schedule(finish - now, _Hop(self, msg, delivered, extra))
            return delivered

        tx_done = self._nics[src].request(self.config.transfer_time(wire))
        delivered = Signal(f"net.{kind}.{src}->{msg.dst}")

        if not self._faulty:
            # Controlled scheduler (model checker): every delivery is a
            # labelled choice point.  The uncontrolled case returned on
            # the fast path above.
            link = (msg.src, msg.dst)
            seq = self._link_seq.get(link, 0)
            self._link_seq[link] = seq + 1
            label = DeliveryLabel(
                msg.src, msg.dst, msg.kind, seq, _payload_pages(msg.payload)
            )

            def on_tx(_finish: Any) -> None:
                self.sim.schedule_labeled(
                    extra, lambda: self._deliver(msg, delivered), label
                )

        else:
            plan = self.fault_plan
            assert plan is not None
            # RNG draws happen here, at post time, in simulator event
            # order -- the fault schedule for a seed is reproducible.
            copies = plan.delivery_delays(msg.src, msg.dst, msg.kind)

            def on_tx(_finish: Any) -> None:
                for fault_delay in copies:

                    def deliver(d: float = fault_delay) -> None:
                        now = self.sim.now
                        if plan.struck_dead(msg.src, msg.dst, now):
                            plan.dead_discards += 1
                            return
                        if plan.partitions and plan.partitioned(
                            msg.src, msg.dst, now
                        ):
                            plan.partition_discards += 1
                            return
                        self._deliver(msg, delivered)

                    self.sim.schedule(extra + fault_delay, deliver)

        tx_done.add_callback(on_tx)
        return delivered

    def _deliver(self, msg: NetMessage, delivered: Signal) -> None:
        """Final hop: hand the frame to the receiver (or the transport)."""
        msg.delivered_at = self.sim.now
        if self.tracer is not None and _trc.TRACING_ACTIVE and self.tracer.enabled:
            self.tracer.edge_recv(msg.obs_eid, self.sim.now)
        hook = self.deliver_hook
        if hook is None or not hook(msg):
            self._mailboxes[msg.dst].put(msg)
        # Duplicated frames reuse one Signal; only the first arrival of
        # a copy fires it (physical "the frame landed at least once").
        if not delivered.triggered:
            delivered.trigger(msg)

    def round_trip_estimate(self, request_bytes: int, reply_bytes: int) -> float:
        """Analytic lower bound for a request/reply exchange.

        Handy for tests and for the overlap accounting in CCL, which
        compares disk-flush time against the diff-flush round trip.
        """
        c = self.config
        one_way = lambda n: (  # noqa: E731 - local helper
            c.send_overhead_s
            + c.transfer_time(n + self.HEADER_BYTES)
            + c.latency_s
            + c.recv_overhead_s
        )
        return one_way(request_bytes) + one_way(reply_bytes)

    @property
    def total_bytes(self) -> int:
        """All wire bytes sent since construction."""
        return sum(self.bytes_sent)

    # ------------------------------------------------------------------
    def _validate(self, msg: NetMessage) -> None:
        n = self.num_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise SimulationError(f"message endpoints out of range: {msg}")
        if msg.src == msg.dst:
            raise SimulationError(f"loopback send not modelled: {msg}")
        if msg.size < 0:
            raise SimulationError(f"negative message size: {msg}")
