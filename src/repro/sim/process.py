"""Simulated processes: generators driven on the virtual clock.

A process body is a plain Python generator that ``yield``\\ s request
objects (:class:`~repro.sim.events.Timeout`,
:class:`~repro.sim.events.Signal`, :class:`~repro.sim.events.AllOf`, or
another :class:`SimProcess` to join).  Sub-operations compose with
``yield from``, which lets protocol code (page fetches, lock hand-offs,
disk flushes) run *inside* the simulated timeline of its caller --
exactly how the DSM layer is written.

The engine queues :class:`SimProcess` objects directly and steps their
generators inline in its drain loop (no closure per step); the
``_step``/``_wait_on`` methods here are the cold-path twin of that
inlined dispatch, used when a process is started outside the engine
loop.  The two must stay in sync.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import ProcessKilled, SimulationError
from .events import AllOf, Signal, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator

__all__ = ["SimProcess"]


class SimProcess:
    """One coroutine of simulated execution.

    Lifecycle: created by :meth:`Simulator.spawn`, stepped by the engine
    whenever its current wait completes, and finished when the generator
    returns (the return value is stored in :attr:`result`) or raises.
    A process is itself waitable: yielding a ``SimProcess`` blocks until
    it finishes and evaluates to its result.
    """

    __slots__ = (
        "sim", "gen", "name", "finished", "killed", "result", "error",
        "done", "_waiting_on", "_started", "_value", "_resume_cb",
    )

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self.killed = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: Signal triggered with the process result on completion.
        self.done = Signal(f"{name}.done")
        self._waiting_on: Optional[Signal] = None
        self._started = False
        #: Value the next step sends into the generator (set on resume).
        self._value: Any = None
        #: The one bound-method resume callback this process ever
        #: registers (allocated once; signals and kill() must see the
        #: same object for ``discard_callback`` to work).
        self._resume_cb = self._resume

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the process can still make progress."""
        return not self.finished and not self.killed

    def start(self) -> None:
        """First step; runs the process up to its first wait.

        The engine steps spawned processes itself; this is the
        entry point for driving a process outside :meth:`Simulator.run`.
        """
        if self._started or not self.alive:
            return
        self._started = True
        self._step(None)

    def kill(self) -> None:
        """Forcibly terminate the process (crash injection).

        The generator receives :class:`ProcessKilled` so that ``finally``
        blocks run; the process then counts as dead and its ``done``
        signal is *not* triggered (a crashed node never reports back).
        """
        if not self.alive:
            return
        self.killed = True
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._resume_cb)
            self._waiting_on = None
        try:
            self.gen.throw(ProcessKilled(f"process {self.name} killed"))
        except (ProcessKilled, StopIteration):
            pass
        except Exception as exc:  # body swallowed the kill and died anyway
            self.error = exc
        finally:
            self.gen.close()

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        """Signal callback: queue the next step at the current time."""
        self._waiting_on = None
        self._value = value
        sim = self.sim
        act = sim._active
        if act is not None:
            act.append(self)
        else:
            sim.schedule(0.0, self)

    def _step(self, value: Any) -> None:
        # Cold-path twin of the engine's inlined step; keep in sync.
        if not self.alive:
            return
        self._started = True
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done.trigger(stop.value)
            return
        except ProcessKilled:
            self.killed = True
            return
        except Exception as exc:
            self.finished = True
            self.error = exc
            raise SimulationError(
                f"simulated process {self.name!r} raised {exc!r}"
            ) from exc
        self._wait_on(request)

    def _wait_on(self, request: Any) -> None:
        if isinstance(request, (float, int)) and not isinstance(request, bool):
            # Bare numbers are timeout requests (the zero-allocation hot
            # idiom; ``Timeout`` remains the validated wrapper).
            if request < 0:
                raise SimulationError(f"negative timeout: {request}")
            self.sim.schedule(float(request), self)
        elif isinstance(request, Timeout):
            self.sim.schedule(request.delay, self)
        elif isinstance(request, Signal):
            self._waiting_on = request
            request.add_callback(self._resume_cb)
        elif isinstance(request, AllOf):
            sig = request.as_signal()
            self._waiting_on = sig
            sig.add_callback(self._resume_cb)
        elif isinstance(request, SimProcess):
            self._waiting_on = request.done
            request.done.add_callback(self._resume_cb)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request {request!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "killed"
            if self.killed
            else "finished"
            if self.finished
            else "running"
        )
        return f"<SimProcess {self.name} {state}>"
