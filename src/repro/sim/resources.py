"""Shared resources: FIFO servers and mailboxes.

:class:`FifoServer` models a device that serves requests one at a time
in arrival order (a NIC serialising outgoing frames, a disk head).  It
is implemented arithmetically -- each request completes at
``max(now, available_at) + service_time`` -- which is exact for
non-preemptive FIFO service and keeps the event count low.

:class:`Mailbox` is the per-node message queue: producers ``put``
messages, consumers obtain a :class:`~repro.sim.events.Signal` that
fires when a matching message is available.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..errors import SimulationError
from .engine import Simulator
from .events import Signal

__all__ = ["FifoServer", "Mailbox"]


def _MATCH_ANY(_msg: Any) -> bool:
    """Default receive predicate: accept any message (shared, not per-call)."""
    return True


class FifoServer:
    """Non-preemptive single-server FIFO queue with additive service times.

    ``request(service_time)`` returns a signal that triggers when the
    request completes.  Utilisation statistics (:attr:`busy_time`,
    :attr:`num_requests`) support the harness's breakdown reports.
    """

    def __init__(self, sim: Simulator, name: str = "server"):
        self.sim = sim
        self.name = name
        self._available_at = 0.0
        self.busy_time = 0.0
        self.num_requests = 0

    def request(self, service_time: float) -> Signal:
        """Enqueue a request; returns its completion signal."""
        if service_time < 0:
            raise SimulationError(f"negative service time: {service_time}")
        start = max(self.sim.now, self._available_at)
        finish = start + service_time
        self._available_at = finish
        self.busy_time += service_time
        self.num_requests += 1
        sig = Signal(f"{self.name}.req{self.num_requests}")
        self.sim.schedule(finish - self.sim.now, lambda: sig.trigger(finish))
        return sig

    @property
    def backlog(self) -> float:
        """Seconds of queued work not yet completed."""
        return max(0.0, self._available_at - self.sim.now)


class Mailbox:
    """Unbounded message queue with predicate-based receive.

    Matching is FIFO among messages satisfying the predicate; waiting
    consumers are served in registration order.  This mirrors a UDP
    socket with a user-level dispatch loop, the structure TreadMarks
    uses for its request handlers.
    """

    def __init__(self, sim: Simulator, name: str = "mbox"):
        self.sim = sim
        self.name = name
        self._get_name = name + ".get"
        self._queue: Deque[Any] = deque()
        self._waiters: List[Tuple[Callable[[Any], bool], Signal]] = []
        self.delivered = 0

    def put(self, msg: Any) -> None:
        """Deliver ``msg``; wakes the first waiter whose predicate matches."""
        self.delivered += 1
        for i, (pred, sig) in enumerate(self._waiters):
            if pred(msg):
                del self._waiters[i]
                sig.trigger(msg)
                return
        self._queue.append(msg)

    def get(self, pred: Optional[Callable[[Any], bool]] = None) -> Signal:
        """Return a signal that fires with the next matching message."""
        if pred is None:
            pred = _MATCH_ANY
        for i, msg in enumerate(self._queue):
            if pred(msg):
                del self._queue[i]
                sig = Signal(self._get_name)
                sig.trigger(msg)
                return sig
        sig = Signal(self._get_name)
        self._waiters.append((pred, sig))
        return sig

    def __len__(self) -> int:
        return len(self._queue)
