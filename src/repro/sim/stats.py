"""Statistics collection for simulated nodes.

The evaluation section of the paper reports execution time, log sizes,
flush counts, and recovery time.  To regenerate those tables the DSM
layer records, per node, both event *counters* (:class:`Counter`) and a
*time breakdown* (:class:`TimeBreakdown`) attributing virtual seconds of
the node's critical path to categories such as compute, page-fault
stalls, synchronisation waits, and log-flush stalls.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping

from ..obs.latency import LatencyRecorder

__all__ = ["Counter", "TimeBreakdown", "NodeStats"]


class Counter(Dict[str, float]):
    """A string-keyed tally with a convenience ``add`` and merge."""

    def add(self, key: str, amount: float = 1) -> None:
        """Increment ``key`` by ``amount`` (creating it at zero)."""
        self[key] = self.get(key, 0) + amount

    def merge(self, other: Mapping[str, float]) -> "Counter":
        """Accumulate another counter into this one; returns self."""
        for k, v in other.items():
            self.add(k, v)
        return self


class TimeBreakdown:
    """Attribution of a node's virtual time to named categories.

    Categories are open-ended strings; the harness groups on the
    conventional ones:

    * ``compute`` -- application floating-point work
    * ``fault`` -- page-fault stalls (fetch round trips)
    * ``sync`` -- waiting at locks and barriers
    * ``diff`` -- diff creation/application CPU
    * ``log_flush`` -- stable-storage flush time on the critical path
    * ``log_read`` -- reading logged data during recovery
    * ``prefetch`` -- recovery prefetch round trips
    """

    def __init__(self) -> None:
        self._buckets: Counter = Counter()

    def add(self, category: str, seconds: float) -> None:
        """Charge ``seconds`` of critical-path time to ``category``."""
        self._buckets.add(category, seconds)

    def get(self, category: str) -> float:
        """Seconds charged to ``category`` so far (0 if never charged)."""
        return self._buckets.get(category, 0.0)

    @property
    def total(self) -> float:
        """Sum over all categories."""
        return sum(self._buckets.values())

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict copy for reporting."""
        return dict(self._buckets)

    def merge(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Accumulate another breakdown into this one; returns self."""
        self._buckets.merge(other._buckets)
        return self

    def __iter__(self) -> Iterator[str]:
        return iter(self._buckets)


class NodeStats:
    """All measurements for one simulated node.

    Combines event counters (``page_faults``, ``diffs_created``,
    ``diff_bytes_sent``, ``log_flushes`` ...) with a
    :class:`TimeBreakdown`.  The harness aggregates these across nodes
    when rendering the paper's tables.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.counters = Counter()
        self.time = TimeBreakdown()
        #: Per-operation streaming latency histograms (virtual seconds);
        #: always on -- recording costs no virtual time.
        self.latency: Dict[str, LatencyRecorder] = {}

    def count(self, key: str, amount: float = 1) -> None:
        """Shorthand for ``self.counters.add``."""
        self.counters.add(key, amount)

    def charge(self, category: str, seconds: float) -> None:
        """Shorthand for ``self.time.add``."""
        self.time.add(category, seconds)

    def recorder(self, op: str) -> LatencyRecorder:
        """The (lazily created) latency recorder for one operation."""
        rec = self.latency.get(op)
        if rec is None:
            rec = self.latency[op] = LatencyRecorder()
        return rec

    def observe(self, op: str, seconds: float) -> None:
        """Record one operation latency (virtual seconds)."""
        rec = self.latency.get(op)
        if rec is None:
            rec = self.latency[op] = LatencyRecorder()
        rec.observe(seconds)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly snapshot."""
        return {
            "node": self.node_id,
            "counters": dict(self.counters),
            "time": self.time.as_dict(),
            "latency": {op: rec.percentiles()
                        for op, rec in sorted(self.latency.items())},
        }

    @staticmethod
    def aggregate(stats: List["NodeStats"]) -> "NodeStats":
        """Element-wise sum across nodes (node_id = -1).

        Latency histograms merge bucket-wise, so cluster percentiles
        come from the true union of per-node observations.
        """
        out = NodeStats(-1)
        for s in stats:
            out.counters.merge(s.counters)
            out.time.merge(s.time)
            for op, rec in s.latency.items():
                out.recorder(op).merge(rec)
        return out
